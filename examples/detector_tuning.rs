//! Failure-detector behaviour around the global stabilization time.
//!
//! Run with: `cargo run --example detector_tuning`
//!
//! A 4-process heartbeat cluster (the Fig. 1 composition) runs on an
//! eventually-synchronous network: until GST = 200ms, message delays are
//! chaotic (up to 20ms); afterwards they settle at 50–150µs. The example
//! shows the raise/cancel churn before GST, the adaptive per-peer timeout
//! back-off that follows, and the quiet, agreed steady state after —
//! eventual strong accuracy in action.

#![forbid(unsafe_code)]

use qsel::node::{NodeConfig, SelectorNode, ServiceMsg};
use qsel_detector::FdConfig;
use qsel_simnet::{DelayModel, SimConfig, SimDuration, SimTime, Simulation};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, ProcessId};

fn main() {
    let cfg = ClusterConfig::new(4, 1).expect("valid configuration");
    let chain = Keychain::new(&cfg, 11);
    let gst = SimTime::from_micros(200_000);
    let delay = DelayModel::eventually_synchronous(
        SimDuration::millis(20),
        SimDuration::micros(50),
        SimDuration::micros(150),
        gst,
    );
    let node_cfg = NodeConfig {
        heartbeat_period: SimDuration::millis(5),
        fd: FdConfig {
            initial_timeout: SimDuration::millis(1),
            timeout_cap: SimDuration::secs(60),
            adaptive: true,
        },
    };
    let nodes: Vec<SelectorNode> = cfg
        .processes()
        .map(|p| SelectorNode::new_quorum(cfg, p, &chain, node_cfg.clone()))
        .collect();
    let mut sim: Simulation<ServiceMsg, SelectorNode> =
        Simulation::new(SimConfig::new(4, 11).with_delay(delay), nodes);

    println!("eventually-synchronous network, GST at 200ms\n");
    println!(
        "{:>10} {:>14} {:>16} {:>12} {:>16}",
        "t (ms)", "raised", "cancelled", "epoch(p1)", "quorum(p1)"
    );
    let mut last = (0u64, 0u64);
    for step in 1..=8u64 {
        let t = SimTime::from_micros(step * 100_000);
        sim.run_until(t);
        let raised: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .map(|&p| sim.actor(p).fd_stats().suspicions_raised)
            .sum();
        let cancelled: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .map(|&p| sim.actor(p).fd_stats().suspicions_cancelled)
            .sum();
        let p1 = sim.actor(ProcessId(1));
        println!(
            "{:>10} {:>14} {:>16} {:>12} {:>16}",
            step * 100,
            format!("+{}", raised - last.0),
            format!("+{}", cancelled - last.1),
            p1.epoch().to_string(),
            p1.current_plain_quorum().expect("quorum mode").to_string(),
        );
        last = (raised, cancelled);
    }

    let q1 = sim.actor(ProcessId(1)).current_plain_quorum();
    let agreed = sim
        .ids()
        .collect::<Vec<_>>()
        .iter()
        .all(|&p| sim.actor(p).current_plain_quorum() == q1);
    println!("\nall processes agree on the final quorum: {agreed}");
    println!(
        "suspicions churned before GST, stopped after — eventual strong accuracy \
         via adaptive timeout back-off."
    );
}
