//! Quickstart: drive the Quorum Selection module (Algorithm 1) by hand.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Builds a 5-process cluster tolerating f = 2 faults, feeds failure-
//! detector suspicions into the module of `p1`, and shows how the
//! suspect graph, epochs and the issued quorums evolve — including the
//! Figure 4 scenario where inconsistent suspicions force an epoch change.

#![forbid(unsafe_code)]

use qsel::{QsOutput, QuorumSelection};
use qsel::messages::UpdateRow;
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, Epoch, ProcessId, ProcessSet};

fn show(outs: &[QsOutput]) {
    for o in outs {
        match o {
            QsOutput::Quorum(q) => println!("   → issued ⟨QUORUM, {q}⟩"),
            QsOutput::Broadcast(u) => {
                println!("   → broadcast ⟨UPDATE⟩ signed by {}", u.signer)
            }
        }
    }
}

fn main() {
    // A cluster Π = {p1..p5} with f = 2, so quorums have q = 3 members.
    let cfg = ClusterConfig::new(5, 2).expect("valid configuration");
    let chain = Keychain::new(&cfg, 42);
    let mut qs = QuorumSelection::new(cfg, ProcessId(1), chain.signer(ProcessId(1)), chain.verifier());
    println!("initial quorum: {}", qs.current_quorum());

    // The local failure detector suspects p2 (say, a missed heartbeat).
    println!("\np1's failure detector suspects p2:");
    let s: ProcessSet = [ProcessId(2)].into_iter().collect();
    show(&qs.on_suspected(s));
    println!("   suspect graph: {:?}", qs.suspect_graph());

    // A signed UPDATE arrives from p4: it suspects p5.
    println!("\np4 reports suspicion of p5 (signed UPDATE):");
    let update = chain.signer(ProcessId(4)).sign(UpdateRow {
        row: vec![Epoch(0), Epoch(0), Epoch(0), Epoch(0), Epoch(1)],
    });
    show(&qs.on_update(update));
    println!("   suspect graph: {:?}", qs.suspect_graph());
    println!("   current quorum: {}", qs.current_quorum());

    // Pile on suspicions until no independent set of size 3 exists — the
    // module must advance to the next epoch (Algorithm 1 lines 27–29).
    println!("\nInconsistent suspicions force an epoch change:");
    for (signer, target) in [(2u32, 3u32), (3, 4), (2, 4), (3, 1), (5, 1)] {
        let mut row = vec![Epoch(0); 5];
        row[(target - 1) as usize] = Epoch(1);
        let update = chain.signer(ProcessId(signer)).sign(UpdateRow { row });
        let outs = qs.on_update(update);
        if !outs.is_empty() {
            println!("   after ⟨UPDATE⟩ p{signer}→p{target}:");
            show(&outs);
        }
    }
    println!("   epoch is now {}", qs.epoch());
    println!("   suspect graph: {:?}", qs.suspect_graph());
    println!("   final quorum: {}", qs.current_quorum());
    println!(
        "\nstats: {} quorums issued, {} epochs entered, max {} quorums in one epoch",
        qs.stats().quorums_issued,
        qs.stats().epochs_entered,
        qs.stats().max_quorums_in_one_epoch()
    );
}
