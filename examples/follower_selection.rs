//! Follower Selection under a leader-attack campaign (Section VIII).
//!
//! Run with: `cargo run --example follower_selection`
//!
//! A cluster of n = 7 processes (f = 2) runs Algorithm 2 with instant
//! propagation. An adversary repeatedly makes a quorum member suspect the
//! current leader. Watch the leader walk rightward through the maximal
//! line subgraph — and verify Theorem 9's bound of at most 3f + 1 quorums
//! per epoch.

#![forbid(unsafe_code)]

use qsel_adversary::cluster::FsCluster;
use qsel_types::{ClusterConfig, ProcessId};

fn main() {
    let f = 2u32;
    let n = 3 * f + 1;
    let cfg = ClusterConfig::new(n, f).expect("valid configuration");
    let mut cluster = FsCluster::new(cfg, 7);

    println!("Follower Selection on n={n}, f={f} (Theorem 9 bound: {} per epoch)\n", 3 * f + 1);
    let lq = cluster.agreed_quorum().expect("initial agreement");
    println!("initial: {lq}");

    for round in 1..=12u32 {
        let Some(lq) = cluster.agreed_quorum() else {
            println!("round {round}: cluster disagrees (transient) — stopping");
            break;
        };
        let leader = lq.leader();
        let Some(suspecter) = lq.followers().iter().next() else {
            break;
        };
        cluster.cause_suspicion(suspecter, leader);
        match cluster.agreed_quorum() {
            Some(new_lq) => println!(
                "round {round:2}: {suspecter} suspects leader {leader} → {new_lq}  (epoch {})",
                cluster.agreed_epoch().map(|e| e.to_string()).unwrap_or_default()
            ),
            None => println!("round {round:2}: no agreement yet"),
        }
    }

    let observer = ProcessId(n);
    let stats = cluster.module(observer).stats();
    println!(
        "\nquorums per epoch at {observer}: {:?}",
        stats.quorums_per_epoch
    );
    println!(
        "max in one epoch = {} (bound 3f+1 = {}), total = {} (Corollary 10 budget 6f+2 = {})",
        stats.max_quorums_in_one_epoch(),
        3 * f + 1,
        stats.quorums_issued,
        6 * f + 2
    );
    assert!(stats.max_quorums_in_one_epoch() <= (3 * f + 1) as u64);
    println!("Theorem 9 bound holds.");
}
