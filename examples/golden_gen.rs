//! Regenerates the golden default-policy traces pinned by `tests/batching.rs`.
//!
//! The compatibility contract is that `BatchPolicy::default()` (batch
//! size 1, pipeline depth 1, no delay) is a pure passthrough: a traced
//! run of the default 5-replica cluster must be byte-identical run after
//! run and against the committed goldens under `tests/golden/`, compared
//! byte-for-byte by `default_policy_traces_are_byte_identical_to_goldens`.
//! The goldens track the current trace vocabulary — most recently the
//! causal-span events (`batch_admitted`, `req_proposed`, `commit_vote`,
//! `reply_sent`) of DESIGN.md §14.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example golden_gen            # writes tests/golden/
//! cargo run --release --example golden_gen out/dir    # choose output dir
//! ```
//!
//! Only regenerate (and commit) new goldens when a deliberate, reviewed
//! change to the traced execution makes the old bytes stale.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use qsel_repro::qsel_obs::TraceSink;
use qsel_simnet::SimTime;
use qsel_types::ClusterConfig;
use qsel_xpaxos::harness::{total_committed, ClusterBuilder};

/// Seeds pinned as goldens. Two are enough to catch accidental divergence
/// without bloating the repo.
const SEEDS: &[u64] = &[7, 21];
const CLIENTS: u32 = 2;
const OPS_PER_CLIENT: u64 = 8;
/// Fixed horizon: the trace always covers exactly this window, so the
/// exported bytes do not depend on how a caller slices `run_until`.
const HORIZON_MICROS: u64 = 300_000;

fn main() {
    let out_dir = PathBuf::from(
        std::env::args()
            .nth(1)
            .unwrap_or_else(|| "tests/golden".to_string()),
    );
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    for &seed in SEEDS {
        let sink = TraceSink::unbounded();
        let cfg = ClusterConfig::new(5, 1).unwrap();
        let mut sim = ClusterBuilder::new(cfg, seed)
            .clients(CLIENTS, OPS_PER_CLIENT)
            .trace_sink(sink.clone())
            .build();
        sim.run_until(SimTime::from_micros(HORIZON_MICROS));
        let expected = u64::from(CLIENTS) * OPS_PER_CLIENT;
        assert_eq!(
            total_committed(&sim),
            expected,
            "seed {seed}: workload must finish inside the horizon"
        );
        let path = out_dir.join(format!("trace_default_seed{seed}.jsonl"));
        std::fs::write(&path, sink.export_jsonl()).expect("cannot write golden trace");
        println!("wrote {} ({} records)", path.display(), sink.len());
    }
}
