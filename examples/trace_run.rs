//! Traced chaos run with offline bound checking (experiment E-TRACE).
//!
//! Executes one seeded chaos scenario with the full `qsel-obs` pipeline
//! enabled: every layer (simulator, replicas, failure detectors,
//! selection modules, clients) emits structured events into one shared
//! sink stamped with simulated time. The run then
//!
//! 1. writes the trace to `trace-<seed>.jsonl` and the derived metrics
//!    to `metrics-<seed>.json`,
//! 2. prints the metrics registry (commit latency, view-change duration,
//!    quorums per epoch, retry back-off) as text, and
//! 3. replays the exported trace through the analyzer, checking the
//!    Theorem 3 `f(f+1)` / Theorem 9 `3f+1` per-epoch quorum bounds
//!    (counted after the last heal, when the theorems' accurate-detector
//!    premise holds), per-slot agreement across replicas, and that no
//!    message or timer was delivered to a crashed incarnation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example trace_run              # seed 1, cwd output
//! cargo run --release --example trace_run 42           # a single seed
//! cargo run --release --example trace_run 42 out/dir   # choose output dir
//! ```
//!
//! Exits non-zero if the run fails to return to liveness, the exported
//! trace does not reparse, or the analyzer reports any violation — so CI
//! can gate on the paper's bounds holding over a real execution.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use qsel_repro::chaos::{plan_for, run_chaos_with_sink, F, N};
use qsel_repro::qsel_obs::metrics::standard_metrics;
use qsel_repro::qsel_obs::replay::{analyze, parse_jsonl};
use qsel_repro::qsel_obs::{ReplayConfig, TraceSink};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(1);
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let sink = TraceSink::unbounded();
    let run = run_chaos_with_sink(seed, sink.clone());
    println!(
        "seed {seed}: committed {}/{} ops, {} trace records",
        run.committed,
        run.expected,
        sink.len()
    );
    if !run.live() {
        eprintln!(
            "seed {seed} failed to return to liveness; plan:\n{:#?}",
            plan_for(seed, N)
        );
        std::process::exit(1);
    }

    // Export the trace and reparse it from the exported bytes: the
    // analyzer deliberately runs on what an offline consumer would read,
    // not on the in-memory records.
    let trace_path = out_dir.join(format!("trace-{seed}.jsonl"));
    let text = sink.export_jsonl();
    std::fs::write(&trace_path, &text).expect("cannot write trace");
    let records = match parse_jsonl(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exported trace does not reparse: {e}");
            std::process::exit(1);
        }
    };
    println!("trace   → {}", trace_path.display());

    let metrics = standard_metrics(&records);
    let metrics_path = out_dir.join(format!("metrics-{seed}.json"));
    std::fs::write(&metrics_path, metrics.render_json()).expect("cannot write metrics");
    println!("metrics → {}", metrics_path.display());
    println!();
    print!("{}", metrics.render_text());
    println!();

    // Quorum bounds are only claimed once the failure detector can be
    // accurate, i.e. after the last scripted fault healed.
    let cfg = ReplayConfig {
        f: F,
        stable_from_micros: plan_for(seed, N).last_fault_time().unwrap().as_micros(),
    };
    let report = analyze(&records, &cfg);
    println!("{report}");
    if !report.ok() {
        std::process::exit(1);
    }
}
