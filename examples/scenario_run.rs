//! Declarative scenario runner (the CI league cell).
//!
//! Parses a scenario file, executes it deterministically at the given
//! seed, replays the exported trace through the `qsel-obs` analyzer, and
//! writes the machine-readable artifacts CI archives per matrix cell:
//!
//! * `verdict.json` — pass/fail per invariant plus a metrics summary,
//! * `trace.jsonl` — the full trace the analyzer actually read,
//! * `metrics.json` — the standard derived metrics registry,
//! * `latency_report.json` — per-request critical-path latency
//!   attribution (see DESIGN.md §14).
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example scenario_run scenarios/calm-baseline.toml
//! cargo run --release --example scenario_run scenarios/calm-baseline.toml 42
//! cargo run --release --example scenario_run scenarios/calm-baseline.toml 42 out/dir
//! ```
//!
//! Exits non-zero if the scenario file does not parse or validate, or any
//! verdict check fails — so a CI matrix cell is red exactly when its
//! `verdict.json` says `"pass": false`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use qsel_repro::qsel_scenario::{parse, run_scenario};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: scenario_run <scenario.toml> [seed] [out_dir]");
        return ExitCode::FAILURE;
    };
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(1);
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let artifacts = match run_scenario(&scenario, seed) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    std::fs::write(out_dir.join("verdict.json"), artifacts.verdict.to_json())
        .expect("cannot write verdict");
    std::fs::write(out_dir.join("trace.jsonl"), &artifacts.trace_jsonl)
        .expect("cannot write trace");
    std::fs::write(out_dir.join("metrics.json"), &artifacts.metrics_json)
        .expect("cannot write metrics");
    std::fs::write(out_dir.join("latency_report.json"), &artifacts.latency_report)
        .expect("cannot write latency report");

    print!("{}", artifacts.verdict);
    println!();
    print!("{}", artifacts.metrics_text);
    println!("artifacts → {}", out_dir.display());

    if artifacts.verdict.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
