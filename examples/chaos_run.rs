//! Fixed-seed chaos smoke run (experiment E-CHAOS).
//!
//! Executes one or more seeded chaos scenarios against the XPaxos stack
//! and prints a per-seed report: faults applied, crash-recoveries,
//! network-level duplication/reordering, and whether the run returned to
//! liveness after the last heal. Safety is asserted inside the runner.
//!
//! Usage:
//!
//! ```text
//! cargo run --release --example chaos_run            # seeds 1..=5
//! cargo run --release --example chaos_run 42         # a single seed
//! cargo run --release --example chaos_run 1 24       # seed range
//! ```
//!
//! Exits non-zero if any run fails to return to liveness, so CI can use
//! it as a smoke gate. A failing seed reproduces exactly: the plan is a
//! pure function of the seed (see `qsel_repro::chaos::plan_for`).

#![forbid(unsafe_code)]

use qsel_repro::chaos::{plan_for, run_chaos, N};

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("seeds must be integers"))
        .collect();
    let (lo, hi) = match args[..] {
        [] => (1, 5),
        [s] => (s, s),
        [lo, hi, ..] => (lo, hi),
    };
    if lo > hi {
        eprintln!("empty seed range {lo}..={hi}");
        std::process::exit(2);
    }
    println!(
        "{:>6} {:>7} {:>9} {:>10} {:>9} {:>7} {:>11} {:>6}",
        "seed", "faults", "restarts", "duplicated", "reordered", "paused", "committed", "live"
    );
    let mut all_live = true;
    for seed in lo..=hi {
        let run = run_chaos(seed);
        let s = run.sim.stats();
        println!(
            "{:>6} {:>7} {:>9} {:>10} {:>9} {:>7} {:>8}/{:<2} {:>6}",
            seed,
            s.faults_injected,
            s.restarts,
            s.messages_duplicated,
            s.messages_reordered,
            s.events_buffered_paused,
            run.committed,
            run.expected,
            if run.live() { "yes" } else { "NO" },
        );
        if !run.live() {
            all_live = false;
            eprintln!(
                "seed {seed} failed to return to liveness; plan:\n{:#?}",
                plan_for(seed, N)
            );
        }
    }
    if !all_live {
        std::process::exit(1);
    }
}
