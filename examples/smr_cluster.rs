//! A replicated state machine surviving faults via Quorum Selection.
//!
//! Run with: `cargo run --example smr_cluster`
//!
//! Starts an XPaxos cluster (n = 4, f = 1) with two closed-loop clients,
//! crashes the active-quorum follower p2 mid-run, and prints the
//! throughput timeline and the quorum change that restored service —
//! the workload the paper's introduction motivates.

#![forbid(unsafe_code)]

use qsel_simnet::{SimDuration, SimTime};
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{assert_safety, ClusterBuilder};
use qsel_xpaxos::replica::{QuorumPolicy, ReplicaConfig};

fn main() {
    let cfg = ClusterConfig::new(4, 1).expect("valid configuration");
    let rcfg = ReplicaConfig {
        policy: QuorumPolicy::Selection,
        ..Default::default()
    };
    let mut sim = ClusterBuilder::new(cfg, 2024)
        .replica_config(rcfg)
        .clients(2, 100_000) // effectively unbounded, time-limited run
        .retry(SimDuration::millis(30))
        .build();
    sim.start();

    println!("XPaxos + Quorum Selection, n=4 f=1, clients=2");
    println!("crashing follower p2 at t=300ms\n");
    println!("{:>12} {:>12} {:>10} {:>22}", "t (ms)", "ops/100ms", "view", "active quorum (at p1)");

    let mut committed_before = 0u64;
    let mut crashed = false;
    for step in 1..=10u64 {
        let t = SimTime::from_micros(step * 100_000);
        if !crashed && step * 100 >= 300 {
            sim.crash(ProcessId(2));
            crashed = true;
        }
        sim.run_until(t);
        let committed: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .filter_map(|&id| sim.actor(id).client().map(|c| c.committed_ops()))
            .sum();
        let viewer = sim.actor(ProcessId(1)).replica().expect("replica");
        println!(
            "{:>12} {:>12} {:>10} {:>22}",
            format!("{}–{}", (step - 1) * 100, step * 100),
            committed - committed_before,
            viewer.view(),
            viewer.active_quorum().to_string(),
        );
        committed_before = committed;
    }

    assert_safety(&sim);
    let r1 = sim.actor(ProcessId(1)).replica().expect("replica");
    println!("\nfinal active quorum: {} (p2 excluded)", r1.active_quorum());
    println!(
        "view changes: {}, detections: {}, decided slots: {}",
        r1.stats().views_installed,
        r1.stats().detections,
        r1.log().decided_count()
    );
    println!("safety check passed: no two replicas executed different requests at a slot");
}
