//! Chaos soak suite for the XPaxos SMR stack.
//!
//! Each run derives a scripted `FaultPlan` deterministically from a seed
//! and executes it against a full cluster (replicas + closed-loop clients)
//! via [`qsel_repro::chaos`]. The plan mixes every fault class the
//! simulator models — crash/restart, gray-failure pause/resume,
//! partitions, timing degradation with jitter, and lossy links with
//! duplication and reordering — always healing everything before a final
//! deadline. Each run also adopts a seed-derived `BatchPolicy`
//! (`batch_policy_for`), so the soak covers batched slots and pipelined
//! commits under faults as well as the passthrough path. Two properties
//! are asserted per run:
//!
//! * **Safety, always**: no two correct replicas execute different
//!   requests at the same slot (checked inside `run_chaos`, including
//!   mid-chaos).
//! * **Liveness, after the last heal**: every client operation commits.
//!
//! A failing seed reproduces exactly from `(seed, plan)` alone — the panic
//! message carries both, and `reruns_of_a_chaos_seed_are_identical` pins
//! the reproducibility contract itself.

use qsel_obs::TraceSink;
use qsel_repro::chaos::{
    batch_policy_for, plan_for, run_chaos, run_chaos_sized, ChaosRun, ARCHIVE_RETAIN,
    CKPT_INTERVAL, N,
};
use qsel_simnet::{FaultEvent, NetStats, SimDuration};
use qsel_types::ProcessId;

/// Runs one seed and asserts post-heal liveness with a reproducible
/// failure message.
fn run_live(seed: u64) -> ChaosRun {
    let run = run_chaos(seed);
    assert!(
        run.live(),
        "liveness violation: seed {seed} committed {} of {} ops\nreproduce with plan: {:?}",
        run.committed,
        run.expected,
        run.plan,
    );
    run
}

#[test]
fn chaos_soak_over_twenty_seeds() {
    // ≥ 20 distinct seeded fault schedules. Aggregate counters prove the
    // suite actually exercised every fault class rather than passing
    // vacuously.
    let mut total = NetStats::default();
    for seed in 1..=24u64 {
        let run = run_live(seed);
        total.merge(run.sim.stats());
    }
    let report = format!("{total}");
    assert!(
        total.faults_injected >= 24 * 6,
        "suspiciously few faults applied\n{report}"
    );
    assert!(total.restarts > 0, "no run exercised crash-recovery\n{report}");
    assert!(
        total.messages_duplicated > 0,
        "no run exercised duplication\n{report}"
    );
    assert!(
        total.messages_reordered > 0,
        "no run exercised reordering\n{report}"
    );
    assert!(
        total.events_buffered_paused > 0,
        "no run exercised gray-failure pauses\n{report}"
    );
    // The merged per-kind map must cover the protocol's message families —
    // including signed checkpoints, which run at `CKPT_INTERVAL` in every
    // chaos cluster, so compaction is exercised *under* faults.
    for kind in ["request", "prepare", "commit", "reply", "checkpoint"] {
        assert!(
            total.by_kind.get(kind).copied().unwrap_or(0) > 0,
            "no run sent any {kind:?} messages\n{report}"
        );
    }
}

#[test]
fn chaos_log_memory_stays_bounded_by_compaction() {
    // The GC contract under chaos: with checkpoints every `CKPT_INTERVAL`
    // slots, a replica's resident agreement log must stay bounded by the
    // checkpoint lag, not grow with history. Seeds 4 and 13 draw batch
    // size 1, so the 2 × 60 closed-loop workload drives ~120 slots —
    // far past the asserted residency bound, which an unbounded log
    // would therefore visibly exceed.
    for seed in [4u64, 13] {
        let run = run_chaos_sized(seed, 2, 60, TraceSink::disabled());
        assert!(
            run.live(),
            "liveness violation: seed {seed} committed {} of {} ops\nplan: {:?}",
            run.committed,
            run.expected,
            run.plan,
        );
        // Stability lag: a checkpoint stabilizes at most ~2 intervals
        // after capture; undecided pipeline slots add a little slack.
        let bound = (4 * CKPT_INTERVAL) as usize + 16;
        for p in (1..=N).map(ProcessId) {
            let r = run.sim.actor(p).replica().unwrap();
            assert!(
                r.stats().checkpoints_stable > 0,
                "seed {seed} at {p}: no checkpoint ever stabilized"
            );
            let len = r.log().log_len();
            assert!(
                len <= bound,
                "seed {seed} at {p}: {len} resident slots exceed the \
                 compaction bound {bound} (watermark {})",
                r.log().watermark(),
            );
            assert!(
                r.log().archive_len() <= ARCHIVE_RETAIN as usize,
                "seed {seed} at {p}: transfer archive exceeds its retention"
            );
        }
    }
}

#[test]
fn reruns_of_a_chaos_seed_are_identical() {
    // The reproducibility contract: a chaos execution is a pure function
    // of (seed, plan). Identical seeds must yield identical traffic
    // counters and identical per-replica outcomes.
    for seed in [3u64, 17] {
        let a = run_live(seed);
        let b = run_live(seed);
        let (sa, sb) = (a.sim.stats(), b.sim.stats());
        assert_eq!(sa.messages_sent, sb.messages_sent, "seed {seed}");
        assert_eq!(sa.messages_delivered, sb.messages_delivered, "seed {seed}");
        assert_eq!(sa.messages_duplicated, sb.messages_duplicated, "seed {seed}");
        assert_eq!(sa.messages_reordered, sb.messages_reordered, "seed {seed}");
        assert_eq!(sa.timers_fired, sb.timers_fired, "seed {seed}");
        assert_eq!(sa.faults_injected, sb.faults_injected, "seed {seed}");
        for p in (1..=N).map(ProcessId) {
            let ra = a.sim.actor(p).replica().unwrap();
            let rb = b.sim.actor(p).replica().unwrap();
            assert_eq!(ra.view(), rb.view(), "seed {seed} at {p}");
            assert_eq!(ra.log().watermark(), rb.log().watermark(), "seed {seed} at {p}");
            assert_eq!(ra.log().log_len(), rb.log().log_len(), "seed {seed} at {p}");
            assert_eq!(ra.log().gc_floor(), rb.log().gc_floor(), "seed {seed} at {p}");
            assert_eq!(
                ra.stats().recoveries,
                rb.stats().recoveries,
                "seed {seed} at {p}"
            );
            assert_eq!(
                ra.stats().checkpoints_stable,
                rb.stats().checkpoints_stable,
                "seed {seed} at {p}"
            );
        }
    }
}

#[test]
fn seed_derived_batch_policies_cover_the_space() {
    // The soak's per-seed batch policies are deterministic and actually
    // spread over the configuration space: the 24 seeds must include real
    // batching (size > 1), real pipelining (depth > 1) and both immediate
    // and delayed batch closes — otherwise the chaos sweep only ever
    // exercises the unbatched path.
    let policies: Vec<_> = (1..=24u64).map(batch_policy_for).collect();
    for (i, p) in policies.iter().enumerate() {
        let seed = i as u64 + 1;
        assert_eq!(*p, batch_policy_for(seed), "seed {seed} not deterministic");
        assert!((1..=8).contains(&p.max_batch_size), "seed {seed}: {p:?}");
        assert!((1..=4).contains(&p.pipeline_depth), "seed {seed}: {p:?}");
        assert!(
            p.max_batch_delay <= SimDuration::micros(800),
            "seed {seed}: {p:?}"
        );
    }
    assert!(policies.iter().any(|p| p.max_batch_size > 1));
    assert!(policies.iter().any(|p| p.pipeline_depth > 1));
    assert!(policies.iter().any(|p| p.max_batch_delay == SimDuration::ZERO));
    assert!(policies.iter().any(|p| p.max_batch_delay > SimDuration::ZERO));
}

#[test]
fn plan_generation_is_deterministic_and_well_formed() {
    for seed in 1..=24u64 {
        let p1 = plan_for(seed, N);
        let p2 = plan_for(seed, N);
        assert_eq!(p1.len(), p2.len(), "seed {seed}");
        assert_eq!(format!("{p1:?}"), format!("{p2:?}"), "seed {seed}");
        // Time-ordered and ending in the terminal heal block.
        let times: Vec<u64> = p1.iter().map(|(t, _)| t.as_micros()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "seed {seed}");
        let heal_time = p1.last_fault_time().unwrap();
        let terminal: Vec<&FaultEvent> = p1
            .iter()
            .filter(|(t, _)| *t == heal_time)
            .map(|(_, e)| e)
            .collect();
        assert!(
            terminal.iter().any(|e| matches!(e, FaultEvent::HealAll)),
            "seed {seed}: plan does not end with a global heal"
        );
        assert_eq!(
            terminal
                .iter()
                .filter(|e| matches!(e, FaultEvent::Restart(_)))
                .count(),
            N as usize,
            "seed {seed}: terminal block must revive every replica"
        );
    }
}
