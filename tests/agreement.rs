//! Randomized end-to-end agreement tests: under seeded random fault
//! injection, correct processes must converge to the same quorum with no
//! suspicion edge inside it (the Termination / No-suspicion / Agreement
//! triple of §IV-A).

use proptest::prelude::*;
use qsel::node::{NodeConfig, SelectorNode, ServiceMsg};
use qsel_simnet::{LinkState, SimConfig, SimDuration, SimTime, Simulation};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, ProcessId};

fn cluster(n: u32, f: u32, seed: u64, follower: bool) -> Simulation<ServiceMsg, SelectorNode> {
    let cfg = ClusterConfig::new(n, f).unwrap();
    let chain = Keychain::new(&cfg, seed);
    let nodes: Vec<SelectorNode> = cfg
        .processes()
        .map(|p| {
            if follower {
                SelectorNode::new_follower(cfg, p, &chain, NodeConfig::default())
            } else {
                SelectorNode::new_quorum(cfg, p, &chain, NodeConfig::default())
            }
        })
        .collect();
    Simulation::new(SimConfig::new(n, seed), nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One random crash plus one random dropped link: survivors agree on
    /// a quorum that excludes the crashed process.
    #[test]
    fn quorum_mode_agreement_under_random_faults(
        seed in 0u64..1_000,
        crash in 1u32..=5,
        link_a in 1u32..=5,
        link_b in 1u32..=5,
    ) {
        let n = 5;
        let f = 2;
        let mut sim = cluster(n, f, seed, false);
        sim.start();
        sim.run_until(SimTime::from_micros(20_000));
        sim.crash(ProcessId(crash));
        if link_a != link_b {
            sim.set_link(
                ProcessId(link_a),
                ProcessId(link_b),
                LinkState { drop_all: true, ..Default::default() },
            );
        }
        sim.run_until(SimTime::from_micros(600_000));
        let survivors: Vec<ProcessId> = (1..=n)
            .map(ProcessId)
            .filter(|p| *p != ProcessId(crash))
            .collect();
        let reference = sim.actor(survivors[0]).current_plain_quorum().unwrap();
        for &p in &survivors {
            let q = sim.actor(p).current_plain_quorum().unwrap();
            prop_assert_eq!(q, reference, "disagreement at {}", p);
            prop_assert!(!q.contains(ProcessId(crash)), "crashed member in quorum");
        }
    }

    /// Follower mode: a random crash leads to an agreed leader quorum
    /// excluding the crashed process.
    #[test]
    fn follower_mode_agreement_under_random_crash(
        seed in 0u64..1_000,
        crash in 1u32..=4,
    ) {
        let mut sim = cluster(4, 1, seed, true);
        sim.start();
        sim.run_until(SimTime::from_micros(20_000));
        sim.crash(ProcessId(crash));
        sim.run_until(SimTime::from_micros(800_000));
        let survivors: Vec<ProcessId> = (1..=4u32)
            .map(ProcessId)
            .filter(|p| *p != ProcessId(crash))
            .collect();
        let reference = sim.actor(survivors[0]).current_leader_quorum().unwrap();
        for &p in &survivors {
            let lq = sim.actor(p).current_leader_quorum().unwrap();
            prop_assert_eq!(lq, reference, "disagreement at {}", p);
            prop_assert!(!lq.quorum().contains(ProcessId(crash)));
            prop_assert!(lq.leader() != ProcessId(crash));
        }
    }
}

/// Timing faults only delay (never change) the agreed outcome: with one
/// slow link the cluster still converges and the final quorums agree.
#[test]
fn slow_link_only_delays_agreement() {
    let mut sim = cluster(5, 2, 77, false);
    sim.start();
    sim.set_link(
        ProcessId(3),
        ProcessId(4),
        LinkState {
            extra_delay: SimDuration::millis(20),
            ..Default::default()
        },
    );
    sim.run_until(SimTime::from_micros(2_000_000));
    let reference = sim.actor(ProcessId(1)).current_plain_quorum();
    for p in (2..=5u32).map(ProcessId) {
        assert_eq!(sim.actor(p).current_plain_quorum(), reference, "at {p}");
    }
    // If the final quorum still pairs p3 and p4, the slow link must have
    // been absorbed by the adaptive timeouts (no live suspicion remains).
    let q = reference.unwrap();
    if q.contains(ProcessId(3)) && q.contains(ProcessId(4)) {
        for p in (1..=5u32).map(ProcessId) {
            assert!(
                !sim.actor(p).suspected().contains(ProcessId(3))
                    && !sim.actor(p).suspected().contains(ProcessId(4)),
                "live suspicion against a quorum pair at {p}"
            );
        }
    }
}
