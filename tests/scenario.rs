//! Integration tests for the scenario DSL and its deterministic runner.
//!
//! Two guarantees are pinned here rather than in the crate's unit tests
//! because they span the whole stack (files on disk → parser → simnet →
//! analyzer → verdict):
//!
//! 1. every seed scenario under `scenarios/` parses, validates, and
//!    round-trips through the canonical serializer;
//! 2. running the same scenario file at the same seed twice yields
//!    byte-identical traces and verdicts — the league's cache-and-compare
//!    reasoning depends on runs being pure functions of (file, seed).

#![forbid(unsafe_code)]

use std::path::PathBuf;

use qsel_repro::qsel_scenario::{parse, run_scenario};

fn scenario_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn read_scenario(name: &str) -> String {
    let path = scenario_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn all_seed_scenarios_parse_validate_and_roundtrip() {
    let mut names: Vec<String> = std::fs::read_dir(scenario_dir())
        .expect("scenarios/ directory")
        .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".toml"))
        .collect();
    names.sort();
    assert!(
        names.len() >= 8,
        "expected at least the 8 seed scenarios, found {names:?}"
    );
    for name in &names {
        let text = read_scenario(name);
        let sc = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        sc.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            name.trim_end_matches(".toml"),
            sc.name,
            "{name}: file name and scenario name must agree"
        );
        let back = parse(&sc.to_toml()).unwrap_or_else(|e| panic!("{name} reserialized: {e}"));
        assert_eq!(back, sc, "{name}: canonical round-trip changed the spec");
    }
}

#[test]
fn same_file_same_seed_is_byte_identical() {
    // One quiet scenario and one fault-heavy scenario; both must be pure
    // functions of (file, seed).
    for name in ["calm-baseline.toml", "crash-quorum-edge.toml"] {
        let sc = parse(&read_scenario(name)).expect("seed scenario parses");
        let a = run_scenario(&sc, 7).expect("first run");
        let b = run_scenario(&sc, 7).expect("second run");
        assert_eq!(
            a.trace_jsonl, b.trace_jsonl,
            "{name}: trace diverged between identical runs"
        );
        assert_eq!(
            a.verdict.to_json(),
            b.verdict.to_json(),
            "{name}: verdict diverged between identical runs"
        );
        assert_eq!(a.metrics_json, b.metrics_json);
        assert_eq!(
            a.latency_report, b.latency_report,
            "{name}: latency report diverged between identical runs"
        );
    }
}

#[test]
fn different_seeds_change_the_trace_not_the_verdict() {
    let sc = parse(&read_scenario("calm-baseline.toml")).expect("seed scenario parses");
    let a = run_scenario(&sc, 1).expect("seed 1");
    let b = run_scenario(&sc, 2).expect("seed 2");
    assert_ne!(
        a.trace_jsonl, b.trace_jsonl,
        "distinct seeds should schedule differently"
    );
    assert!(a.verdict.pass(), "calm baseline must pass at seed 1");
    assert!(b.verdict.pass(), "calm baseline must pass at seed 2");
}
