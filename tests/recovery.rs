//! Signed checkpoints, log compaction, and MMR-authenticated incremental
//! state transfer (ISSUE 7, robustness tier).
//!
//! The acceptance bar: a replica that crashed and missed thousands of
//! slots recovers in **O(gap) messages** — asserted on simulator message
//! counts ([`qsel_simnet::NetStats::by_kind`]), never wall clock — with
//! its resident log bounded by the checkpoint interval afterwards, and a
//! Byzantine donor serving tampered chunks is detected by MMR
//! verification, rejected, and routed around.

use qsel_simnet::SimTime;
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{
    assert_safety, total_committed, ClusterBuilder, CorruptTransferPeer, XpActor,
};
use qsel_xpaxos::replica::Replica;
use qsel_xpaxos::{CheckpointPolicy, ReplicaConfig};

fn cfg(n: u32, f: u32) -> ClusterConfig {
    ClusterConfig::new(n, f).unwrap()
}

fn ckpt(interval: u64, retain: u64) -> ReplicaConfig {
    ReplicaConfig {
        checkpoint: CheckpointPolicy::new(interval, retain),
        ..Default::default()
    }
}

/// Steady state: every replica stabilizes checkpoints and compacts the
/// decided prefix, keeping the resident log bounded by the interval.
#[test]
fn checkpoints_stabilize_and_bound_the_log() {
    let interval = 8u64;
    let ops = 80u64;
    let mut sim = ClusterBuilder::new(cfg(4, 1), 7)
        .replica_config(ckpt(interval, 16))
        .clients(2, ops / 2)
        .build();
    sim.run_until(SimTime::from_micros(2_000_000));
    assert_eq!(total_committed(&sim), ops);
    assert_safety(&sim);
    for p in [1, 2, 3, 4].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        assert!(
            r.stats().checkpoints_stable >= ops / interval - 1,
            "replica {p} stabilized only {} checkpoints",
            r.stats().checkpoints_stable
        );
        assert!(
            r.stable_checkpoint_slot() >= ops - interval,
            "replica {p} stable checkpoint lags at {}",
            r.stable_checkpoint_slot()
        );
        let resident = r.log().log_len() as u64;
        assert!(
            resident <= 3 * interval,
            "replica {p} keeps {resident} slots resident (interval {interval})"
        );
    }
    // Checkpoint votes flowed: the new kind shows up in the classifier.
    assert!(sim.stats().by_kind["checkpoint"] > 0);
}

/// The tentpole acceptance test: a replica that crashed and missed ~10k
/// slots recovers through a compact, MMR-proved transfer whose message
/// cost is O(gap) — proportional to gap / chunk-size, not to the retries
/// nor the log as a whole — and ends with its resident log bounded again.
#[test]
fn lazarus_replica_recovers_in_o_gap_messages() {
    let interval = 500u64;
    let ops = 10_000u64;
    let mut sim = ClusterBuilder::new(cfg(4, 1), 42)
        .replica_config(ckpt(interval, 50_000))
        .clients(4, ops / 4)
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(20_000));
    let wm_at_crash = sim
        .actor(ProcessId(4))
        .replica()
        .unwrap()
        .log()
        .watermark();
    sim.crash(ProcessId(4)); // passive replica: agreement is undisturbed
    sim.run_until(SimTime::from_micros(30_000_000));
    assert_eq!(total_committed(&sim), ops, "cluster finished while p4 slept");
    let frontier = sim
        .actor(ProcessId(1))
        .replica()
        .unwrap()
        .log()
        .watermark();
    let gap = frontier - wm_at_crash;
    assert!(gap >= 9_000, "p4 must have missed ~10k slots, gap = {gap}");

    let before = sim.stats().clone();
    sim.restart(ProcessId(4));
    sim.run_until(SimTime::from_micros(40_000_000));

    let r4 = sim.actor(ProcessId(4)).replica().unwrap();
    assert!(
        r4.log().watermark() >= frontier,
        "p4 stuck at {} < {frontier}",
        r4.log().watermark()
    );
    assert!(!r4.is_syncing(), "transfer still marked in flight");
    assert!(r4.stats().state_transfers >= 1);
    assert_eq!(r4.stats().chunks_rejected, 0, "honest donors only");
    assert_safety(&sim);

    // O(gap) message accounting: the whole recovery — probe, chunked
    // compact transfer, certified tail — must cost on the order of
    // gap / chunk-size messages, not O(gap) *per retry* or O(n · gap).
    let after = sim.stats().clone();
    let delta = |kind: &str| {
        after.by_kind.get(kind).copied().unwrap_or(0)
            - before.by_kind.get(kind).copied().unwrap_or(0)
    };
    let chunk = 512u64; // SYNC_CHUNK in the replica
    let rounds = gap / chunk + 2;
    assert!(
        delta("sync-chunk") <= rounds,
        "sync-chunk: {} > {rounds}",
        delta("sync-chunk")
    );
    assert!(
        delta("sync-fetch") <= rounds,
        "sync-fetch: {} > {rounds}",
        delta("sync-fetch")
    );
    // One probe round (n−1 queries, n−1 answers) plus a small retry
    // allowance; certified-tail traffic covers at most the suffix past
    // the last stable checkpoint.
    assert!(delta("sync-query") <= 12, "sync-query: {}", delta("sync-query"));
    assert!(delta("sync-info") <= 12, "sync-info: {}", delta("sync-info"));
    assert!(
        delta("state-fetch") + delta("state-batch") <= 2 * interval + 16,
        "certified tail traffic blew up: {} fetches / {} batches",
        delta("state-fetch"),
        delta("state-batch")
    );

    // Post-recovery memory: the resident log is bounded by the interval
    // again, not by the gap it just crossed.
    let resident = r4.log().log_len() as u64;
    assert!(
        resident <= 3 * interval,
        "recovered replica keeps {resident} slots resident"
    );
    assert!(
        r4.stable_checkpoint_slot() >= frontier - 2 * interval,
        "recovered replica's stable checkpoint lags at {}",
        r4.stable_checkpoint_slot()
    );
}

/// Byzantine donor: the first-choice donor serves chunks whose proofs are
/// genuine but whose batches are flipped. The recoverer must reject them
/// by MMR verification (verify-before-use), fail over to an honest donor,
/// and still converge.
#[test]
fn tampered_chunks_are_rejected_and_recovery_fails_over() {
    let interval = 50u64;
    let ops = 600u64;
    let shape = cfg(4, 1);
    let rcfg = ckpt(interval, 10_000);
    let rcfg_byz = rcfg.clone();
    let mut sim = ClusterBuilder::new(shape, 99)
        .replica_config(rcfg)
        .clients(2, ops / 2)
        .build_with(move |p, chain| {
            // p1 is the view-0 leader: ties on frontier break toward the
            // lowest id, so the recoverer's first donor pick is the
            // corrupt one — the failover path *must* run.
            (p == ProcessId(1)).then(|| {
                XpActor::CorruptTransfer(CorruptTransferPeer::new(Replica::new(
                    shape,
                    p,
                    chain,
                    rcfg_byz.clone(),
                )))
            })
        });
    sim.start();
    sim.run_until(SimTime::from_micros(20_000));
    sim.crash(ProcessId(4));
    sim.run_until(SimTime::from_micros(5_000_000));
    assert_eq!(total_committed(&sim), ops);
    let frontier = sim
        .actor(ProcessId(1))
        .replica()
        .unwrap()
        .log()
        .watermark();
    sim.restart(ProcessId(4));
    sim.run_until(SimTime::from_micros(15_000_000));

    let r4 = sim.actor(ProcessId(4)).replica().unwrap();
    assert!(
        r4.stats().chunks_rejected >= 1,
        "the tampered chunk was never detected"
    );
    assert!(
        r4.log().watermark() >= frontier,
        "recovery did not converge past the Byzantine donor: {} < {frontier}",
        r4.log().watermark()
    );
    assert!(!r4.is_syncing());
    assert_safety(&sim);
}

/// Graceful degradation: checkpointing is enabled but no quorum
/// checkpoint exists yet (the crash happens before the first interval
/// crossing stabilizes). Recovery must still converge, via certified
/// replay from the watermark.
#[test]
fn recovery_degrades_to_certified_replay_without_a_checkpoint() {
    let ops = 60u64;
    // Interval far beyond the run: no checkpoint can ever stabilize.
    let mut sim = ClusterBuilder::new(cfg(4, 1), 11)
        .replica_config(ckpt(100_000, 0))
        .clients(2, ops / 2)
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(20_000));
    sim.crash(ProcessId(4));
    sim.run_until(SimTime::from_micros(2_000_000));
    assert_eq!(total_committed(&sim), ops);
    let frontier = sim
        .actor(ProcessId(1))
        .replica()
        .unwrap()
        .log()
        .watermark();
    sim.restart(ProcessId(4));
    sim.run_until(SimTime::from_micros(6_000_000));

    let r4 = sim.actor(ProcessId(4)).replica().unwrap();
    assert_eq!(r4.stats().checkpoints_stable, 0);
    assert!(r4.stats().state_transfers >= 1);
    assert!(
        r4.log().watermark() >= frontier,
        "replay-mode recovery stuck at {} < {frontier}",
        r4.log().watermark()
    );
    assert_safety(&sim);
}
