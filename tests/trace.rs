//! Integration tests for the `qsel-obs` tracing subsystem.
//!
//! Three contracts are pinned here, end to end:
//!
//! * **Determinism**: two traced chaos runs of the same seed export
//!   byte-identical JSONL, and tracing never perturbs the execution it
//!   observes (a traced and an untraced run of a seed commit the same
//!   operations).
//! * **Analyzer soundness**: a hand-built trace with one quorum too many
//!   in a single epoch is flagged as a Theorem 3 violation; the same
//!   trace without the excess quorum passes.
//! * **Paper bounds hold under chaos**: across the full 24-seed chaos
//!   sweep, replaying each exported trace confirms the Theorem 3
//!   `f(f+1)` bound on quorums per epoch once the system is stable
//!   (after the last heal), with zero invariant violations.

use qsel_obs::replay::{analyze, parse_jsonl};
use qsel_obs::{ReplayConfig, TraceEvent, TraceRecord, TraceSink};
use qsel_repro::chaos::{plan_for, run_chaos, run_chaos_with_sink, F, N};

#[test]
fn identical_seeds_export_byte_identical_traces() {
    for seed in [2u64, 19] {
        let sink_a = TraceSink::unbounded();
        let sink_b = TraceSink::unbounded();
        let a = run_chaos_with_sink(seed, sink_a.clone());
        let b = run_chaos_with_sink(seed, sink_b.clone());
        assert!(sink_a.len() > 0, "seed {seed}: trace is empty");
        assert_eq!(
            sink_a.export_jsonl(),
            sink_b.export_jsonl(),
            "seed {seed}: traces of identical (seed, plan) diverged"
        );
        assert_eq!(a.committed, b.committed, "seed {seed}");
    }
}

#[test]
fn tracing_does_not_perturb_the_execution() {
    // The sink draws nothing from the simulation's RNG, so enabling it
    // must not change what the run does — only what it records.
    for seed in [5u64, 11] {
        let untraced = run_chaos(seed);
        let traced = run_chaos_with_sink(seed, TraceSink::unbounded());
        assert_eq!(untraced.committed, traced.committed, "seed {seed}");
        let (su, st) = (untraced.sim.stats(), traced.sim.stats());
        assert_eq!(su.messages_sent, st.messages_sent, "seed {seed}");
        assert_eq!(su.messages_delivered, st.messages_delivered, "seed {seed}");
        assert_eq!(su.timers_fired, st.timers_fired, "seed {seed}");
    }
}

#[test]
fn exported_traces_reparse_losslessly() {
    let sink = TraceSink::unbounded();
    run_chaos_with_sink(7, sink.clone());
    let text = sink.export_jsonl();
    let parsed = parse_jsonl(&text).expect("exported trace must reparse");
    assert_eq!(parsed.len(), sink.len());
    // Re-serializing the parsed records reproduces the export byte for
    // byte: the JSONL writer is the inverse of the parser.
    let mut round = String::new();
    for r in &parsed {
        round.push_str(&r.to_jsonl());
        round.push('\n');
    }
    assert_eq!(round, text);
}

/// Builds a minimal trace in which process 1 issues `quorums` distinct
/// quorums inside epoch 5 of Algorithm 1, all after `t = 1000`.
fn qs_trace(quorums: u64) -> Vec<TraceRecord> {
    let mut records = vec![TraceRecord {
        seq: 0,
        t: 1_000,
        event: TraceEvent::EpochEntered {
            p: 1,
            epoch: 5,
            algo: "qs".to_string(),
        },
    }];
    for i in 0..quorums {
        records.push(TraceRecord {
            seq: 1 + i,
            t: 1_100 + i,
            event: TraceEvent::QuorumIssued {
                p: 1,
                epoch: 5,
                algo: "qs".to_string(),
                members: vec![1, 2 + (i as u32 % 3)],
            },
        });
    }
    records
}

#[test]
fn analyzer_flags_a_theorem_3_violation() {
    // f = 1 ⇒ Algorithm 1 may issue at most f(f+1) = 2 quorums per epoch.
    let cfg = ReplayConfig {
        f: 1,
        stable_from_micros: 0,
    };
    assert_eq!(cfg.qs_bound(), 2);

    let ok = analyze(&qs_trace(2), &cfg);
    assert!(ok.ok(), "2 quorums in one epoch must be within the bound");
    assert_eq!(ok.max_qs_quorums_per_epoch, 2);

    let bad = analyze(&qs_trace(3), &cfg);
    assert!(!bad.ok(), "3 quorums in one epoch must be flagged");
    assert_eq!(bad.violations.len(), 1, "one violation per offending epoch");
    assert!(
        bad.violations[0].desc.contains("Theorem 3"),
        "violation must cite the theorem: {}",
        bad.violations[0].desc
    );
    assert_eq!(bad.max_qs_quorums_per_epoch, 3);
}

#[test]
fn chaos_sweep_respects_the_theorem_3_bound_when_stable() {
    // The headline acceptance check: replay every seeded chaos run and
    // confirm the paper's per-epoch quorum bounds hold after the last
    // heal, alongside the analyzer's agreement and crash-delivery checks.
    let cfg_template = |stable_from_micros: u64| ReplayConfig {
        f: F,
        stable_from_micros,
    };
    let mut total_checked = 0u64;
    let mut max_stable = 0u64;
    for seed in 1..=24u64 {
        let sink = TraceSink::unbounded();
        let run = run_chaos_with_sink(seed, sink.clone());
        assert!(run.live(), "seed {seed}: chaos run failed to recover");
        let heal = plan_for(seed, N).last_fault_time().unwrap().as_micros();
        let records = parse_jsonl(&sink.export_jsonl()).expect("trace must reparse");
        let report = analyze(&records, &cfg_template(heal));
        assert!(
            report.ok(),
            "seed {seed}: analyzer found violations\n{report}"
        );
        assert!(
            report.max_qs_quorums_per_epoch <= cfg_template(heal).qs_bound(),
            "seed {seed}: stable-window quorums/epoch {} exceeds f(f+1) = {}",
            report.max_qs_quorums_per_epoch,
            cfg_template(heal).qs_bound(),
        );
        total_checked += report.records_checked;
        max_stable = max_stable.max(report.max_qs_quorums_per_epoch);
    }
    assert!(total_checked > 0, "sweep checked no records");
}
