//! Property tests for request batching and pipelined commit (tentpole
//! invariants):
//!
//! * every submitted request executes **exactly once** at every correct
//!   replica that has executed it at all;
//! * all correct replicas execute the **same sequence** of requests —
//!   one replica's execution order is a prefix of any longer replica's;
//! * the passthrough default policy (`BatchPolicy::default()`, size 1,
//!   depth 1) produces **byte-identical** traces run after run — pinned
//!   against committed goldens (`tests/golden/`, regenerable via
//!   `examples/golden_gen.rs` on deliberate trace-vocabulary changes).

use std::collections::HashSet;

use proptest::prelude::*;
use qsel_obs::TraceSink;
use qsel_simnet::{SimDuration, SimTime};
use qsel_types::ClusterConfig;
use qsel_simnet::Simulation;
use qsel_xpaxos::harness::{assert_safety, total_committed, ClusterBuilder, XpActor};
use qsel_xpaxos::messages::XpMsg;
use qsel_xpaxos::policy::BatchPolicy;
use qsel_xpaxos::replica::ReplicaConfig;

const CLIENTS: u32 = 3;
const OPS_PER_CLIENT: u64 = 6;
const HORIZON_MICROS: u64 = 10_000_000;

/// Runs a fault-free 5-replica cluster under `policy` until every client
/// op commits (asserting it does).
fn run_cluster(seed: u64, policy: BatchPolicy) -> Simulation<XpMsg, XpActor> {
    let cfg = ClusterConfig::new(5, 1).unwrap();
    let mut rcfg = ReplicaConfig::default();
    rcfg.batch = policy;
    let mut sim = ClusterBuilder::new(cfg, seed)
        .replica_config(rcfg)
        .clients(CLIENTS, OPS_PER_CLIENT)
        .build();
    let expected = u64::from(CLIENTS) * OPS_PER_CLIENT;
    let mut now = 0u64;
    while total_committed(&sim) < expected && now < HORIZON_MICROS {
        now += 1_000;
        sim.run_until(SimTime::from_micros(now));
    }
    assert_eq!(
        total_committed(&sim),
        expected,
        "all client ops must commit under policy {policy:?} (seed {seed})"
    );
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batch sizes 1..=32 × pipeline depths 1..=4 × random seeds: every
    /// submitted request executes exactly once, in an identical order at
    /// all correct replicas.
    #[test]
    fn every_request_executes_exactly_once_in_agreed_order(
        seed in 0u64..10_000,
        batch in 1usize..=32,
        depth in 1usize..=4,
        delay_us in 50u64..=400,
    ) {
        let policy = BatchPolicy::new(batch, SimDuration::micros(delay_us), depth);
        let sim = run_cluster(seed, policy);

        // Same per-slot request sequences everywhere.
        assert_safety(&sim);

        let expected = u64::from(CLIENTS) * OPS_PER_CLIENT;
        let mut longest: Option<Vec<(u64, u32, u64)>> = None;
        for id in sim.ids().collect::<Vec<_>>() {
            let Some(r) = sim.actor(id).replica() else { continue };
            // Exactly once: no (client, op) pair executes twice.
            let mut seen = HashSet::new();
            let order: Vec<(u64, u32, u64)> = r
                .log()
                .executed
                .iter()
                .map(|(slot, req)| (*slot, req.client.0, req.op))
                .collect();
            for (_, client, op) in &order {
                prop_assert!(
                    seen.insert((*client, *op)),
                    "request (client {client}, op {op}) executed twice at {id}"
                );
            }
            // Identical order: execution logs are prefixes of one another.
            match &longest {
                None => longest = Some(order),
                Some(reference) => {
                    let (short, long) = if order.len() <= reference.len() {
                        (&order, reference)
                    } else {
                        (reference, &order)
                    };
                    prop_assert_eq!(
                        short.as_slice(),
                        &long[..short.len()],
                        "execution orders diverge at {}",
                        id
                    );
                    if order.len() > longest.as_ref().unwrap().len() {
                        longest = Some(order);
                    }
                }
            }
        }
        // Every submitted request executed somewhere (the longest log —
        // the leader's — has all of them; laggards are prefixes).
        prop_assert_eq!(longest.unwrap().len() as u64, expected);
    }
}

/// The committed golden traces pin the default-policy (passthrough)
/// trace byte for byte: batching must be invisible unless switched on,
/// and the trace vocabulary must not drift by accident. Regenerate the
/// goldens only for a deliberate, reviewed event-vocabulary change (the
/// causal-span events of DESIGN.md §14 were one such change).
#[test]
fn default_policy_traces_are_byte_identical_to_goldens() {
    for seed in [7u64, 21] {
        let sink = TraceSink::unbounded();
        let cfg = ClusterConfig::new(5, 1).unwrap();
        let mut sim = ClusterBuilder::new(cfg, seed)
            .clients(2, 8)
            .trace_sink(sink.clone())
            .build();
        sim.run_until(SimTime::from_micros(300_000));
        assert_eq!(total_committed(&sim), 16, "golden workload must finish");
        let got = sink.export_jsonl();
        let golden_path = format!(
            "{}/tests/golden/trace_default_seed{seed}.jsonl",
            env!("CARGO_MANIFEST_DIR")
        );
        let want = std::fs::read_to_string(&golden_path).expect("golden trace readable");
        assert_eq!(
            got, want,
            "default-policy trace for seed {seed} diverged from the committed golden \
             ({golden_path}); either the passthrough identity broke or the trace \
             vocabulary changed without regenerating the goldens"
        );
    }
}

/// Non-default policies must not leak into default behaviour: a gated
/// batch-1/depth-1 policy (same shape as default, but distinguishable)
/// commits everything too, exercising the pipeline-depth gate itself.
#[test]
fn gated_unbatched_policy_still_commits_everything() {
    let policy = BatchPolicy::new(1, SimDuration::micros(1), 1);
    assert!(!policy.is_passthrough());
    let sim = run_cluster(3, policy);
    assert_safety(&sim);
}
