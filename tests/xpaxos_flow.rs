//! Experiment E1: the XPaxos normal-case message flow of Fig. 2 and the
//! delayed-PREPARE scenario of Fig. 3, verified by message accounting.

use qsel_simnet::{LinkState, SimDuration, SimTime};
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{assert_safety, total_committed, ClusterBuilder};

/// Fig. 2 shape: per committed request the leader sends q−1 PREPAREs and
/// each of the q−1 followers broadcasts a COMMIT to the q−1 other members.
#[test]
fn fig2_message_pattern_counts() {
    let cfg = ClusterConfig::new(7, 2).unwrap(); // q = 5 as in Fig. 2 (f=2)
    let ops = 20;
    let mut sim = ClusterBuilder::new(cfg, 5).clients(1, ops).build();
    sim.run_until(SimTime::from_micros(2_000_000));
    assert_eq!(total_committed(&sim), ops);
    assert_safety(&sim);
    let stats = sim.stats();
    let q = 5u64;
    assert_eq!(stats.by_kind["prepare"], ops * (q - 1), "one PREPARE per member");
    let commits = stats.by_kind["commit"];
    let formula = ops * (q - 1) * (q - 1);
    assert!(
        (formula..=formula + ops * (q - 1)).contains(&commits),
        "each follower broadcasts its COMMIT to the other members          (plus Fig. 3 resends): {commits} outside [{formula}, {}]",
        formula + ops * (q - 1)
    );
    // No view changes, no selection traffic in a fault-free run.
    assert!(stats.by_kind.get("view-change").is_none());
    assert!(stats.by_kind.get("new-view").is_none());
    assert!(stats.by_kind.get("update").is_none());
}

/// Passive replicas take part in no agreement exchange — the message
/// saving the paper's introduction is about — while still converging via
/// the leader's background lazy replication.
#[test]
fn passive_replicas_outside_agreement() {
    let cfg = ClusterConfig::new(4, 1).unwrap();
    let ops = 10u64;
    let mut sim = ClusterBuilder::new(cfg, 6).clients(1, ops).build();
    sim.run_until(SimTime::from_micros(1_000_000));
    assert_eq!(total_committed(&sim), ops);
    let q = 3u64;
    assert_eq!(sim.stats().by_kind["prepare"], ops * (q - 1));
    // Commits: the formula, plus protocol-legal resends when a COMMIT
    // overtakes its PREPARE and the slot decides early (Fig. 3).
    let commits = sim.stats().by_kind["commit"];
    let formula = ops * (q - 1) * (q - 1);
    assert!(
        (formula..=formula + ops * (q - 1)).contains(&commits),
        "commits {commits} outside [{formula}, {}]",
        formula + ops * (q - 1)
    );
    let passive = sim.actor(ProcessId(4)).replica().unwrap();
    assert_eq!(passive.log().decided_count(), ops as usize, "lazy catch-up");
}

/// Fig. 3: the leader's PREPARE to one follower is delayed so COMMITs
/// overtake it. The follower must commit from the embedded PREPARE and the
/// system must make progress without any view change (the delay stays
/// within the detector timeout).
#[test]
fn fig3_commit_overtakes_prepare() {
    let cfg = ClusterConfig::new(4, 1).unwrap();
    let ops = 10;
    let mut sim = ClusterBuilder::new(cfg, 8).clients(1, ops).build();
    sim.start();
    // Delay leader→p3 prepares by 600µs: commits via p2 (~100µs + 100µs)
    // arrive first, but the prepare still lands within the 2ms timeout.
    sim.set_link(
        ProcessId(1),
        ProcessId(3),
        LinkState {
            extra_delay: SimDuration::micros(600),
            ..Default::default()
        },
    );
    sim.run_until(SimTime::from_micros(2_000_000));
    assert_eq!(total_committed(&sim), ops);
    assert_safety(&sim);
    for p in [1, 2, 3].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        assert_eq!(r.view(), 0, "no view change at {p}");
        assert_eq!(r.stats().detections, 0, "no detections at {p}");
    }
    // p3 decided everything despite the overtaking.
    assert_eq!(
        sim.actor(ProcessId(3)).replica().unwrap().log().decided_count(),
        ops as usize
    );
}

/// The §V-A accuracy argument: with delays under the timeout, a fault-free
/// run raises no suspicions at all, even under the Fig. 3 reordering.
#[test]
fn accuracy_requirements_hold_fault_free() {
    let cfg = ClusterConfig::new(4, 1).unwrap();
    let mut sim = ClusterBuilder::new(cfg, 9).clients(2, 10).build();
    sim.start();
    sim.set_link(
        ProcessId(1),
        ProcessId(2),
        LinkState {
            extra_delay: SimDuration::micros(500),
            ..Default::default()
        },
    );
    sim.run_until(SimTime::from_micros(2_000_000));
    assert_eq!(total_committed(&sim), 20);
    for p in [1, 2, 3].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        assert_eq!(
            r.fd_stats().suspicions_raised,
            0,
            "false suspicion at {p}: {:?}",
            r.fd_stats().expired_by_label
        );
    }
}
