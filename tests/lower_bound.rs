//! Theorem 4 (§VII-B) and the Figure 5 worked example: the adversary can
//! force `C(f+2, 2)` proposed quorums out of any deterministic algorithm,
//! and Algorithm 1 allows no more (the conjecture below Theorem 3).

use qsel_adversary::cluster::ClusterUnderAttack;
use qsel_adversary::game::{
    binomial, greedy_adversary, max_interruptions, GameResult, LexFirstIs, QuorumAlgorithm,
    RoundRobinEnumeration,
};
use qsel_types::{ClusterConfig, ProcessId};

/// The exact optimal adversary achieves the Theorem 4 bound against
/// Algorithm 1 — and no more (so the paper's conjectured `C(f+2,2)` is
/// exactly the per-epoch optimum).
#[test]
fn optimal_adversary_matches_theorem4_bound() {
    for f in 1..=3u32 {
        for n in [3 * f + 1, 3 * f + 3] {
            let q = n - f;
            let result = max_interruptions(&LexFirstIs::new(n, q), n, f);
            let bound = binomial((f + 2) as u64, 2) as u64 - 1; // changes
            assert_eq!(
                result.changes, bound,
                "f={f} n={n}: optimal changes {} != C(f+2,2)-1 = {bound}",
                result.changes
            );
        }
    }
}

/// Every optimal schedule found obeys the Theorem 4 rules when replayed:
/// each suspicion is inside the then-current quorum (rule 1) and the pair
/// never shares a quorum afterwards (rule 2 / no-suspicion).
#[test]
fn optimal_schedule_obeys_game_rules() {
    for f in 1..=3u32 {
        let n = 3 * f + 1;
        let q = n - f;
        let GameResult { schedule, .. } = max_interruptions(&LexFirstIs::new(n, q), n, f);
        let mut algo = LexFirstIs::new(n, q);
        let mut suspected: Vec<(ProcessId, ProcessId)> = Vec::new();
        for &(a, b) in &schedule {
            let quorum = algo.quorum();
            assert!(quorum.contains(a) && quorum.contains(b), "rule 1 violated");
            algo.on_suspicion(a, b);
            suspected.push((a, b));
            // Rule 2: no previously-suspected pair shares the new quorum.
            let now = algo.quorum();
            for &(x, y) in &suspected {
                assert!(
                    !(now.contains(x) && now.contains(y)),
                    "rule 2 violated for ({x},{y})"
                );
            }
        }
    }
}

/// The same optimal adversary forces at least as many changes out of the
/// XPaxos enumeration (it cannot do better than a learning algorithm).
#[test]
fn enumeration_is_no_better_than_algorithm1() {
    for f in 1..=2u32 {
        let n = 3 * f + 1;
        let q = n - f;
        let alg1 = max_interruptions(&LexFirstIs::new(n, q), n, f).changes;
        let enumeration = max_interruptions(&RoundRobinEnumeration::new(n, q), n, f).changes;
        assert!(
            enumeration >= alg1,
            "f={f}: enumeration {enumeration} < algorithm 1 {alg1}"
        );
    }
}

/// Figure 5's setting: f = 3, suspicions confined to `F+2` = 5 nodes.
/// The optimal adversary realizes C(5,2) = 10 proposed quorums.
#[test]
fn fig5_f3_scenario() {
    let f = 3u32;
    let n = 3 * f + 1;
    let q = n - f;
    let result = max_interruptions(&LexFirstIs::new(n, q), n, f);
    assert_eq!(result.changes + 1, binomial(5, 2) as u64); // 10 proposed
    // The schedule uses at most f+2 distinct nodes (the F+2 window).
    let mut nodes: Vec<ProcessId> = result
        .schedule
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect();
    nodes.sort();
    nodes.dedup();
    assert!(nodes.len() <= (f + 2) as usize);
}

/// The greedy adversary against the *full protocol* (real modules with
/// propagation) stays within Theorem 3's f(f+1) per-epoch bound.
#[test]
fn full_protocol_within_theorem3_bound() {
    for f in 1..=2u32 {
        let n = 3 * f + 1;
        let cfg = ClusterConfig::new(n, f).unwrap();
        let mut target = ClusterUnderAttack::new(cfg, 99);
        let _ = greedy_adversary(&mut target, n, f);
        assert!(
            target.observer_max_per_epoch() <= u64::from(f * (f + 1)),
            "f={f}: {} > f(f+1)",
            target.observer_max_per_epoch()
        );
    }
}
