//! Cross-crate end-to-end scenarios: mixed fault classes in one run, the
//! Byzantine actors of `qsel-adversary` against the full stack, and the
//! E12 throughput-recovery shape.

use qsel::node::{NodeConfig, SelectorNode};
use qsel_adversary::byzantine::{ClusterActor, FalseAccuser, MuteProcess};
use qsel_simnet::{LinkState, SimConfig, SimDuration, SimTime, Simulation};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{assert_safety, total_committed, ClusterBuilder};

/// n = 7, f = 2: one mute Byzantine process and one false accuser at the
/// same time. Correct processes converge on a quorum with no live
/// suspicion inside it, and the mute process is excluded.
#[test]
fn mixed_byzantine_cluster_converges() {
    let cfg = ClusterConfig::new(7, 2).unwrap();
    let chain = Keychain::new(&cfg, 31);
    let actors: Vec<ClusterActor> = cfg
        .processes()
        .map(|p| match p.0 {
            2 => ClusterActor::Mute(MuteProcess),
            5 => ClusterActor::Accuser(FalseAccuser::new(
                cfg,
                p,
                &chain,
                NodeConfig::default(),
                vec![ProcessId(1), ProcessId(6)],
                SimDuration::millis(7),
            )),
            _ => ClusterActor::Honest(SelectorNode::new_quorum(
                cfg,
                p,
                &chain,
                NodeConfig::default(),
            )),
        })
        .collect();
    let mut sim = Simulation::new(SimConfig::new(7, 31), actors);
    sim.run_until(SimTime::from_micros(1_000_000));
    let honest: Vec<ProcessId> = [1u32, 3, 4, 6, 7].map(ProcessId).to_vec();
    let reference = sim.actor(honest[0]).node().unwrap().current_plain_quorum().unwrap();
    for &p in &honest {
        let node = sim.actor(p).node().unwrap();
        let q = node.current_plain_quorum().unwrap();
        assert_eq!(q, reference, "disagreement at {p}");
        assert!(!q.contains(ProcessId(2)), "mute process inside quorum at {p}");
        // The accuser's fabricated edges keep (5,1) and (5,6) apart.
        assert!(
            !(q.contains(ProcessId(5)) && q.contains(ProcessId(1))),
            "accuser paired with its victim p1 at {p}: {q}"
        );
        assert!(
            !(q.contains(ProcessId(5)) && q.contains(ProcessId(6))),
            "accuser paired with its victim p6 at {p}: {q}"
        );
    }
}

/// E12 shape: XPaxos throughput dips at a crash and recovers to the
/// fault-free rate after a single quorum change.
#[test]
fn throughput_recovers_after_crash() {
    let cfg = ClusterConfig::new(4, 1).unwrap();
    let mut sim = ClusterBuilder::new(cfg, 55)
        .clients(2, 1_000_000)
        .retry(SimDuration::millis(20))
        .build();
    sim.start();
    let bucket = SimDuration::millis(100);
    let mut t = SimTime::ZERO;
    let mut committed_before = 0u64;
    let mut rates = Vec::new();
    for step in 1..=8u64 {
        t = t + bucket;
        if step == 3 {
            sim.crash(ProcessId(2));
        }
        sim.run_until(t);
        let committed: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .filter_map(|&id| sim.actor(id).client().map(|c| c.committed_ops()))
            .sum();
        rates.push(committed - committed_before);
        committed_before = committed;
    }
    assert_safety(&sim);
    let before = rates[1] as f64;
    let after = *rates.last().unwrap() as f64;
    assert!(before > 0.0, "no throughput before the crash: {rates:?}");
    assert!(
        after > 0.75 * before,
        "throughput did not recover: {rates:?}"
    );
    let r = sim.actor(ProcessId(1)).replica().unwrap();
    assert!(!r.active_quorum().contains(ProcessId(2)));
    assert!(
        r.stats().views_installed <= 3,
        "quorum selection needed {} view changes for one crash",
        r.stats().views_installed
    );
}

/// Omissions from a replica *outside* the active quorum have no effect at
/// all — the paper's headline property.
#[test]
fn passive_omissions_are_free() {
    let cfg = ClusterConfig::new(4, 1).unwrap();
    let ops = 30;
    let run = |cut: bool| {
        let mut sim = ClusterBuilder::new(cfg, 66).clients(1, ops).build();
        sim.start();
        if cut {
            // p4 is passive ({p1,p2,p3} is the initial quorum): cut all of
            // its links. Nothing should change.
            for other in [1u32, 2, 3].map(ProcessId) {
                sim.set_link(ProcessId(4), other, LinkState { drop_all: true, ..Default::default() });
                sim.set_link(other, ProcessId(4), LinkState { drop_all: true, ..Default::default() });
            }
        }
        sim.run_until(SimTime::from_micros(1_500_000));
        assert_eq!(total_committed(&sim), ops);
        let r = sim.actor(ProcessId(1)).replica().unwrap();
        (r.view(), r.stats().views_installed)
    };
    let (view_healthy, vc_healthy) = run(false);
    let (view_cut, vc_cut) = run(true);
    assert_eq!(view_healthy, view_cut, "cutting a passive replica changed the view");
    assert_eq!(vc_healthy, vc_cut);
    assert_eq!(vc_cut, 0);
}
