//! Lemma 1 (§VII): suspicions and epochs propagate between correct
//! processes within one communication round.

use qsel::node::{NodeConfig, SelectorNode, ServiceMsg};
use qsel_simnet::{DelayModel, LinkState, SimConfig, SimDuration, SimTime, Simulation};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, ProcessId};

fn cluster(seed: u64, delay: DelayModel) -> Simulation<ServiceMsg, SelectorNode> {
    let cfg = ClusterConfig::new(5, 2).unwrap();
    let chain = Keychain::new(&cfg, seed);
    let nodes: Vec<SelectorNode> = cfg
        .processes()
        .map(|p| SelectorNode::new_quorum(cfg, p, &chain, NodeConfig::default()))
        .collect();
    Simulation::new(SimConfig::new(5, seed).with_delay(delay), nodes)
}

/// A suspicion raised at one process appears in every correct process's
/// matrix within one communication round (max link delay) plus scheduling
/// slack.
#[test]
fn suspicion_propagates_within_one_round() {
    let max_delay = SimDuration::micros(150);
    let mut sim = cluster(3, DelayModel::uniform(SimDuration::micros(50), max_delay));
    sim.start();
    // Cut p2 → everyone so heartbeat expectations on p2 expire.
    for victim in [1u32, 3, 4, 5].map(ProcessId) {
        sim.set_link(
            ProcessId(2),
            victim,
            LinkState {
                drop_all: true,
                ..Default::default()
            },
        );
    }
    // Find the first instant some correct process records a suspicion of
    // p2, then verify all others have it one round later.
    let horizon = SimTime::from_micros(100_000);
    let step = SimDuration::micros(50);
    let mut t = SimTime::ZERO;
    let mut first_seen: Option<SimTime> = None;
    let observers = [1u32, 3, 4, 5].map(ProcessId);
    let edge_known = |sim: &Simulation<ServiceMsg, SelectorNode>, p: ProcessId| {
        // Any edge incident to p2 in p's *matrix* (epoch 1 graph).
        let node = sim.actor(p);
        let q = node.current_plain_quorum().expect("quorum mode");
        // The quorum no longer containing p2 implies the suspicion edge is
        // in the suspect graph at p.
        !q.contains(ProcessId(2))
    };
    'outer: while t < horizon {
        t = t + step;
        sim.run_until(t);
        for p in observers {
            if edge_known(&sim, p) {
                first_seen = Some(t);
                break 'outer;
            }
        }
    }
    let first = first_seen.expect("suspicion of the omitting p2 must arise");
    // One round (+ one scheduling step of slack) later: everyone knows.
    let deadline = first + max_delay + step + step;
    sim.run_until(deadline);
    for p in observers {
        assert!(
            edge_known(&sim, p),
            "at {p}: suspicion not propagated within one round (first seen {first}, now {deadline})"
        );
    }
}

/// After propagation quiesces, correct processes have identical matrices,
/// epochs and quorums (the Agreement property, §IV-A).
#[test]
fn matrices_converge_to_agreement() {
    let mut sim = cluster(11, DelayModel::default());
    sim.start();
    sim.set_link(
        ProcessId(2),
        ProcessId(4),
        LinkState {
            drop_all: true,
            ..Default::default()
        },
    );
    sim.run_until(SimTime::from_micros(300_000));
    let reference = sim.actor(ProcessId(1));
    let ref_q = reference.current_plain_quorum();
    let ref_epoch = reference.epoch();
    for p in [3u32, 5].map(ProcessId) {
        assert_eq!(sim.actor(p).current_plain_quorum(), ref_q, "quorum at {p}");
        assert_eq!(sim.actor(p).epoch(), ref_epoch, "epoch at {p}");
    }
}
