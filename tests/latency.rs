//! Integration tests for causal-span latency attribution (DESIGN.md §14).
//!
//! The span reconstructor has unit tests on hand-built traces inside
//! `qsel-obs`; here the whole stack is exercised — a real batched run,
//! export, reparse, reconstruction — and the claims that only hold
//! end-to-end are pinned:
//!
//! 1. under a non-passthrough `BatchPolicy`, the time a request parks in
//!    the leader's accumulation window (`batch_wait`) is *included* in
//!    the client-observed `ClientCommit::latency_us`, and the span
//!    decomposition makes it visible;
//! 2. for every attributed span the six phases sum **exactly** to the
//!    end-to-end latency — the decomposition is a partition, not an
//!    approximation;
//! 3. every committed request attributes to a full causal chain in a
//!    fault-free run (nothing silently dropped from the report).

#![forbid(unsafe_code)]

use qsel_repro::qsel_obs::replay::parse_jsonl;
use qsel_repro::qsel_obs::span::{SpanReport, PHASES};
use qsel_repro::qsel_scenario::{BatchSpec, Cluster, RunSpec, Scenario, Workload};
use qsel_repro::qsel_scenario::run_scenario;

/// One closed-loop workload under the given batch policy, spans rebuilt
/// from the exported (not in-memory) trace.
fn spans_under(batch: BatchSpec) -> (SpanReport, u64) {
    let sc = Scenario {
        name: "latency-itest".to_string(),
        cluster: Cluster {
            n: 5,
            f: 1,
            ..Cluster::default()
        },
        workload: Workload {
            clients: 3,
            ops_per_client: 8,
            ..Workload::default()
        },
        batch,
        run: RunSpec {
            settle_us: 10_000_000,
            min_commit_permille: 1000,
            stable_from_us: None,
        },
        ..Scenario::default()
    };
    let artifacts = run_scenario(&sc, 5).expect("scenario runs");
    assert!(artifacts.verdict.pass(), "fault-free run must pass");
    let committed = artifacts.verdict.metrics["committed_ops"];
    let records = parse_jsonl(&artifacts.trace_jsonl).expect("export reparses");
    (SpanReport::build(&records), committed)
}

#[test]
fn batch_wait_is_part_of_client_observed_latency() {
    // Size-8 batches with a 400us accumulation window: most batches close
    // on the timer, so requests demonstrably park before being proposed.
    let (batched, committed) = spans_under(BatchSpec {
        max_size: 8,
        max_delay_us: 400,
        pipeline_depth: 2,
    });
    assert_eq!(batched.spans.len() as u64, committed);
    assert!(batched.unattributed.is_empty());

    let bw = PHASES.iter().position(|p| *p == "batch_wait").unwrap();
    let total_wait: u64 = batched.spans.iter().map(|s| s.phases[bw]).sum();
    assert!(
        total_wait > 0,
        "a timer-gated batch policy must produce non-zero batch_wait"
    );
    // The wait is inside the client-observed latency, not alongside it:
    // every span's latency bounds its own batch_wait component...
    for s in &batched.spans {
        assert!(
            s.latency_us >= s.phases[bw],
            "client {} op {}: batch_wait {}us exceeds latency {}us",
            s.client,
            s.op,
            s.phases[bw],
            s.latency_us
        );
    }
    // ...and the workload-wide mean latency strictly exceeds the
    // passthrough baseline's by (at least a share of) the parked time.
    let (passthrough, pt_committed) = spans_under(BatchSpec::default());
    assert_eq!(passthrough.spans.len() as u64, pt_committed);
    let mean = |r: &SpanReport| -> u64 {
        r.spans.iter().map(|s| s.latency_us).sum::<u64>() / r.spans.len() as u64
    };
    assert!(
        mean(&batched) > mean(&passthrough),
        "batch-wait must show up in client-observed latency: batched mean \
         {}us vs passthrough mean {}us",
        mean(&batched),
        mean(&passthrough)
    );
    let pt_wait: u64 = passthrough.spans.iter().map(|s| s.phases[bw]).sum();
    assert_eq!(pt_wait, 0, "passthrough has no accumulation window to wait in");
}

#[test]
fn phases_partition_latency_exactly_for_every_span() {
    for batch in [
        BatchSpec::default(),
        BatchSpec {
            max_size: 4,
            max_delay_us: 250,
            pipeline_depth: 3,
        },
    ] {
        let (report, committed) = spans_under(batch);
        assert_eq!(report.spans.len() as u64, committed, "all commits attribute");
        for s in &report.spans {
            assert_eq!(
                s.phase_sum(),
                s.latency_us,
                "client {} op {} (batch {batch:?}): phases {:?} do not sum to \
                 the end-to-end latency",
                s.client,
                s.op,
                s.phases
            );
        }
    }
}
