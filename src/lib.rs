//! Umbrella crate for the reproduction of *Quorum Selection for Byzantine
//! Fault Tolerance* (Leander Jehl, ICDCS 2019).
//!
//! This crate hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the implementation lives in
//! the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`qsel_types`] | process ids, cluster config, quorums, simulated signatures, SHA-256 |
//! | [`qsel_simnet`] | deterministic discrete-event network simulator |
//! | [`qsel_graph`] | independent sets, vertex covers, maximal line subgraphs |
//! | [`qsel_detector`] | the expectation-based Byzantine failure detector (§IV-B) |
//! | [`qsel`] | Algorithm 1 (Quorum Selection) and Algorithm 2 (Follower Selection) |
//! | [`qsel_xpaxos`] | the XPaxos SMR substrate with both quorum policies (§V) |
//! | [`qsel_pbft`] | PBFT-style all-to-all baseline for the message-count claim |
//! | [`qsel_adversary`] | Theorem 3/4/9 adversary games and Byzantine actors |
//! | [`qsel_obs`] | deterministic tracing, metrics, offline trace-replay bound checks |
//! | [`qsel_scenario`] | declarative scenario DSL + deterministic runner with verdicts |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub mod chaos;

pub use qsel;
pub use qsel_adversary;
pub use qsel_detector;
pub use qsel_graph;
pub use qsel_obs;
pub use qsel_pbft;
pub use qsel_scenario;
pub use qsel_simnet;
pub use qsel_types;
pub use qsel_xpaxos;
