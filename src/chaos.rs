//! Reusable chaos-run machinery.
//!
//! A chaos run derives a scripted [`FaultPlan`] deterministically from a
//! seed, executes it against a full XPaxos cluster, checks the per-slot
//! safety invariant at several instants (it must hold *during* the chaos,
//! not just at the end), and reports whether the system returned to
//! liveness after the last fault healed. The whole execution is a pure
//! function of the seed: the plan generator uses its own RNG and the
//! simulator derives every delay, drop, duplication and reordering draw
//! from its seeded stream, so `(seed, plan)` reproduces a failure exactly.
//!
//! Shared by the `tests/chaos.rs` soak suite and the
//! `examples/chaos_run.rs` smoke binary (which CI runs on a fixed seed).

use qsel_obs::TraceSink;
use qsel_simnet::{FaultEvent, FaultPlan, LinkState, SimDuration, SimTime, Simulation};
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{assert_safety, total_committed, ClusterBuilder, XpActor};
use qsel_xpaxos::messages::XpMsg;
use qsel_xpaxos::policy::BatchPolicy;
use qsel_xpaxos::replica::ReplicaConfig;
use qsel_xpaxos::CheckpointPolicy;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Cluster size used by chaos runs.
pub const N: u32 = 4;
/// Fault threshold used by chaos runs.
pub const F: u32 = 1;
/// Closed-loop clients per run.
pub const CLIENTS: u32 = 2;
/// Operations each client must commit.
pub const OPS_PER_CLIENT: u64 = 6;
/// Checkpoint interval used by chaos runs — deliberately tiny, so signed
/// checkpoints, quorum stabilization and log compaction fire constantly
/// *during* the fault schedule instead of only in long quiet runs.
pub const CKPT_INTERVAL: u64 = 4;
/// Compacted batches retained below the stable checkpoint for serving
/// incremental state transfer.
pub const ARCHIVE_RETAIN: u64 = 64;

/// Post-heal grace period before declaring a liveness failure. Generous on
/// purpose: chaos can legitimately back client retries off to their cap
/// (64 × 20 ms) and inflate detector timeouts before stabilization.
pub const SETTLE_MICROS: u64 = 15_000_000;

fn micros(t: u64) -> SimTime {
    SimTime::from_micros(t)
}

/// Derives the fault script for `seed`. Uses its own RNG (not the
/// simulation's), so the pair `(seed, plan)` fully determines a run.
///
/// Shape: 3–5 sequential fault rounds, each picking one victim and one
/// fault class, active for 30–150 ms, with a healthy gap before the next
/// round. At most one process is dead or frozen at any instant (the
/// cluster tolerates `f = 1`), partitions are arbitrary but always heal,
/// and the script ends with a global heal plus blanket resume/restart.
pub fn plan_for(seed: u64, n: u32) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0A5);
    let mut plan = FaultPlan::new();
    let mut t: u64 = 80_000 + rng.random_range(0..40_000u64);
    let rounds = 3 + rng.random_range(0..3u32);
    for _ in 0..rounds {
        let victim = ProcessId(rng.random_range(1..=n));
        let dur: u64 = 30_000 + rng.random_range(0..120_000u64);
        match rng.random_range(0..5u32) {
            0 => {
                plan.push(micros(t), FaultEvent::Crash(victim));
                plan.push(micros(t + dur), FaultEvent::Restart(victim));
            }
            1 => {
                plan.push(micros(t), FaultEvent::Pause(victim));
                plan.push(micros(t + dur), FaultEvent::Resume(victim));
            }
            2 => {
                let mut group = vec![victim];
                let other = ProcessId(rng.random_range(1..=n));
                if other != victim && rng.random::<bool>() {
                    group.push(other);
                }
                plan.push(micros(t), FaultEvent::Partition(group));
                plan.push(micros(t + dur), FaultEvent::HealAll);
            }
            3 => {
                for other in (1..=n).map(ProcessId) {
                    if other == victim {
                        continue;
                    }
                    plan.push(
                        micros(t),
                        FaultEvent::DegradeLink {
                            from: victim,
                            to: other,
                            extra_delay: SimDuration::micros(1_000 + rng.random_range(0..8_000u64)),
                            jitter: SimDuration::micros(rng.random_range(0..2_000u64)),
                        },
                    );
                }
                plan.push(micros(t + dur), FaultEvent::HealAll);
            }
            _ => {
                // A lossy gremlin link: duplication, reordering and light
                // probabilistic drops, both directions.
                let other = ProcessId(1 + victim.0 % n); // distinct from victim
                let state = LinkState {
                    dup_prob: 0.2 + rng.random::<f64>() * 0.3,
                    reorder_prob: 0.2 + rng.random::<f64>() * 0.3,
                    drop_prob: rng.random::<f64>() * 0.1,
                    ..Default::default()
                };
                for (a, b) in [(victim, other), (other, victim)] {
                    plan.push(
                        micros(t),
                        FaultEvent::SetLink {
                            from: a,
                            to: b,
                            state: state.clone(),
                        },
                    );
                }
                for (a, b) in [(victim, other), (other, victim)] {
                    plan.push(micros(t + dur), FaultEvent::HealLink { from: a, to: b });
                }
            }
        }
        t += dur + 20_000 + rng.random_range(0..60_000u64);
    }
    // Terminal heal: restore every link and revive every process
    // (Resume/Restart of a healthy process is a no-op).
    plan.push(micros(t), FaultEvent::HealAll);
    for p in (1..=n).map(ProcessId) {
        plan.push(micros(t), FaultEvent::Resume(p));
        plan.push(micros(t), FaultEvent::Restart(p));
    }
    plan
}

/// Derives the batch policy for `seed` (independent RNG stream from
/// [`plan_for`]'s, so fault scripts are unchanged for existing seeds).
/// Chaos runs sweep the batching configuration space — sizes 1..=8,
/// pipeline depths 1..=4, accumulation windows 0..=800 µs — so the soak
/// exercises batched slots, partial-batch timer closes and pipelined
/// commits under faults, not just the passthrough path. A seed that draws
/// size 1 / zero delay / depth 1 lands on the passthrough identity, which
/// keeps the legacy code path in the sweep too.
pub fn batch_policy_for(seed: u64) -> BatchPolicy {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0xBA7C);
    let size = rng.random_range(1..=8u64) as usize;
    let depth = rng.random_range(1..=4u64) as usize;
    // A coarse 100 µs grid so the zero-delay (close-immediately) branch
    // is actually drawn by some seeds, not vanishingly unlikely.
    let delay = SimDuration::micros(rng.random_range(0..=8u64) * 100);
    BatchPolicy::new(size, delay, depth)
}

/// Builds the standard chaos cluster for `seed`.
pub fn build(seed: u64) -> Simulation<XpMsg, XpActor> {
    build_traced(seed, TraceSink::disabled())
}

/// Builds the standard chaos cluster for `seed` with a trace sink wired
/// through every layer (simulator, replicas, detectors, selection modules,
/// clients), running under the seed-derived [`batch_policy_for`].
pub fn build_traced(seed: u64, sink: TraceSink) -> Simulation<XpMsg, XpActor> {
    build_sized(seed, CLIENTS, OPS_PER_CLIENT, sink)
}

/// [`build_traced`] with an explicit workload size, for soaks that need
/// enough slots that an unbounded log would visibly exceed the
/// checkpoint-derived residency bound. Checkpointing runs at
/// [`CKPT_INTERVAL`] in every chaos cluster.
pub fn build_sized(
    seed: u64,
    clients: u32,
    ops_per_client: u64,
    sink: TraceSink,
) -> Simulation<XpMsg, XpActor> {
    let cfg = ClusterConfig::new(N, F).unwrap();
    let rcfg = ReplicaConfig {
        batch: batch_policy_for(seed),
        checkpoint: CheckpointPolicy::new(CKPT_INTERVAL, ARCHIVE_RETAIN),
        ..Default::default()
    };
    ClusterBuilder::new(cfg, seed)
        .replica_config(rcfg)
        .clients(clients, ops_per_client)
        .trace_sink(sink)
        .build()
}

/// One finished chaos run plus its script.
pub struct ChaosRun {
    /// The simulation after the run (for inspection and assertions).
    pub sim: Simulation<XpMsg, XpActor>,
    /// The executed fault script.
    pub plan: FaultPlan,
    /// Operations committed across all clients.
    pub committed: u64,
    /// Operations the clients were asked to commit.
    pub expected: u64,
}

impl ChaosRun {
    /// Whether the run returned to liveness after the last heal.
    pub fn live(&self) -> bool {
        self.committed == self.expected
    }
}

/// Runs one seeded chaos scenario: schedules the plan, checks safety
/// mid-chaos, at the final heal and at the end, and drives the run until
/// every client op committed or the settle window expired.
///
/// # Panics
///
/// Panics (with the offending replica and slot) if the per-slot safety
/// invariant is ever violated. Liveness is *reported*, not asserted —
/// callers decide how to fail.
pub fn run_chaos(seed: u64) -> ChaosRun {
    run_chaos_with_sink(seed, TraceSink::disabled())
}

/// [`run_chaos`] with a trace sink wired through the whole stack. Passing
/// [`TraceSink::disabled`] reproduces `run_chaos` exactly: tracing draws
/// nothing from the simulation's RNG, so the traced and untraced runs of a
/// seed are the same execution.
pub fn run_chaos_with_sink(seed: u64, sink: TraceSink) -> ChaosRun {
    run_chaos_sized(seed, CLIENTS, OPS_PER_CLIENT, sink)
}

/// [`run_chaos_with_sink`] with an explicit workload size — the
/// log-compaction soak drives enough slots past the checkpoint interval
/// that the bounded-residency assertion is non-vacuous.
pub fn run_chaos_sized(
    seed: u64,
    clients: u32,
    ops_per_client: u64,
    sink: TraceSink,
) -> ChaosRun {
    let plan = plan_for(seed, N);
    let heal_time = plan.last_fault_time().expect("plan is never empty");
    let expected = clients as u64 * ops_per_client;
    let mut sim = build_sized(seed, clients, ops_per_client, sink);
    sim.schedule_plan(plan.clone());

    // Safety must hold while faults are still active, not just at the end.
    sim.run_until(micros(heal_time.as_micros() / 2));
    assert_safety(&sim);
    sim.run_until(heal_time);
    assert_safety(&sim);

    // Liveness: advance in slices so a finished run exits early.
    let deadline = heal_time + SimDuration::micros(SETTLE_MICROS);
    let mut next = heal_time;
    while total_committed(&sim) < expected && next < deadline {
        next = (next + SimDuration::micros(250_000)).min(deadline);
        sim.run_until(next);
    }
    assert_safety(&sim);
    let committed = total_committed(&sim);
    ChaosRun {
        sim,
        plan,
        committed,
        expected,
    }
}
