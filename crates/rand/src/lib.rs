//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace ships the
//! small random-number surface it actually uses: a deterministic, seedable
//! [`rngs::StdRng`] plus the [`Rng`] / [`RngExt`] / [`SeedableRng`] traits.
//! Determinism is the point — the discrete-event simulator derives whole
//! executions from `(seed, plan)`, so the generator must be stable across
//! runs and platforms. The implementation is xoshiro256++ seeded through
//! SplitMix64, the same construction the real `rand::rngs::SmallRng` family
//! uses; statistical quality is far beyond what fault sampling needs.
//!
//! Not implemented (unused by this workspace): distributions, OS entropy,
//! thread-local RNGs, byte-filling.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire output stream is a pure function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value of type `T` from the uniform "standard" distribution
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range, fair
    /// `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`. Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types samplable by [`RngExt::random`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` by widening multiply; bias is < 2^-64 per
/// draw, irrelevant for fault sampling and much faster than rejection.
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Unlike the real crate's ChaCha-based `StdRng` this is not
    /// cryptographic, but every consumer in this workspace only needs
    /// reproducible simulation randomness.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference seeding scheme.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.random_range(3u64..=7);
            assert!((3..=7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 7;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds never sampled");
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(draw(&mut rng) < 10);
        }
    }

    #[test]
    fn u32_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.random_range(0u32..4) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
