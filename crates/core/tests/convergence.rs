//! Property tests for the eventual-consistency core of Algorithms 1 and 2:
//! under arbitrary (per-link FIFO) delivery interleavings, duplicated
//! messages and arbitrary suspicion injections, all modules converge to
//! the same matrix, epoch and quorum once the network drains — the
//! Agreement property of §IV-A, mechanically.

use proptest::prelude::*;
use qsel::messages::{SignedFollowers, SignedUpdate};
use qsel::{FollowerSelection, FsOutput, QsOutput, QuorumSelection};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, ProcessId, ProcessSet};
use std::collections::VecDeque;

/// Per-link FIFO queues drained in a property-driven random order.
struct Network<Msg> {
    n: u32,
    links: Vec<VecDeque<Msg>>, // (from, to) indexed
}

impl<Msg: Clone> Network<Msg> {
    fn new(n: u32) -> Self {
        Network {
            n,
            links: (0..n * n).map(|_| VecDeque::new()).collect(),
        }
    }

    fn broadcast(&mut self, from: ProcessId, msg: Msg) {
        for to in 1..=self.n {
            if to != from.0 {
                let idx = (from.0 - 1) * self.n + (to - 1);
                self.links[idx as usize].push_back(msg.clone());
            }
        }
    }

    /// Pops from the `pick`-th non-empty link (wrapping), preserving
    /// per-link FIFO while letting the property choose the interleaving.
    fn pop(&mut self, pick: usize) -> Option<(ProcessId, Msg)> {
        let nonempty: Vec<usize> = (0..self.links.len())
            .filter(|&i| !self.links[i].is_empty())
            .collect();
        if nonempty.is_empty() {
            return None;
        }
        let idx = nonempty[pick % nonempty.len()];
        let msg = self.links[idx].pop_front().expect("nonempty");
        let to = ProcessId((idx as u32 % self.n) + 1);
        Some((to, msg))
    }

    fn is_empty(&self) -> bool {
        self.links.iter().all(VecDeque::is_empty)
    }
}

fn qs_modules(cfg: ClusterConfig, seed: u64) -> Vec<QuorumSelection> {
    let chain = Keychain::new(&cfg, seed);
    cfg.processes()
        .map(|p| QuorumSelection::new(cfg, p, chain.signer(p), chain.verifier()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 agreement under arbitrary interleavings: random
    /// one-shot suspicions at random processes, updates delivered in a
    /// property-chosen order, every message occasionally re-delivered.
    #[test]
    fn qs_converges_under_any_interleaving(
        suspicions in proptest::collection::vec((1u32..=5, 1u32..=5), 1..6),
        order in proptest::collection::vec(any::<usize>(), 0..400),
        dup_every in 2usize..7,
    ) {
        let cfg = ClusterConfig::new(5, 2).unwrap();
        let mut modules = qs_modules(cfg, 77);
        let mut net: Network<SignedUpdate> = Network::new(5);

        let handle = |m: &mut QuorumSelection, out: Vec<QsOutput>, net: &mut Network<SignedUpdate>| {
            for o in out {
                if let QsOutput::Broadcast(u) = o {
                    net.broadcast(m.me(), u);
                }
            }
        };

        for (by, target) in suspicions {
            if by == target {
                continue;
            }
            let s: ProcessSet = [ProcessId(target)].into_iter().collect();
            let out = modules[(by - 1) as usize].on_suspected(s);
            handle(&mut modules[(by - 1) as usize], out, &mut net);
            let out = modules[(by - 1) as usize].on_suspected(ProcessSet::new());
            handle(&mut modules[(by - 1) as usize], out, &mut net);
        }

        // Drain with the property-chosen interleaving, then finish
        // deterministically.
        let mut step = 0usize;
        let mut order_iter = order.into_iter();
        while !net.is_empty() {
            let pick = order_iter.next().unwrap_or(step);
            step += 1;
            let Some((to, msg)) = net.pop(pick) else { break };
            // Occasional duplicate delivery (idempotence check).
            if step % dup_every == 0 {
                let m = &mut modules[to.index()];
                let out = m.on_update(msg.clone());
                let me = m.me();
                for o in out {
                    if let QsOutput::Broadcast(u) = o {
                        net.broadcast(me, u);
                    }
                }
            }
            let m = &mut modules[to.index()];
            let out = m.on_update(msg);
            let me = m.me();
            for o in out {
                if let QsOutput::Broadcast(u) = o {
                    net.broadcast(me, u);
                }
            }
            prop_assert!(step < 100_000, "message storm");
        }

        let reference = &modules[0];
        for m in &modules[1..] {
            prop_assert_eq!(m.matrix(), reference.matrix(), "matrix divergence");
            prop_assert_eq!(m.epoch(), reference.epoch(), "epoch divergence");
            prop_assert_eq!(m.current_quorum(), reference.current_quorum(), "quorum divergence");
        }
        // No-suspicion: the agreed quorum is an independent set of the
        // agreed suspect graph.
        let g = reference.suspect_graph();
        prop_assert!(g.is_independent(reference.current_quorum().members()));
    }

    /// Algorithm 2 agreement under arbitrary per-link-FIFO interleavings.
    #[test]
    fn fs_converges_under_any_interleaving(
        suspicions in proptest::collection::vec((1u32..=4, 1u32..=4), 1..5),
        order in proptest::collection::vec(any::<usize>(), 0..400),
    ) {
        #[derive(Clone)]
        enum Wire {
            U(SignedUpdate),
            F(SignedFollowers),
        }
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let chain = Keychain::new(&cfg, 99);
        let mut modules: Vec<FollowerSelection> = cfg
            .processes()
            .map(|p| FollowerSelection::new(cfg, p, chain.signer(p), chain.verifier()))
            .collect();
        let mut net: Network<Wire> = Network::new(4);

        fn handle(me: ProcessId, out: Vec<FsOutput>, net: &mut Network<Wire>) {
            for o in out {
                match o {
                    FsOutput::BroadcastUpdate(u) => net.broadcast(me, Wire::U(u)),
                    FsOutput::BroadcastFollowers(f) => net.broadcast(me, Wire::F(f)),
                    _ => {}
                }
            }
        }

        for (by, target) in suspicions {
            if by == target {
                continue;
            }
            let s: ProcessSet = [ProcessId(target)].into_iter().collect();
            let out = modules[(by - 1) as usize].on_suspected(s);
            handle(ProcessId(by), out, &mut net);
            let out = modules[(by - 1) as usize].on_suspected(ProcessSet::new());
            handle(ProcessId(by), out, &mut net);
        }

        let mut step = 0usize;
        let mut order_iter = order.into_iter();
        while !net.is_empty() {
            let pick = order_iter.next().unwrap_or(step);
            step += 1;
            let Some((to, msg)) = net.pop(pick) else { break };
            let m = &mut modules[to.index()];
            let me = m.me();
            let out = match msg {
                Wire::U(u) => m.on_update(u),
                Wire::F(f) => m.on_followers(f),
            };
            handle(me, out, &mut net);
            prop_assert!(step < 100_000, "message storm");
        }

        let reference = &modules[0];
        for m in &modules[1..] {
            prop_assert_eq!(m.matrix(), reference.matrix(), "matrix divergence");
            prop_assert_eq!(m.epoch(), reference.epoch(), "epoch divergence");
            prop_assert_eq!(m.leader(), reference.leader(), "leader divergence");
            prop_assert_eq!(
                m.current_members(),
                reference.current_members(),
                "membership divergence"
            );
        }
        // No correct process was "detected" — correct processes never
        // produce detectable evidence against each other (Lemma 7).
        for m in &modules {
            prop_assert_eq!(m.stats().detections_raised, 0, "false detection at {}", m.me());
        }
    }
}
