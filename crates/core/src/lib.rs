//! # Quorum Selection for Byzantine Fault Tolerance
//!
//! A faithful implementation of Leander Jehl's *Quorum Selection for
//! Byzantine Fault Tolerance* (ICDCS 2019): a mechanism that selects an
//! **active quorum** of well-functioning processes to run a BFT system, so
//! that omission and timing failures of processes *outside* the quorum
//! never need to be masked.
//!
//! The crate provides the paper's two algorithms as sans-io state machines
//! plus the module composition of Figure 1:
//!
//! * [`QuorumSelection`] — Algorithm 1. Suspicions from the local failure
//!   detector are stamped into an eventually-consistent
//!   [`SuspectMatrix`] and propagated in signed `UPDATE` messages; a quorum
//!   is the lexicographically first independent set of size `q = n − f` in
//!   the epoch's suspect graph. Faulty processes can force at most `O(f²)`
//!   quorum changes once the detector is accurate (Theorem 3) — and no
//!   deterministic algorithm can do better (Theorem 4).
//! * [`FollowerSelection`] — Algorithm 2, for leader-centric applications.
//!   Weakens *no suspicion* to *no leader suspicion* and needs only
//!   `3f + 1` quorum changes per epoch (Theorem 9), `6f + 2` in total
//!   after stabilization (Corollary 10).
//! * [`node::SelectorNode`] — the Figure 1 composition (failure detector +
//!   selection module + heartbeat application) ready to run under
//!   `qsel-simnet`.
//!
//! # Quickstart
//!
//! ```
//! use qsel::{QsOutput, QuorumSelection};
//! use qsel_types::crypto::Keychain;
//! use qsel_types::{ClusterConfig, ProcessId, ProcessSet};
//!
//! // A 5-process cluster tolerating 2 faults (q = 3).
//! let cfg = ClusterConfig::new(5, 2).unwrap();
//! let chain = Keychain::new(&cfg, 42);
//! let mut qs = QuorumSelection::new(
//!     cfg,
//!     ProcessId(1),
//!     chain.signer(ProcessId(1)),
//!     chain.verifier(),
//! );
//!
//! // The failure detector reports p2 as suspected:
//! let mut s = ProcessSet::new();
//! s.insert(ProcessId(2));
//! for out in qs.on_suspected(s) {
//!     if let QsOutput::Quorum(q) = out {
//!         assert!(!q.contains(ProcessId(2)));
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod follower_selection;
mod matrix;
pub mod messages;
pub mod node;
mod quorum_selection;
mod stats;

pub use follower_selection::{FollowerSelection, FsOutput};
pub use matrix::SuspectMatrix;
pub use quorum_selection::{QsOutput, QuorumSelection};
pub use stats::SelectionStats;
