//! Behaviour counters shared by the two selection algorithms.

use std::collections::BTreeMap;

use qsel_types::{Epoch, ProcessSet};

/// Counters describing a selection module's behaviour. The per-epoch quorum
/// counts are the quantity bounded by Theorem 3 (`f(f+1)` for Algorithm 1)
/// and Theorem 9 (`3f+1` for Algorithm 2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// `⟨QUORUM⟩` events issued.
    pub quorums_issued: u64,
    /// Epoch increments performed.
    pub epochs_entered: u64,
    /// Own-row UPDATE broadcasts.
    pub updates_sent: u64,
    /// Foreign rows forwarded after a state change.
    pub updates_forwarded: u64,
    /// UPDATE messages dropped for bad signatures or malformed rows.
    pub invalid_updates: u64,
    /// FOLLOWERS messages dropped for bad signatures (Algorithm 2 only).
    pub invalid_followers: u64,
    /// `⟨DETECTED⟩` events raised against misbehaving leaders
    /// (Algorithm 2 only).
    pub detections_raised: u64,
    /// Quorums issued per epoch.
    pub quorums_per_epoch: BTreeMap<u64, u64>,
    /// Distinct quorum member-sets issued, in first-issue order.
    pub issued_sets: Vec<ProcessSet>,
    /// Issues of a member-set already used earlier in the run — the
    /// signature of churn: a member was excluded on suspicion, recovered,
    /// and selection returned to a previously-used quorum. Stable-fault
    /// runs keep this at zero; crash-recovery chaos drives it up.
    pub quorums_revisited: u64,
}

impl SelectionStats {
    /// Records a quorum with member-set `members` issued while in `epoch`.
    pub fn record_quorum(&mut self, epoch: Epoch, members: ProcessSet) {
        self.quorums_issued += 1;
        *self.quorums_per_epoch.entry(epoch.get()).or_insert(0) += 1;
        if self.issued_sets.contains(&members) {
            self.quorums_revisited += 1;
        } else {
            self.issued_sets.push(members);
        }
    }

    /// The maximum number of quorums issued within any single epoch — the
    /// quantity the paper's Theorems 3 and 9 bound.
    pub fn max_quorums_in_one_epoch(&self) -> u64 {
        self.quorums_per_epoch.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct quorum member-sets issued so far.
    pub fn distinct_quorums(&self) -> usize {
        self.issued_sets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use qsel_types::ProcessId;

    fn set(ids: &[u32]) -> ProcessSet {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    #[test]
    fn per_epoch_accounting() {
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1), set(&[1, 2, 3]));
        s.record_quorum(Epoch(1), set(&[1, 2, 4]));
        s.record_quorum(Epoch(2), set(&[2, 3, 4]));
        assert_eq!(s.quorums_issued, 3);
        assert_eq!(s.quorums_per_epoch[&1], 2);
        assert_eq!(s.quorums_per_epoch[&2], 1);
        assert_eq!(s.max_quorums_in_one_epoch(), 2);
        assert_eq!(s.distinct_quorums(), 3);
        assert_eq!(s.quorums_revisited, 0);
    }

    #[test]
    fn churn_revisits_are_counted() {
        // Crash → quorum change → recovery → selection returns to the
        // original quorum: the member-set repeats and counts as a revisit.
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1), set(&[1, 2, 3]));
        s.record_quorum(Epoch(1), set(&[1, 2, 4]));
        s.record_quorum(Epoch(2), set(&[1, 2, 3]));
        assert_eq!(s.quorums_issued, 3);
        assert_eq!(s.distinct_quorums(), 2);
        assert_eq!(s.quorums_revisited, 1);
    }

    #[test]
    fn empty_stats() {
        let s = SelectionStats::default();
        assert_eq!(s.max_quorums_in_one_epoch(), 0);
    }
}
