//! Behaviour counters shared by the two selection algorithms.

use std::collections::BTreeMap;

use qsel_types::Epoch;

/// Counters describing a selection module's behaviour. The per-epoch quorum
/// counts are the quantity bounded by Theorem 3 (`f(f+1)` for Algorithm 1)
/// and Theorem 9 (`3f+1` for Algorithm 2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// `⟨QUORUM⟩` events issued.
    pub quorums_issued: u64,
    /// Epoch increments performed.
    pub epochs_entered: u64,
    /// Own-row UPDATE broadcasts.
    pub updates_sent: u64,
    /// Foreign rows forwarded after a state change.
    pub updates_forwarded: u64,
    /// UPDATE messages dropped for bad signatures or malformed rows.
    pub invalid_updates: u64,
    /// FOLLOWERS messages dropped for bad signatures (Algorithm 2 only).
    pub invalid_followers: u64,
    /// `⟨DETECTED⟩` events raised against misbehaving leaders
    /// (Algorithm 2 only).
    pub detections_raised: u64,
    /// Quorums issued per epoch.
    pub quorums_per_epoch: BTreeMap<u64, u64>,
}

impl SelectionStats {
    /// Records a quorum issued while in `epoch`.
    pub fn record_quorum(&mut self, epoch: Epoch) {
        self.quorums_issued += 1;
        *self.quorums_per_epoch.entry(epoch.get()).or_insert(0) += 1;
    }

    /// The maximum number of quorums issued within any single epoch — the
    /// quantity the paper's Theorems 3 and 9 bound.
    pub fn max_quorums_in_one_epoch(&self) -> u64 {
        self.quorums_per_epoch.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_epoch_accounting() {
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1));
        s.record_quorum(Epoch(1));
        s.record_quorum(Epoch(2));
        assert_eq!(s.quorums_issued, 3);
        assert_eq!(s.quorums_per_epoch[&1], 2);
        assert_eq!(s.quorums_per_epoch[&2], 1);
        assert_eq!(s.max_quorums_in_one_epoch(), 2);
    }

    #[test]
    fn empty_stats() {
        let s = SelectionStats::default();
        assert_eq!(s.max_quorums_in_one_epoch(), 0);
    }
}
