//! Behaviour counters shared by the two selection algorithms.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use qsel_types::{Epoch, ProcessSet};

/// Counters describing a selection module's behaviour. The per-epoch quorum
/// counts are the quantity bounded by Theorem 3 (`f(f+1)` for Algorithm 1)
/// and Theorem 9 (`3f+1` for Algorithm 2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// `⟨QUORUM⟩` events issued.
    pub quorums_issued: u64,
    /// Epoch increments performed.
    pub epochs_entered: u64,
    /// Own-row UPDATE broadcasts.
    pub updates_sent: u64,
    /// Foreign rows forwarded after a state change.
    pub updates_forwarded: u64,
    /// UPDATE messages dropped for bad signatures or malformed rows.
    pub invalid_updates: u64,
    /// FOLLOWERS messages dropped for bad signatures (Algorithm 2 only).
    pub invalid_followers: u64,
    /// `⟨DETECTED⟩` events raised against misbehaving leaders
    /// (Algorithm 2 only).
    pub detections_raised: u64,
    /// Quorums issued per epoch.
    pub quorums_per_epoch: BTreeMap<u64, u64>,
    /// Distinct quorum member-sets issued, in first-issue order.
    pub issued_sets: Vec<ProcessSet>,
    /// Membership index over `issued_sets`, so `record_quorum` stays
    /// `O(log n)` over long chaos runs instead of rescanning the vector.
    issued_index: BTreeSet<ProcessSet>,
    /// Issues of a member-set already used earlier in the run — the
    /// signature of churn: a member was excluded on suspicion, recovered,
    /// and selection returned to a previously-used quorum. Stable-fault
    /// runs keep this at zero; crash-recovery chaos drives it up.
    pub quorums_revisited: u64,
}

impl SelectionStats {
    /// Records a quorum with member-set `members` issued while in `epoch`.
    pub fn record_quorum(&mut self, epoch: Epoch, members: ProcessSet) {
        self.quorums_issued += 1;
        *self.quorums_per_epoch.entry(epoch.get()).or_insert(0) += 1;
        if self.issued_index.insert(members) {
            self.issued_sets.push(members);
        } else {
            self.quorums_revisited += 1;
        }
    }

    /// The maximum number of quorums issued within any single epoch — the
    /// quantity the paper's Theorems 3 and 9 bound.
    pub fn max_quorums_in_one_epoch(&self) -> u64 {
        self.quorums_per_epoch.values().copied().max().unwrap_or(0)
    }

    /// Number of distinct quorum member-sets issued so far.
    pub fn distinct_quorums(&self) -> usize {
        self.issued_sets.len()
    }

    /// Folds another module's counters into this one — for aggregating a
    /// whole cluster (or a whole seed sweep) into one report. Counters and
    /// per-epoch counts add; `other`'s member-sets unseen here are appended
    /// in their first-issue order. Revisits within each module keep their
    /// original meaning and simply add; a set known to both modules is not
    /// counted as an extra revisit by merging.
    pub fn merge(&mut self, other: &SelectionStats) {
        self.quorums_issued += other.quorums_issued;
        self.epochs_entered += other.epochs_entered;
        self.updates_sent += other.updates_sent;
        self.updates_forwarded += other.updates_forwarded;
        self.invalid_updates += other.invalid_updates;
        self.invalid_followers += other.invalid_followers;
        self.detections_raised += other.detections_raised;
        self.quorums_revisited += other.quorums_revisited;
        for (epoch, n) in &other.quorums_per_epoch {
            *self.quorums_per_epoch.entry(*epoch).or_insert(0) += n;
        }
        for set in &other.issued_sets {
            if self.issued_index.insert(*set) {
                self.issued_sets.push(*set);
            }
        }
    }
}

impl fmt::Display for SelectionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "selection stats:")?;
        writeln!(f, "  quorums issued     {:>10}", self.quorums_issued)?;
        writeln!(f, "  epochs entered     {:>10}", self.epochs_entered)?;
        writeln!(f, "  updates sent       {:>10}", self.updates_sent)?;
        writeln!(f, "  updates forwarded  {:>10}", self.updates_forwarded)?;
        writeln!(f, "  invalid updates    {:>10}", self.invalid_updates)?;
        writeln!(f, "  invalid followers  {:>10}", self.invalid_followers)?;
        writeln!(f, "  detections raised  {:>10}", self.detections_raised)?;
        writeln!(f, "  distinct quorums   {:>10}", self.distinct_quorums())?;
        writeln!(f, "  quorums revisited  {:>10}", self.quorums_revisited)?;
        write!(
            f,
            "  max quorums/epoch  {:>10}",
            self.max_quorums_in_one_epoch()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use qsel_types::ProcessId;

    fn set(ids: &[u32]) -> ProcessSet {
        ids.iter().map(|i| ProcessId(*i)).collect()
    }

    #[test]
    fn per_epoch_accounting() {
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1), set(&[1, 2, 3]));
        s.record_quorum(Epoch(1), set(&[1, 2, 4]));
        s.record_quorum(Epoch(2), set(&[2, 3, 4]));
        assert_eq!(s.quorums_issued, 3);
        assert_eq!(s.quorums_per_epoch[&1], 2);
        assert_eq!(s.quorums_per_epoch[&2], 1);
        assert_eq!(s.max_quorums_in_one_epoch(), 2);
        assert_eq!(s.distinct_quorums(), 3);
        assert_eq!(s.quorums_revisited, 0);
    }

    #[test]
    fn churn_revisits_are_counted() {
        // Crash → quorum change → recovery → selection returns to the
        // original quorum: the member-set repeats and counts as a revisit.
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1), set(&[1, 2, 3]));
        s.record_quorum(Epoch(1), set(&[1, 2, 4]));
        s.record_quorum(Epoch(2), set(&[1, 2, 3]));
        assert_eq!(s.quorums_issued, 3);
        assert_eq!(s.distinct_quorums(), 2);
        assert_eq!(s.quorums_revisited, 1);
    }

    #[test]
    fn empty_stats() {
        let s = SelectionStats::default();
        assert_eq!(s.max_quorums_in_one_epoch(), 0);
    }

    #[test]
    fn first_issue_order_is_preserved() {
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1), set(&[2, 3, 4]));
        s.record_quorum(Epoch(1), set(&[1, 2, 3]));
        s.record_quorum(Epoch(1), set(&[2, 3, 4]));
        assert_eq!(s.issued_sets, vec![set(&[2, 3, 4]), set(&[1, 2, 3])]);
        assert_eq!(s.quorums_revisited, 1);
    }

    #[test]
    fn merge_sums_and_dedups() {
        let mut a = SelectionStats::default();
        a.record_quorum(Epoch(1), set(&[1, 2, 3]));
        a.record_quorum(Epoch(2), set(&[1, 2, 4]));
        let mut b = SelectionStats::default();
        b.record_quorum(Epoch(2), set(&[1, 2, 3]));
        b.record_quorum(Epoch(2), set(&[2, 3, 4]));
        b.record_quorum(Epoch(3), set(&[2, 3, 4]));
        b.updates_sent = 5;

        a.merge(&b);
        assert_eq!(a.quorums_issued, 5);
        assert_eq!(a.updates_sent, 5);
        assert_eq!(a.quorums_per_epoch[&2], 3);
        assert_eq!(a.quorums_per_epoch[&3], 1);
        // [1,2,3] is known to both but merging adds no extra revisit.
        assert_eq!(a.quorums_revisited, 1);
        assert_eq!(
            a.issued_sets,
            vec![set(&[1, 2, 3]), set(&[1, 2, 4]), set(&[2, 3, 4])]
        );
        // Post-merge recording still dedups against the merged index.
        a.record_quorum(Epoch(4), set(&[2, 3, 4]));
        assert_eq!(a.quorums_revisited, 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1), set(&[1, 2, 3]));
        s.record_quorum(Epoch(2), set(&[1, 2, 3]));
        s.updates_sent = 2;
        s.detections_raised = 1;
        let original = s.clone();
        // Folding an empty module changes nothing …
        s.merge(&SelectionStats::default());
        assert_eq!(s, original);
        // … and folding into an empty accumulator reproduces the input,
        // including the revisit count and first-issue order.
        let mut acc = SelectionStats::default();
        acc.merge(&original);
        assert_eq!(acc.quorums_issued, original.quorums_issued);
        assert_eq!(acc.quorums_per_epoch, original.quorums_per_epoch);
        assert_eq!(acc.issued_sets, original.issued_sets);
        assert_eq!(acc.quorums_revisited, original.quorums_revisited);
        assert_eq!(acc.updates_sent, 2);
        assert_eq!(acc.detections_raised, 1);
    }

    #[test]
    fn merge_preserves_each_side_revisit_accounting() {
        // Two modules that each revisited once: the merged revisit count
        // is exactly the sum — the overlap in member-sets between the two
        // modules must not manufacture additional revisits.
        let mut a = SelectionStats::default();
        a.record_quorum(Epoch(1), set(&[1, 2, 3]));
        a.record_quorum(Epoch(2), set(&[1, 2, 3]));
        let mut b = SelectionStats::default();
        b.record_quorum(Epoch(1), set(&[1, 2, 3]));
        b.record_quorum(Epoch(2), set(&[1, 2, 3]));
        assert_eq!(a.quorums_revisited, 1);
        assert_eq!(b.quorums_revisited, 1);
        a.merge(&b);
        assert_eq!(a.quorums_revisited, 2);
        assert_eq!(a.distinct_quorums(), 1);
        assert_eq!(a.quorums_issued, 4);
    }

    #[test]
    fn display_is_a_full_report() {
        let mut s = SelectionStats::default();
        s.record_quorum(Epoch(1), set(&[1, 2, 3]));
        let text = format!("{s}");
        assert!(text.contains("quorums issued"));
        assert!(text.contains("max quorums/epoch"));
    }
}
