//! Algorithm 2: Follower Selection (Section VIII of the paper).
//!
//! Follower Selection is the leader-centric variant of Quorum Selection for
//! applications where followers never talk to each other directly. It
//! weakens **no suspicion** to **no leader suspicion** (suspicions between
//! followers are tolerated) and in exchange needs only `O(f)` quorum
//! changes per epoch (Theorem 9: at most `3f + 1`) and `6f + 2` in total
//! after stabilization (Corollary 10), escaping the `Ω(f²)` lower bound of
//! Theorem 4.
//!
//! Requires `|Π| > 3f` and FIFO links between correct processes.
//!
//! Suspicions are propagated exactly as in Algorithm 1 (the `suspected`
//! matrix with max-merge). The differences:
//!
//! * On an epoch change the *default* leader `p_1` and quorum
//!   `{p_1, …, p_q}` are installed immediately (lines 12–14).
//! * The leader is the designated leader of a **maximal line subgraph**
//!   of the suspect graph (Definition 1).
//! * The leader picks `q − 1` **possible followers** (Definition 2) and
//!   broadcasts a signed `FOLLOWERS` message; receivers validate it
//!   (Definition 3) and detect malformed messages or equivocation.

use qsel_graph::{LinearForest, SuspectGraph};
use qsel_obs::{TraceEvent, TraceSink};
use qsel_types::crypto::{Signer, Verifier};
use qsel_types::{thresholds, ClusterConfig, Epoch, LeaderQuorum, ProcessId, ProcessSet};

use crate::matrix::SuspectMatrix;
use crate::messages::{FollowersPayload, SignedFollowers, SignedUpdate, UpdateRow};
use crate::stats::SelectionStats;

/// Output events of [`FollowerSelection`].
#[derive(Clone, Debug)]
pub enum FsOutput {
    /// Broadcast this signed UPDATE to all other processes (own rows and
    /// forwarded foreign rows).
    BroadcastUpdate(SignedUpdate),
    /// Broadcast this signed FOLLOWERS message to all other processes
    /// (fresh from the leader, or forwarded once on acceptance).
    BroadcastFollowers(SignedFollowers),
    /// `⟨QUORUM, l, Q⟩` — a new leader quorum is issued.
    Quorum(LeaderQuorum),
    /// `⟨CANCEL⟩` — tell the failure detector to cancel expectations
    /// (issued on epoch or leader change, lines 11 and 21).
    Cancel,
    /// `⟨EXPECT, P_{Fw,epoch}, leader⟩` — tell the failure detector to
    /// expect a signed FOLLOWERS message for `epoch` from `leader`
    /// (line 23).
    Expect {
        /// The leader the message is expected from.
        leader: ProcessId,
        /// The epoch the message must carry.
        epoch: Epoch,
    },
    /// `⟨DETECTED, p⟩` — proof of misbehaviour (malformed FOLLOWERS or
    /// equivocation, lines 30 and 32); forward to the failure detector.
    Detected(ProcessId),
}

/// The follower-selection module of one process (Algorithm 2).
///
/// # Example
///
/// ```
/// use qsel::{FollowerSelection, FsOutput};
/// use qsel_types::crypto::Keychain;
/// use qsel_types::{ClusterConfig, ProcessId, ProcessSet};
///
/// let cfg = ClusterConfig::new(4, 1).unwrap(); // n = 4 > 3f
/// let chain = Keychain::new(&cfg, 1);
/// let mut fs = FollowerSelection::new(
///     cfg,
///     ProcessId(2),
///     chain.signer(ProcessId(2)),
///     chain.verifier(),
/// );
/// // p2's failure detector suspects the leader p1:
/// let mut s = ProcessSet::new();
/// s.insert(ProcessId(1));
/// let out = fs.on_suspected(s);
/// // The maximal line subgraph covers p1 and p2 (the suspicion edge), so
/// // the new leader is p3; p2 now expects a FOLLOWERS message from it.
/// assert_eq!(fs.leader(), ProcessId(3));
/// assert!(out.iter().any(|o| matches!(
///     o,
///     FsOutput::Expect { leader, .. } if *leader == ProcessId(3)
/// )));
/// ```
#[derive(Debug)]
pub struct FollowerSelection {
    cfg: ClusterConfig,
    me: ProcessId,
    signer: Signer,
    verifier: Verifier,
    epoch: Epoch,
    suspecting: ProcessSet,
    matrix: SuspectMatrix,
    leader: ProcessId,
    stable: bool,
    q_last: ProcessSet,
    stats: SelectionStats,
    trace: TraceSink,
}

impl FollowerSelection {
    /// Creates the module with the initial state of Algorithm 2:
    /// `leader = p_1`, `stable = true`, default quorum.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ f` and `n > 3f` (the Section VIII assumption) and
    /// the signer belongs to `me`.
    pub fn new(cfg: ClusterConfig, me: ProcessId, signer: Signer, verifier: Verifier) -> Self {
        assert!(
            thresholds::tolerates_faults(cfg.f()),
            "follower selection requires f >= 1"
        );
        assert!(
            cfg.supports_follower_selection(),
            "follower selection requires n > 3f (got n = {}, f = {})",
            cfg.n(),
            cfg.f()
        );
        assert_eq!(signer.id(), me, "signer identity mismatch");
        FollowerSelection {
            me,
            signer,
            verifier,
            epoch: Epoch::initial(),
            suspecting: ProcessSet::new(),
            matrix: SuspectMatrix::new(cfg.n()),
            leader: ProcessId(1),
            stable: true,
            q_last: cfg.default_quorum_members().into_iter().collect(),
            stats: SelectionStats::default(),
            trace: TraceSink::disabled(),
            cfg,
        }
    }

    /// Installs a trace sink (typically a clone of the simulation's, so
    /// events carry the ambient simulated time).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// `⟨SUSPECTED, S⟩` from the failure detector.
    pub fn on_suspected(&mut self, s: ProcessSet) -> Vec<FsOutput> {
        let mut out = Vec::new();
        self.update_suspicions(s, &mut out);
        self.update_quorum(&mut out);
        out
    }

    /// `⟨UPDATE, susted⟩_σl` received from the network (propagation shared
    /// with Algorithm 1).
    pub fn on_update(&mut self, update: SignedUpdate) -> Vec<FsOutput> {
        let mut out = Vec::new();
        if self.verifier.verify(&update).is_err() || !update.payload.is_valid_for(self.cfg.n()) {
            self.stats.invalid_updates += 1;
            return out;
        }
        let changed = self.matrix.merge_row(update.signer, &update.payload.row);
        if changed {
            self.stats.updates_forwarded += 1;
            // Forward *before* any FOLLOWERS broadcast so FIFO receivers
            // see the graph change first (needed for Lemma 7 / Def. 3 b).
            out.push(FsOutput::BroadcastUpdate(update));
            self.update_quorum(&mut out);
        }
        out
    }

    /// `⟨FOLLOWERS, Fw, Ls, e⟩_σj` received from the network (Algorithm 2
    /// lines 27–37).
    pub fn on_followers(&mut self, msg: SignedFollowers) -> Vec<FsOutput> {
        let mut out = Vec::new();
        if self.verifier.verify(&msg).is_err() {
            self.stats.invalid_followers += 1;
            return out;
        }
        let sender = msg.signer;
        if sender != self.leader || msg.payload.epoch != self.epoch {
            return out; // stale or not from the current leader (line 28)
        }
        if !self.is_well_formed(&msg.payload, sender) {
            self.stats.detections_raised += 1;
            self.trace.emit(|| TraceEvent::DetectionRaised {
                p: self.me.0,
                against: sender.0,
            });
            out.push(FsOutput::Detected(sender));
            return out;
        }
        let quorum: ProcessSet = msg
            .payload
            .followers
            .iter()
            .copied()
            .chain(std::iter::once(self.leader))
            .collect();
        if self.stable {
            if quorum != self.q_last {
                // Two different FOLLOWERS for the same leader and epoch:
                // equivocation (line 32).
                self.stats.detections_raised += 1;
                self.trace.emit(|| TraceEvent::DetectionRaised {
                    p: self.me.0,
                    against: sender.0,
                });
                out.push(FsOutput::Detected(sender));
            }
            return out;
        }
        // First acceptable FOLLOWERS in this (leader, epoch): adopt it
        // (lines 33–37).
        self.stable = true;
        self.q_last = quorum;
        out.push(FsOutput::BroadcastFollowers(msg));
        self.issue_quorum(&mut out);
        out
    }

    fn update_suspicions(&mut self, s: ProcessSet, out: &mut Vec<FsOutput>) {
        self.suspecting = s;
        for j in self.suspecting.iter() {
            if j != self.me {
                self.matrix.stamp(self.me, j, self.epoch);
            }
        }
        self.stats.updates_sent += 1;
        out.push(FsOutput::BroadcastUpdate(self.signer.sign(UpdateRow {
            row: self.matrix.row(self.me).to_vec(),
        })));
    }

    /// `updateQuorum()` (Algorithm 2 lines 7–26), looping where the paper
    /// re-enters through the self-addressed UPDATE.
    fn update_quorum(&mut self, out: &mut Vec<FsOutput>) {
        loop {
            let g = self.matrix.build_graph(self.epoch);
            if !g.has_independent_set(self.cfg.quorum_size()) {
                // Lines 9–16: next epoch, default leader and quorum.
                self.epoch = self.epoch.next();
                self.stats.epochs_entered += 1;
                self.trace.emit(|| TraceEvent::EpochEntered {
                    p: self.me.0,
                    epoch: self.epoch.get(),
                    algo: "fs".into(),
                });
                out.push(FsOutput::Cancel);
                self.leader = ProcessId(1);
                self.stable = true;
                self.q_last = self.cfg.default_quorum_members().into_iter().collect();
                self.issue_quorum(out);
                let suspecting = self.suspecting;
                self.update_suspicions(suspecting, out);
                continue;
            }
            let m = g.maximal_line_subgraph();
            let Some(new_leader) = m.leader else {
                // Cannot happen while an independent set of size q exists
                // (Lemma 8 b); treat defensively as an inconsistent epoch.
                debug_assert!(false, "line subgraph covered all nodes despite IS");
                self.epoch = self.epoch.next();
                self.stats.epochs_entered += 1;
                self.trace.emit(|| TraceEvent::EpochEntered {
                    p: self.me.0,
                    epoch: self.epoch.get(),
                    algo: "fs".into(),
                });
                continue;
            };
            if self.leader != new_leader {
                self.stable = false;
                self.leader = new_leader;
                out.push(FsOutput::Cancel);
                if new_leader != self.me {
                    out.push(FsOutput::Expect {
                        leader: new_leader,
                        epoch: self.epoch,
                    });
                } else {
                    let fw = select_followers(&m.forest, new_leader, self.cfg.quorum_size());
                    let payload = FollowersPayload {
                        followers: fw,
                        line_edges: m.forest.edges(),
                        epoch: self.epoch,
                    };
                    let signed = self.signer.sign(payload);
                    out.push(FsOutput::BroadcastFollowers(signed.clone()));
                    // The paper broadcasts "including self": the leader
                    // accepts its own message immediately.
                    self.stable = true;
                    self.q_last = signed
                        .payload
                        .followers
                        .iter()
                        .copied()
                        .chain(std::iter::once(self.me))
                        .collect();
                    self.issue_quorum(out);
                }
            }
            return;
        }
    }

    /// Definition 3 well-formedness, checked against the local suspect
    /// graph `G_i`.
    fn is_well_formed(&self, p: &FollowersPayload, sender: ProcessId) -> bool {
        let q = self.cfg.quorum_size();
        // a) leader not among followers, exactly q − 1 distinct followers.
        let fw: ProcessSet = p.followers.iter().copied().collect();
        if fw.contains(sender)
            || fw.len() != (q - 1) as usize
            || p.followers.len() != fw.len()
            || !p.followers.iter().all(|f| self.cfg.contains(*f))
        {
            return false;
        }
        // b) L' is a line subgraph and L' ⊆ G_i.
        let Ok(forest) = LinearForest::from_edge_list(self.cfg.n(), &p.line_edges) else {
            return false;
        };
        let g = self.matrix.build_graph(self.epoch);
        if !forest.is_subgraph_of(&g) {
            return false;
        }
        // c) the sender is the designated leader of L'.
        if forest.leader() != Some(sender) {
            return false;
        }
        // d) every follower is a possible follower for L'.
        let possible = forest.possible_followers();
        p.followers.iter().all(|f| possible.contains(*f))
    }

    fn issue_quorum(&mut self, out: &mut Vec<FsOutput>) {
        let quorum = LeaderQuorum::of(&self.cfg, self.leader, self.q_last.iter())
            // lint: allow(S2, q_last is maintained at size n-t by construction; a malformed quorum here is unrecoverable state corruption)
            .expect("internal quorum invariants violated");
        self.stats.record_quorum(self.epoch, *quorum.quorum().members());
        self.trace.emit(|| TraceEvent::QuorumIssued {
            p: self.me.0,
            epoch: self.epoch.get(),
            algo: "fs".into(),
            members: quorum.quorum().members().iter().map(|p| p.0).collect(),
        });
        out.push(FsOutput::Quorum(quorum));
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The current leader.
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// Whether the module has accepted a FOLLOWERS message for the current
    /// leader (Algorithm 2's `stable` flag).
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    /// The last installed quorum members (leader included).
    pub fn current_members(&self) -> ProcessSet {
        self.q_last
    }

    /// A copy of the suspect graph at the current epoch.
    pub fn suspect_graph(&self) -> SuspectGraph {
        self.matrix.build_graph(self.epoch)
    }

    /// Read access to the suspicion matrix.
    pub fn matrix(&self) -> &SuspectMatrix {
        &self.matrix
    }

    /// The owning process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &SelectionStats {
        &self.stats
    }
}

/// `selectFollowers(L)` (Algorithm 2 line 25): the `q − 1`
/// lexicographically smallest possible followers, excluding the leader.
///
/// Whenever the suspect graph admits an independent set of size `q` and
/// `n > 3f`, at least `q − 1` possible followers exist: the only impossible
/// followers are middle nodes of 3-node paths, there are at most `f` of
/// those (each 3-path forces a vertex-cover member), and
/// `n − 1 − f = q − 1`.
fn select_followers(forest: &LinearForest, leader: ProcessId, q: u32) -> Vec<ProcessId> {
    let possible = forest.possible_followers();
    let fw: Vec<ProcessId> = possible
        .iter()
        .filter(|p| *p != leader)
        .take((q - 1) as usize)
        .collect();
    assert_eq!(
        fw.len(),
        (q - 1) as usize,
        "fewer than q-1 possible followers; violates the n > 3f invariant"
    );
    fw
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsel_types::crypto::Keychain;

    fn setup(n: u32, f: u32) -> (ClusterConfig, Keychain, Vec<FollowerSelection>) {
        let cfg = ClusterConfig::new(n, f).unwrap();
        let chain = Keychain::new(&cfg, 11);
        let modules = cfg
            .processes()
            .map(|p| FollowerSelection::new(cfg, p, chain.signer(p), chain.verifier()))
            .collect();
        (cfg, chain, modules)
    }

    fn set(ids: &[u32]) -> ProcessSet {
        ids.iter().map(|&i| ProcessId(i)).collect()
    }

    fn quorums(out: &[FsOutput]) -> Vec<LeaderQuorum> {
        out.iter()
            .filter_map(|o| match o {
                FsOutput::Quorum(q) => Some(*q),
                _ => None,
            })
            .collect()
    }

    /// Instant reliable propagation of UPDATE and FOLLOWERS broadcasts.
    fn propagate(modules: &mut [FollowerSelection], initial: Vec<FsOutput>) {
        enum Wire {
            U(SignedUpdate, ProcessId),
            F(SignedFollowers, ProcessId),
        }
        let mut queue: Vec<Wire> = Vec::new();
        let seed = |out: &[FsOutput], from: ProcessId, queue: &mut Vec<Wire>| {
            for o in out {
                match o {
                    FsOutput::BroadcastUpdate(u) => queue.push(Wire::U(u.clone(), from)),
                    FsOutput::BroadcastFollowers(f) => queue.push(Wire::F(f.clone(), from)),
                    _ => {}
                }
            }
        };
        // We don't know which module produced `initial`; broadcasts are
        // self-describing (signed), so origin only matters for skipping
        // self-delivery, which is safe either way.
        seed(&initial, ProcessId(u32::MAX), &mut queue);
        while let Some(w) = queue.pop() {
            for m in modules.iter_mut() {
                let out = match &w {
                    Wire::U(u, from) if *from != m.me() => m.on_update(u.clone()),
                    Wire::F(f, from) if *from != m.me() => m.on_followers(f.clone()),
                    _ => Vec::new(),
                };
                let me = m.me();
                seed(&out, me, &mut queue);
            }
        }
    }

    #[test]
    fn initial_state() {
        let (_, _, modules) = setup(4, 1);
        let m = &modules[0];
        assert_eq!(m.leader(), ProcessId(1));
        assert!(m.is_stable());
        assert_eq!(m.current_members(), set(&[1, 2, 3]));
    }

    #[test]
    fn leader_suspicion_moves_leader() {
        // p2 suspects p1. Maximal line subgraph covers p1 (edge 1-2), so
        // the new leader is p2... wait: covering p1 uses edge (1,2), which
        // also covers p2; leader = p3. Check the actual semantics:
        let (_, _, mut modules) = setup(4, 1);
        let out = modules[1].on_suspected(set(&[1]));
        // The maximal line subgraph of {1-2} covers p1 and p2 → leader p3.
        assert_eq!(modules[1].leader(), ProcessId(3));
        // p2 is not the leader, so it must expect FOLLOWERS from p3.
        assert!(out.iter().any(|o| matches!(
            o,
            FsOutput::Expect { leader, .. } if *leader == ProcessId(3)
        )));
        assert!(out.iter().any(|o| matches!(o, FsOutput::Cancel)));
    }

    #[test]
    fn new_leader_broadcasts_followers_and_installs() {
        // At p3's module, the same suspicion makes p3 itself leader: it
        // must broadcast FOLLOWERS and immediately install the quorum.
        let (_, _, mut modules) = setup(4, 1);
        let out = modules[2].on_update(
            // p2's row claiming suspicion of p1 in epoch 1:
            Keychain::new(&ClusterConfig::new(4, 1).unwrap(), 11)
                .signer(ProcessId(2))
                .sign(UpdateRow {
                    row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)],
                }),
        );
        assert_eq!(modules[2].leader(), ProcessId(3));
        assert!(modules[2].is_stable());
        let qs = quorums(&out);
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].leader(), ProcessId(3));
        assert!(out
            .iter()
            .any(|o| matches!(o, FsOutput::BroadcastFollowers(_))));
    }

    #[test]
    fn agreement_after_propagation() {
        let (_, _, mut modules) = setup(7, 2);
        let out = modules[3].on_suspected(set(&[1, 2]));
        propagate(&mut modules, out);
        let leader = modules[0].leader();
        let members = modules[0].current_members();
        for m in &modules {
            assert_eq!(m.leader(), leader, "at {}", m.me());
            assert_eq!(m.current_members(), members, "at {}", m.me());
            assert!(m.is_stable(), "at {}", m.me());
        }
        // Suspicions 4-1 and 4-2: line subgraph can cover 1,2,4 (path
        // 1-4-2); wait p4 has degree 2 then; covers {1,2,4}; p3 uncovered →
        // leader p3.
        assert_eq!(leader, ProcessId(3));
        assert_eq!(members.len(), 5);
        assert!(members.contains(ProcessId(3)));
    }

    #[test]
    fn malformed_followers_detected_bad_count() {
        let (cfg, chain, mut modules) = setup(4, 1);
        // Make p3 the accepted leader at p1 first.
        let upd = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)],
        });
        modules[0].on_update(upd);
        assert_eq!(modules[0].leader(), ProcessId(3));
        // p3 sends FOLLOWERS with too few followers.
        let bad = chain.signer(ProcessId(3)).sign(FollowersPayload {
            followers: vec![ProcessId(4)],
            line_edges: vec![(ProcessId(1), ProcessId(2))],
            epoch: Epoch(1),
        });
        let out = modules[0].on_followers(bad);
        assert!(matches!(&out[..], [FsOutput::Detected(p)] if *p == ProcessId(3)));
        let _ = cfg;
    }

    #[test]
    fn malformed_followers_detected_line_not_subgraph() {
        let (_, chain, mut modules) = setup(4, 1);
        let upd = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)],
        });
        modules[0].on_update(upd);
        // L' contains an edge 2-4 that is not in G_1's suspect graph.
        let bad = chain.signer(ProcessId(3)).sign(FollowersPayload {
            followers: vec![ProcessId(2), ProcessId(4)],
            line_edges: vec![(ProcessId(1), ProcessId(2)), (ProcessId(2), ProcessId(4))],
            epoch: Epoch(1),
        });
        let out = modules[0].on_followers(bad);
        assert!(matches!(&out[..], [FsOutput::Detected(p)] if *p == ProcessId(3)));
    }

    #[test]
    fn malformed_followers_detected_wrong_leader() {
        let (_, chain, mut modules) = setup(4, 1);
        let upd = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)],
        });
        modules[0].on_update(upd);
        // L' = {} designates p1 as leader, but the sender is p3.
        let bad = chain.signer(ProcessId(3)).sign(FollowersPayload {
            followers: vec![ProcessId(2), ProcessId(4)],
            line_edges: vec![],
            epoch: Epoch(1),
        });
        let out = modules[0].on_followers(bad);
        assert!(matches!(&out[..], [FsOutput::Detected(p)] if *p == ProcessId(3)));
    }

    #[test]
    fn equivocating_followers_detected() {
        let (_, chain, mut modules) = setup(4, 1);
        let upd = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)],
        });
        modules[0].on_update(upd);
        let line = vec![(ProcessId(1), ProcessId(2))];
        let first = chain.signer(ProcessId(3)).sign(FollowersPayload {
            followers: vec![ProcessId(1), ProcessId(2)],
            line_edges: line.clone(),
            epoch: Epoch(1),
        });
        let out = modules[0].on_followers(first);
        assert_eq!(quorums(&out).len(), 1);
        // Same leader, same epoch, *different* followers: equivocation.
        let second = chain.signer(ProcessId(3)).sign(FollowersPayload {
            followers: vec![ProcessId(1), ProcessId(4)],
            line_edges: line,
            epoch: Epoch(1),
        });
        let out = modules[0].on_followers(second);
        assert!(matches!(&out[..], [FsOutput::Detected(p)] if *p == ProcessId(3)));
    }

    #[test]
    fn duplicate_followers_accepted_silently() {
        let (_, chain, mut modules) = setup(4, 1);
        let upd = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)],
        });
        modules[0].on_update(upd);
        let msg = chain.signer(ProcessId(3)).sign(FollowersPayload {
            followers: vec![ProcessId(1), ProcessId(2)],
            line_edges: vec![(ProcessId(1), ProcessId(2))],
            epoch: Epoch(1),
        });
        modules[0].on_followers(msg.clone());
        let out = modules[0].on_followers(msg);
        assert!(out.is_empty(), "identical re-delivery must be a no-op");
    }

    #[test]
    fn stale_epoch_followers_ignored() {
        let (_, chain, mut modules) = setup(4, 1);
        let msg = chain.signer(ProcessId(1)).sign(FollowersPayload {
            followers: vec![ProcessId(2), ProcessId(3)],
            line_edges: vec![],
            epoch: Epoch(9),
        });
        let out = modules[1].on_followers(msg);
        assert!(out.is_empty());
    }

    #[test]
    fn epoch_change_installs_default_quorum() {
        // Dense suspicions force an epoch change; the module must fall back
        // to leader p1 with the default quorum (lines 12–14).
        let (_, chain, mut modules) = setup(4, 1);
        let mut out_all = modules[0].on_suspected(set(&[2, 3]));
        for (s, row) in [
            (2u32, vec![Epoch(0), Epoch(0), Epoch(1), Epoch(0)]),
            (3u32, vec![Epoch(0), Epoch(0), Epoch(0), Epoch(1)]),
            (4u32, vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)]),
        ] {
            let u = chain.signer(ProcessId(s)).sign(UpdateRow { row });
            out_all.extend(modules[0].on_update(u));
        }
        assert!(modules[0].epoch() > Epoch(1));
        let issued = quorums(&out_all);
        assert!(issued
            .iter()
            .any(|q| q.leader() == ProcessId(1) && q.quorum().contains(ProcessId(1))));
    }

    #[test]
    fn select_followers_prefers_low_ids() {
        let mut l = LinearForest::new(6);
        l.add_edge(ProcessId(1), ProcessId(2)).unwrap();
        // Leader is p3; q−1 = 4 followers from {1,2,4,5,6}.
        let fw = select_followers(&l, ProcessId(3), 5);
        assert_eq!(
            fw,
            vec![ProcessId(1), ProcessId(2), ProcessId(4), ProcessId(5)]
        );
    }

    #[test]
    #[should_panic(expected = "requires n > 3f")]
    fn small_cluster_rejected() {
        let cfg = ClusterConfig::new(6, 2).unwrap();
        let chain = Keychain::new(&cfg, 1);
        let _ = FollowerSelection::new(cfg, ProcessId(1), chain.signer(ProcessId(1)), chain.verifier());
    }

    #[test]
    fn forged_followers_rejected() {
        let (cfg, _, mut modules) = setup(4, 1);
        let other = Keychain::new(&cfg, 999);
        let forged = other.signer(ProcessId(1)).sign(FollowersPayload {
            followers: vec![ProcessId(2), ProcessId(3)],
            line_edges: vec![],
            epoch: Epoch(1),
        });
        let out = modules[1].on_followers(forged);
        assert!(out.is_empty());
        assert_eq!(modules[1].stats().invalid_followers, 1);
    }
}
