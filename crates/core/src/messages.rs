//! Wire messages of the quorum-selection and follower-selection protocols.

use qsel_types::encode::{Decode, DecodeError, Encode, Reader};
use qsel_types::{Epoch, ProcessId, Signed};

/// Consumes a 4-byte domain-separation tag, rejecting a mismatch.
fn expect_tag(r: &mut Reader<'_>, tag: &[u8; 4]) -> Result<(), DecodeError> {
    let got = r.take(4)?;
    if got == tag {
        Ok(())
    } else {
        Err(DecodeError::BadTag(got[0]))
    }
}

/// Payload of an `⟨UPDATE, suspected[i]⟩_σ` message (Algorithm 1 line 15):
/// one row of the `suspected` matrix, i.e. the epochs in which the signer
/// last suspected each process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UpdateRow {
    /// `row[k]` = last epoch in which the signer suspected `p_{k+1}`.
    pub row: Vec<Epoch>,
}

impl UpdateRow {
    /// Validates shape against the cluster size.
    pub fn is_valid_for(&self, n: u32) -> bool {
        self.row.len() == n as usize
    }
}

impl Encode for UpdateRow {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"UPDT");
        self.row.encode(buf);
    }
}

impl Decode for UpdateRow {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"UPDT")?;
        Ok(UpdateRow {
            row: Vec::decode(r)?,
        })
    }
}

/// A signed UPDATE message. Forwarded verbatim by receivers whose state it
/// changed, so all correct processes converge on the same matrix.
pub type SignedUpdate = Signed<UpdateRow>;

/// Payload of a `⟨FOLLOWERS, Fw, L, e⟩_σ` message (Algorithm 2 line 26).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FollowersPayload {
    /// The selected followers `Fw` (must be `q − 1` distinct processes,
    /// excluding the leader — Definition 3 a).
    pub followers: Vec<ProcessId>,
    /// The line subgraph `L` the leader derived its choice from, as an
    /// edge list (Definition 3 b–d are checked against it).
    pub line_edges: Vec<(ProcessId, ProcessId)>,
    /// The epoch in which the leader computed the quorum.
    pub epoch: Epoch,
}

impl Encode for FollowersPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"FLWR");
        self.followers.encode(buf);
        self.line_edges.encode(buf);
        self.epoch.encode(buf);
    }
}

impl Decode for FollowersPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"FLWR")?;
        Ok(FollowersPayload {
            followers: Vec::decode(r)?,
            line_edges: Vec::decode(r)?,
            epoch: Epoch::decode(r)?,
        })
    }
}

/// A signed FOLLOWERS message.
pub type SignedFollowers = Signed<FollowersPayload>;

#[cfg(test)]
mod tests {
    use super::*;
    use qsel_types::crypto::Keychain;
    use qsel_types::ClusterConfig;

    #[test]
    fn update_row_validation() {
        let u = UpdateRow {
            row: vec![Epoch(0), Epoch(2), Epoch(1)],
        };
        assert!(u.is_valid_for(3));
        assert!(!u.is_valid_for(4));
    }

    #[test]
    fn signed_update_roundtrip() {
        let cfg = ClusterConfig::new(3, 1).unwrap();
        let chain = Keychain::new(&cfg, 5);
        let msg = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(1)],
        });
        assert!(chain.verifier().verify(&msg).is_ok());
        // Tampering with a cell breaks the signature.
        let mut bad = msg.clone();
        bad.payload.row[0] = Epoch(9);
        assert!(chain.verifier().verify(&bad).is_err());
    }

    #[test]
    fn followers_payload_distinct_encodings() {
        use qsel_types::encode::encode_to_vec;
        let a = FollowersPayload {
            followers: vec![ProcessId(2), ProcessId(3)],
            line_edges: vec![],
            epoch: Epoch(1),
        };
        let mut b = a.clone();
        b.epoch = Epoch(2);
        assert_ne!(encode_to_vec(&a), encode_to_vec(&b));
        let mut c = a.clone();
        c.followers = vec![ProcessId(3), ProcessId(2)];
        assert_ne!(encode_to_vec(&a), encode_to_vec(&c));
    }
}
