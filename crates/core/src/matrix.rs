//! The eventually-consistent `suspected` matrix of Algorithm 1.
//!
//! `suspected[l][k]` stores the last epoch in which process `l` suspected
//! process `k` (0 = never). Rows are updated locally by their owner and
//! propagated in signed `UPDATE` messages; receivers merge with
//! element-wise maximum (Algorithm 1 lines 16–24). Because max-merge is
//! commutative, associative and idempotent, the matrix is a join
//! semilattice: correct processes converge to the same state regardless of
//! delivery order, and equivocating updates only speed convergence up —
//! the paper's "eventually consistent shared data structure".

use std::fmt;

use qsel_graph::SuspectGraph;
use qsel_types::{Epoch, ProcessId};

/// The `n × n` matrix of last-suspicion epochs.
///
/// # Example
///
/// ```
/// use qsel::SuspectMatrix;
/// use qsel_types::{Epoch, ProcessId};
///
/// let mut m = SuspectMatrix::new(4);
/// m.stamp(ProcessId(1), ProcessId(3), Epoch(2)); // p1 suspects p3 in e2
/// assert_eq!(m.get(ProcessId(1), ProcessId(3)), Epoch(2));
/// let g = m.build_graph(Epoch(2));
/// assert!(g.has_edge(ProcessId(1), ProcessId(3)));
/// assert!(!m.build_graph(Epoch(3)).has_edge(ProcessId(1), ProcessId(3)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SuspectMatrix {
    n: u32,
    rows: Vec<Vec<Epoch>>,
}

impl SuspectMatrix {
    /// Creates the all-zero matrix ("initially all 0", Algorithm 1 line 6).
    pub fn new(n: u32) -> Self {
        SuspectMatrix {
            n,
            rows: vec![vec![Epoch::NEVER; n as usize]; n as usize],
        }
    }

    /// Number of processes.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Last epoch in which `l` suspected `k`.
    pub fn get(&self, l: ProcessId, k: ProcessId) -> Epoch {
        self.rows[l.index()][k.index()]
    }

    /// Records that `l` suspects `k` in epoch `e` (Algorithm 1 line 14;
    /// the paper's pseudocode writes `suspected[j][i] ← epoch` with `i` the
    /// acting process, but line 15 broadcasts `suspected[i]` and the UPDATE
    /// handler merges into row `l` of the *sender*, so rows must hold the
    /// suspicions *by* their owner — we follow that consistent reading).
    ///
    /// Stamps never decrease (max-merge semantics).
    pub fn stamp(&mut self, l: ProcessId, k: ProcessId, e: Epoch) -> bool {
        let cell = &mut self.rows[l.index()][k.index()];
        if e > *cell {
            *cell = e;
            true
        } else {
            false
        }
    }

    /// Row `l`: the suspicions issued by process `l`.
    pub fn row(&self, l: ProcessId) -> &[Epoch] {
        &self.rows[l.index()]
    }

    /// Merges `incoming` into row `l` with element-wise max (Algorithm 1
    /// lines 18–21). Returns `true` if any cell increased.
    ///
    /// # Panics
    ///
    /// Panics if `incoming.len() != n` — callers must length-check network
    /// input first (see `UpdateMsg::validate`).
    pub fn merge_row(&mut self, l: ProcessId, incoming: &[Epoch]) -> bool {
        assert_eq!(incoming.len(), self.n as usize, "row length mismatch");
        let row = &mut self.rows[l.index()];
        let mut changed = false;
        for (cell, &new) in row.iter_mut().zip(incoming) {
            if new > *cell {
                *cell = new;
                changed = true;
            }
        }
        changed
    }

    /// Builds the epoch-`e` suspect graph (Section VI-B): nodes `l, k` are
    /// connected iff `suspected[l][k] ≥ e` or `suspected[k][l] ≥ e`.
    /// Diagonal entries (self-suspicions, which only a faulty process would
    /// send) are ignored.
    pub fn build_graph(&self, e: Epoch) -> SuspectGraph {
        let mut g = SuspectGraph::new(self.n);
        for l in 1..=self.n {
            for k in l + 1..=self.n {
                let lk = self.rows[(l - 1) as usize][(k - 1) as usize];
                let kl = self.rows[(k - 1) as usize][(l - 1) as usize];
                if lk.visible_at(e) || kl.visible_at(e) {
                    g.add_edge(ProcessId(l), ProcessId(k));
                }
            }
        }
        g
    }

    /// The largest epoch stamped anywhere in the matrix.
    pub fn max_epoch(&self) -> Epoch {
        self.rows
            .iter()
            .flat_map(|r| r.iter().copied())
            .max()
            .unwrap_or(Epoch::NEVER)
    }

    /// Merges an entire matrix (row-wise max). Convenience for tests and
    /// state transfer.
    pub fn merge(&mut self, other: &SuspectMatrix) -> bool {
        assert_eq!(self.n, other.n, "matrix size mismatch");
        let mut changed = false;
        for l in 1..=self.n {
            changed |= self.merge_row(ProcessId(l), other.row(ProcessId(l)));
        }
        changed
    }
}

impl fmt::Debug for SuspectMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SuspectMatrix(n={})", self.n)?;
        for l in 1..=self.n {
            write!(f, "  p{l}:")?;
            for k in 1..=self.n {
                let e = self.rows[(l - 1) as usize][(k - 1) as usize];
                if e != Epoch::NEVER {
                    write!(f, " p{k}@e{}", e.get())?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stamp_is_monotone() {
        let mut m = SuspectMatrix::new(3);
        assert!(m.stamp(ProcessId(1), ProcessId(2), Epoch(3)));
        assert!(!m.stamp(ProcessId(1), ProcessId(2), Epoch(2)));
        assert!(!m.stamp(ProcessId(1), ProcessId(2), Epoch(3)));
        assert_eq!(m.get(ProcessId(1), ProcessId(2)), Epoch(3));
    }

    #[test]
    fn merge_row_takes_max() {
        let mut m = SuspectMatrix::new(3);
        m.stamp(ProcessId(2), ProcessId(1), Epoch(5));
        let changed = m.merge_row(ProcessId(2), &[Epoch(3), Epoch(0), Epoch(7)]);
        assert!(changed);
        assert_eq!(m.get(ProcessId(2), ProcessId(1)), Epoch(5)); // kept max
        assert_eq!(m.get(ProcessId(2), ProcessId(3)), Epoch(7));
        // Merging the same row again changes nothing (idempotent).
        assert!(!m.merge_row(ProcessId(2), &[Epoch(3), Epoch(0), Epoch(7)]));
    }

    #[test]
    fn graph_respects_epoch_visibility() {
        let mut m = SuspectMatrix::new(4);
        m.stamp(ProcessId(1), ProcessId(2), Epoch(1));
        m.stamp(ProcessId(3), ProcessId(4), Epoch(2));
        let g1 = m.build_graph(Epoch(1));
        assert!(g1.has_edge(ProcessId(1), ProcessId(2)));
        assert!(g1.has_edge(ProcessId(3), ProcessId(4)));
        let g2 = m.build_graph(Epoch(2));
        assert!(!g2.has_edge(ProcessId(1), ProcessId(2)));
        assert!(g2.has_edge(ProcessId(3), ProcessId(4)));
    }

    #[test]
    fn graph_is_symmetric_in_suspicion_direction() {
        let mut m = SuspectMatrix::new(3);
        m.stamp(ProcessId(2), ProcessId(1), Epoch(1));
        let g = m.build_graph(Epoch(1));
        assert!(g.has_edge(ProcessId(1), ProcessId(2)));
        assert!(g.has_edge(ProcessId(2), ProcessId(1)));
    }

    #[test]
    fn diagonal_ignored() {
        let mut m = SuspectMatrix::new(3);
        m.stamp(ProcessId(2), ProcessId(2), Epoch(9));
        let g = m.build_graph(Epoch(1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn max_epoch() {
        let mut m = SuspectMatrix::new(3);
        assert_eq!(m.max_epoch(), Epoch::NEVER);
        m.stamp(ProcessId(1), ProcessId(2), Epoch(4));
        m.stamp(ProcessId(3), ProcessId(1), Epoch(2));
        assert_eq!(m.max_epoch(), Epoch(4));
    }

    fn arb_matrix(n: u32) -> impl Strategy<Value = SuspectMatrix> {
        proptest::collection::vec(0u64..4, (n * n) as usize).prop_map(move |cells| {
            let mut m = SuspectMatrix::new(n);
            for l in 0..n {
                for k in 0..n {
                    let e = cells[(l * n + k) as usize];
                    if e > 0 {
                        m.stamp(ProcessId(l + 1), ProcessId(k + 1), Epoch(e));
                    }
                }
            }
            m
        })
    }

    proptest! {
        /// Join-semilattice laws: commutative, associative, idempotent.
        /// These are what make the matrix "eventually consistent" under
        /// arbitrary delivery orders and equivocation (paper §VI-A).
        #[test]
        fn prop_merge_semilattice(
            a in arb_matrix(4),
            b in arb_matrix(4),
            c in arb_matrix(4),
        ) {
            // Commutativity.
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            // Associativity.
            let mut ab_c = ab.clone();
            ab_c.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut a_bc = a.clone();
            a_bc.merge(&bc);
            prop_assert_eq!(&ab_c, &a_bc);
            // Idempotence.
            let mut aa = a.clone();
            prop_assert!(!aa.merge(&a));
            prop_assert_eq!(&aa, &a);
        }

        /// Merging is monotone w.r.t. graph edges: a merged matrix's epoch-e
        /// graph contains every edge of both inputs' epoch-e graphs.
        #[test]
        fn prop_merge_monotone_graphs(a in arb_matrix(4), b in arb_matrix(4)) {
            let mut m = a.clone();
            m.merge(&b);
            for e in 1..4u64 {
                let g = m.build_graph(Epoch(e));
                for part in [&a, &b] {
                    for (x, y) in part.build_graph(Epoch(e)).edges() {
                        prop_assert!(g.has_edge(x, y));
                    }
                }
            }
        }
    }
}
