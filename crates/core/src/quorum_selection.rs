//! Algorithm 1: handling suspicions and selecting quorums.
//!
//! This is the paper's quorum-selection module (Sections IV-A and VI) as a
//! sans-io state machine. Inputs are the `⟨SUSPECTED, S⟩` events of the
//! local failure detector and signed `UPDATE` messages from peers; outputs
//! are `UPDATE` broadcasts (own rows and forwarded foreign rows) and
//! `⟨QUORUM, Q⟩` events.
//!
//! The module guarantees (paper §IV-A, proven in §VII):
//!
//! * **Termination / O(f²) interruptions** — once the failure detector is
//!   accurate, correct processes issue at most `f(f+1)` quorums per epoch
//!   and enter at most one further epoch (Theorem 3).
//! * **No suspicion** — an issued quorum is an independent set of the
//!   current suspect graph, so no quorum member suspects another (in the
//!   epoch the quorum was computed for).
//! * **Agreement** — the `suspected` matrix is max-merge convergent and
//!   the quorum is the deterministic lexicographically-first independent
//!   set, so processes with equal matrices output equal quorums.

use qsel_graph::SuspectGraph;
use qsel_obs::{TraceEvent, TraceSink};
use qsel_types::crypto::{Signer, Verifier};
use qsel_types::{thresholds, ClusterConfig, Epoch, ProcessId, ProcessSet, Quorum};

use crate::matrix::SuspectMatrix;
use crate::messages::{SignedUpdate, UpdateRow};
use crate::stats::SelectionStats;

/// Output events of [`QuorumSelection`].
#[derive(Clone, Debug)]
pub enum QsOutput {
    /// Broadcast this signed UPDATE to all *other* processes (the paper
    /// broadcasts "to all including self"; local handling is internal).
    /// Covers both own rows (Algorithm 1 line 15) and forwarded foreign
    /// rows (line 23).
    Broadcast(SignedUpdate),
    /// `⟨QUORUM, Q⟩` — a new quorum is issued (line 33).
    Quorum(Quorum),
}

/// The quorum-selection module of one process (Algorithm 1).
///
/// # Example
///
/// ```
/// use qsel::{QsOutput, QuorumSelection};
/// use qsel_types::crypto::Keychain;
/// use qsel_types::{ClusterConfig, ProcessId, ProcessSet};
///
/// let cfg = ClusterConfig::new(4, 1).unwrap();
/// let chain = Keychain::new(&cfg, 1);
/// let mut qs = QuorumSelection::new(
///     cfg,
///     ProcessId(1),
///     chain.signer(ProcessId(1)),
///     chain.verifier(),
/// );
/// // p1's failure detector suspects p2:
/// let mut suspected = ProcessSet::new();
/// suspected.insert(ProcessId(2));
/// let out = qs.on_suspected(suspected);
/// // An UPDATE is broadcast and a new quorum excluding p2 is issued.
/// assert!(out.iter().any(|o| matches!(o, QsOutput::Broadcast(_))));
/// assert!(out.iter().any(|o| match o {
///     QsOutput::Quorum(q) => !q.contains(ProcessId(2)),
///     _ => false,
/// }));
/// ```
#[derive(Debug)]
pub struct QuorumSelection {
    cfg: ClusterConfig,
    me: ProcessId,
    signer: Signer,
    verifier: Verifier,
    epoch: Epoch,
    suspecting: ProcessSet,
    matrix: SuspectMatrix,
    q_last: Quorum,
    stats: SelectionStats,
    trace: TraceSink,
}

impl QuorumSelection {
    /// Creates the module with the paper's initial state: `epoch = 1`,
    /// empty suspicions, all-zero matrix, `Qlast = {p_1, …, p_q}`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.f() == 0` (with no faults to exclude, any suspicion
    /// would make a size-`n` independent set impossible forever) or if
    /// `signer` does not belong to `me`.
    pub fn new(cfg: ClusterConfig, me: ProcessId, signer: Signer, verifier: Verifier) -> Self {
        assert!(
            thresholds::tolerates_faults(cfg.f()),
            "quorum selection requires f >= 1"
        );
        assert_eq!(signer.id(), me, "signer identity mismatch");
        QuorumSelection {
            me,
            signer,
            verifier,
            epoch: Epoch::initial(),
            suspecting: ProcessSet::new(),
            matrix: SuspectMatrix::new(cfg.n()),
            q_last: Quorum::initial(&cfg),
            stats: SelectionStats::default(),
            trace: TraceSink::disabled(),
            cfg,
        }
    }

    /// Installs a trace sink (typically a clone of the simulation's, so
    /// events carry the ambient simulated time).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// `⟨SUSPECTED, S⟩` from the failure detector (Algorithm 1 line 9).
    pub fn on_suspected(&mut self, s: ProcessSet) -> Vec<QsOutput> {
        let mut out = Vec::new();
        self.update_suspicions(s, &mut out);
        // The paper broadcasts "to all including self"; handling our own
        // UPDATE is what triggers updateQuorum, so run it locally now.
        self.update_quorum(&mut out);
        out
    }

    /// `⟨UPDATE, susted⟩_σl` received from the network (Algorithm 1
    /// line 16). Invalid signatures and malformed rows are dropped — an
    /// unauthenticated message cannot be attributed to anyone.
    pub fn on_update(&mut self, update: SignedUpdate) -> Vec<QsOutput> {
        let mut out = Vec::new();
        if self.verifier.verify(&update).is_err() || !update.payload.is_valid_for(self.cfg.n()) {
            self.stats.invalid_updates += 1;
            return out;
        }
        let changed = self.matrix.merge_row(update.signer, &update.payload.row);
        if changed {
            self.stats.updates_forwarded += 1;
            out.push(QsOutput::Broadcast(update)); // forward (line 23)
            self.update_quorum(&mut out); // line 24
        }
        out
    }

    /// `updateSuspicions(S)` (Algorithm 1 lines 11–15): replace the current
    /// suspicion set, stamp it in the current epoch, broadcast our row.
    fn update_suspicions(&mut self, s: ProcessSet, out: &mut Vec<QsOutput>) {
        self.suspecting = s;
        for j in self.suspecting.iter() {
            if j != self.me {
                self.matrix.stamp(self.me, j, self.epoch);
            }
        }
        self.stats.updates_sent += 1;
        out.push(QsOutput::Broadcast(self.signer.sign(UpdateRow {
            row: self.matrix.row(self.me).to_vec(),
        })));
    }

    /// `updateQuorum()` (Algorithm 1 lines 25–34). The paper re-enters the
    /// function through the self-addressed UPDATE after an epoch change;
    /// this implementation loops directly.
    fn update_quorum(&mut self, out: &mut Vec<QsOutput>) {
        loop {
            let g = self.matrix.build_graph(self.epoch);
            match g.first_independent_set(self.cfg.quorum_size()) {
                None => {
                    // Suspicions in the current epoch are inconsistent with
                    // any quorum: enter the next epoch and re-issue our
                    // current suspicions there (lines 28–29).
                    self.epoch = self.epoch.next();
                    self.stats.epochs_entered += 1;
                    self.trace.emit(|| TraceEvent::EpochEntered {
                        p: self.me.0,
                        epoch: self.epoch.get(),
                        algo: "qs".into(),
                    });
                    let suspecting = self.suspecting;
                    self.update_suspicions(suspecting, out);
                }
                Some(set) => {
                    let q = Quorum::from_set_unchecked(set);
                    if q != self.q_last {
                        self.q_last = q;
                        self.stats.record_quorum(self.epoch, *q.members());
                        self.trace.emit(|| TraceEvent::QuorumIssued {
                            p: self.me.0,
                            epoch: self.epoch.get(),
                            algo: "qs".into(),
                            members: q.members().iter().map(|p| p.0).collect(),
                        });
                        out.push(QsOutput::Quorum(q));
                    }
                    return;
                }
            }
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The last issued (or initial) quorum.
    pub fn current_quorum(&self) -> Quorum {
        self.q_last
    }

    /// The processes this module's failure detector currently suspects.
    pub fn suspecting(&self) -> ProcessSet {
        self.suspecting
    }

    /// A copy of the suspect graph at the current epoch.
    pub fn suspect_graph(&self) -> SuspectGraph {
        self.matrix.build_graph(self.epoch)
    }

    /// Read access to the suspicion matrix.
    pub fn matrix(&self) -> &SuspectMatrix {
        &self.matrix
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The owning process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Behaviour counters (quorums per epoch, etc.).
    pub fn stats(&self) -> &SelectionStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsel_types::crypto::Keychain;

    fn setup(n: u32, f: u32) -> (ClusterConfig, Keychain, Vec<QuorumSelection>) {
        let cfg = ClusterConfig::new(n, f).unwrap();
        let chain = Keychain::new(&cfg, 7);
        let modules = cfg
            .processes()
            .map(|p| QuorumSelection::new(cfg, p, chain.signer(p), chain.verifier()))
            .collect();
        (cfg, chain, modules)
    }

    fn set(ids: &[u32]) -> ProcessSet {
        ids.iter().map(|&i| ProcessId(i)).collect()
    }

    fn quorums(out: &[QsOutput]) -> Vec<Quorum> {
        out.iter()
            .filter_map(|o| match o {
                QsOutput::Quorum(q) => Some(*q),
                _ => None,
            })
            .collect()
    }

    fn broadcasts(out: &[QsOutput]) -> Vec<SignedUpdate> {
        out.iter()
            .filter_map(|o| match o {
                QsOutput::Broadcast(u) => Some(u.clone()),
                _ => None,
            })
            .collect()
    }

    /// Delivers every broadcast to every other module until quiescence
    /// (instant, reliable propagation). Returns all quorums issued per
    /// module.
    fn propagate(modules: &mut [QuorumSelection], initial: Vec<QsOutput>) -> Vec<Vec<Quorum>> {
        let mut issued: Vec<Vec<Quorum>> = vec![Vec::new(); modules.len()];
        let mut queue: Vec<SignedUpdate> = broadcasts(&initial);
        while let Some(u) = queue.pop() {
            for m in modules.iter_mut() {
                let out = m.on_update(u.clone());
                issued[m.me().index()].extend(quorums(&out));
                queue.extend(broadcasts(&out));
            }
        }
        issued
    }

    #[test]
    fn initial_state_matches_paper() {
        let (_, _, modules) = setup(4, 1);
        let m = &modules[0];
        assert_eq!(m.epoch(), Epoch(1));
        assert_eq!(
            m.current_quorum().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn suspicion_excludes_process() {
        let (_, _, mut modules) = setup(4, 1);
        let out = modules[0].on_suspected(set(&[2]));
        let qs = quorums(&out);
        assert_eq!(qs.len(), 1);
        assert!(!qs[0].contains(ProcessId(2)));
        assert_eq!(
            qs[0].iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
    }

    #[test]
    fn quorum_not_reissued_when_unchanged() {
        let (_, _, mut modules) = setup(5, 2);
        let out1 = modules[0].on_suspected(set(&[4]));
        assert_eq!(quorums(&out1).len(), 0, "default quorum {{1,2,3}} unaffected");
        let out2 = modules[0].on_suspected(set(&[2]));
        assert_eq!(quorums(&out2).len(), 1);
    }

    #[test]
    fn updates_propagate_to_agreement() {
        let (_, _, mut modules) = setup(4, 1);
        let out = modules[1].on_suspected(set(&[3]));
        let _ = propagate(&mut modules, out);
        let reference = modules[0].current_quorum();
        for m in &modules {
            assert_eq!(m.current_quorum(), reference);
            assert_eq!(m.epoch(), modules[0].epoch());
            assert_eq!(m.matrix(), modules[0].matrix());
        }
        assert!(!reference.contains(ProcessId(3)));
    }

    #[test]
    fn epoch_advances_when_no_independent_set() {
        // n=4, f=1, q=3. Make the graph dense enough that no size-3
        // independent set exists: suspicions 1-2, 2-3, 3-4, 4-1, 1-3.
        let (_, chain, mut modules) = setup(4, 1);
        let mut all_out = modules[0].on_suspected(set(&[2, 3]));
        // Inject rows as if from p2, p3, p4 (their signers are available in
        // the test via the keychain — they play correct processes here).
        for (signer, row) in [
            (2u32, vec![Epoch(0), Epoch(0), Epoch(1), Epoch(0)]), // 2 suspects 3
            (3u32, vec![Epoch(0), Epoch(0), Epoch(0), Epoch(1)]), // 3 suspects 4
            (4u32, vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)]), // 4 suspects 1
        ] {
            let msg = chain
                .signer(ProcessId(signer))
                .sign(UpdateRow { row });
            all_out.extend(modules[0].on_update(msg));
        }
        // Graph in epoch 1: edges 1-2, 1-3, 2-3, 3-4, 1-4 → max IS = {2,4}:
        // size 2 < 3, so the module must advance to epoch 2, where only its
        // own re-stamped suspicions (1-2, 1-3) remain.
        assert_eq!(modules[0].epoch(), Epoch(2));
        let final_q = modules[0].current_quorum();
        assert_eq!(final_q.iter().map(|p| p.0).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn forged_update_rejected() {
        let (cfg, _, mut modules) = setup(4, 1);
        // A signature from a *different* keychain (wrong secret).
        let other = Keychain::new(&cfg, 999);
        let forged = other.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1); 4],
        });
        let out = modules[0].on_update(forged);
        assert!(out.is_empty());
        assert_eq!(modules[0].stats().invalid_updates, 1);
        assert_eq!(modules[0].current_quorum(), Quorum::initial(modules[0].config()));
    }

    #[test]
    fn malformed_row_rejected() {
        let (_, chain, mut modules) = setup(4, 1);
        let bad = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1); 3], // wrong length
        });
        let out = modules[0].on_update(bad);
        assert!(out.is_empty());
        assert_eq!(modules[0].stats().invalid_updates, 1);
    }

    #[test]
    fn duplicate_update_not_forwarded_twice() {
        let (_, chain, mut modules) = setup(4, 1);
        let msg = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0)],
        });
        let out1 = modules[0].on_update(msg.clone());
        assert_eq!(broadcasts(&out1).len(), 1, "first copy forwarded");
        let out2 = modules[0].on_update(msg);
        assert!(out2.is_empty(), "second copy changes nothing");
    }

    #[test]
    fn equivocating_updates_merge() {
        // p2 (faulty) sends different rows to nobody in particular; merging
        // both is harmless and deterministic (paper §VI-C: equivocation
        // "will only cause Quorum Selection to terminate faster").
        let (_, chain, mut modules) = setup(5, 2);
        let a = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(1), Epoch(0), Epoch(0), Epoch(0), Epoch(0)],
        });
        let b = chain.signer(ProcessId(2)).sign(UpdateRow {
            row: vec![Epoch(0), Epoch(0), Epoch(1), Epoch(0), Epoch(0)],
        });
        modules[0].on_update(a.clone());
        modules[0].on_update(b.clone());
        modules[1].on_update(b);
        modules[1].on_update(a);
        assert_eq!(modules[0].matrix(), modules[1].matrix());
        assert_eq!(modules[0].current_quorum(), modules[1].current_quorum());
    }

    #[test]
    fn crash_scenario_all_suspect_one() {
        // All correct processes suspect a crashed p5 concurrently; once
        // propagated, p5 is in no quorum (paper §VI-C).
        let (_, _, mut modules) = setup(5, 2);
        let mut pending = Vec::new();
        for i in 0..4 {
            pending.extend(modules[i].on_suspected(set(&[5])));
        }
        let _ = propagate(&mut modules, pending);
        for m in &modules[..4] {
            assert!(!m.current_quorum().contains(ProcessId(5)));
        }
    }

    #[test]
    fn lemma2_new_quorum_only_after_edge_within_quorum() {
        // A suspicion between processes outside the current quorum (or with
        // only one endpoint inside) that doesn't change the lex-first IS
        // issues nothing.
        let (_, chain, mut modules) = setup(5, 2);
        // Current quorum {1,2,3}. p4 suspects p5: edge outside the quorum.
        let msg = chain.signer(ProcessId(4)).sign(UpdateRow {
            row: vec![Epoch(0), Epoch(0), Epoch(0), Epoch(0), Epoch(1)],
        });
        let out = modules[0].on_update(msg);
        assert_eq!(quorums(&out).len(), 0);
        assert_eq!(modules[0].current_quorum(), Quorum::initial(modules[0].config()));
    }

    #[test]
    #[should_panic(expected = "requires f >= 1")]
    fn f_zero_rejected() {
        let cfg = ClusterConfig::new(3, 0).unwrap();
        let chain = Keychain::new(&cfg, 1);
        let _ = QuorumSelection::new(cfg, ProcessId(1), chain.signer(ProcessId(1)), chain.verifier());
    }

    #[test]
    fn stats_track_quorums_per_epoch() {
        let (_, _, mut modules) = setup(5, 2);
        modules[0].on_suspected(set(&[2]));
        modules[0].on_suspected(set(&[2, 3]));
        let s = modules[0].stats();
        assert_eq!(s.quorums_issued, 2);
        assert_eq!(s.max_quorums_in_one_epoch(), 2);
    }
}
