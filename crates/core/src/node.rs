//! The per-process module composition of Figure 1: network → failure
//! detector → { quorum selection | application }.
//!
//! [`SelectorNode`] wires a [`FailureDetector`] to either Algorithm 1
//! ([`QuorumSelection`]) or Algorithm 2 ([`FollowerSelection`]) and runs a
//! signed-heartbeat application on top, so that crash, omission and timing
//! failures become expectations → suspicions → quorum changes, end to end.
//! It implements [`qsel_simnet::Actor`] and is the building block of the
//! integration tests, the examples and experiment E12.
//!
//! Events between modules at one process are handled in the order they are
//! produced (paper §IV), via an internal FIFO work queue.

use std::collections::VecDeque;

use qsel_detector::{FailureDetector, FdConfig, FdOutput};
use qsel_simnet::{Actor, Context, SimDuration, SimTime, TimerId};
use qsel_types::crypto::{Signer, Verifier};
use qsel_types::encode::Encode;
use qsel_types::{ClusterConfig, Epoch, LeaderQuorum, ProcessId, ProcessSet, Quorum, Signed};

use crate::follower_selection::{FollowerSelection, FsOutput};
use crate::messages::{SignedFollowers, SignedUpdate};
use crate::quorum_selection::{QsOutput, QuorumSelection};

/// Timer tags used by [`SelectorNode`].
const TIMER_HEARTBEAT: TimerId = TimerId(1);
const TIMER_FD_POLL: TimerId = TimerId(2);

/// A signed heartbeat (the application payload driving failure detection).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Heartbeat {
    /// Monotone sequence number.
    pub seq: u64,
}

impl Encode for Heartbeat {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"HRTB");
        self.seq.encode(buf);
    }
}

/// Wire messages exchanged by [`SelectorNode`]s.
#[derive(Clone, Debug)]
pub enum ServiceMsg {
    /// An Algorithm 1/2 `UPDATE`.
    Update(SignedUpdate),
    /// An Algorithm 2 `FOLLOWERS`.
    Followers(SignedFollowers),
    /// An application heartbeat.
    Heartbeat(Signed<Heartbeat>),
}

impl ServiceMsg {
    /// A short kind tag for traffic statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceMsg::Update(_) => "update",
            ServiceMsg::Followers(_) => "followers",
            ServiceMsg::Heartbeat(_) => "heartbeat",
        }
    }
}

/// Which selection algorithm a node runs.
#[derive(Debug)]
enum Selector {
    Quorum(QuorumSelection),
    Follower(FollowerSelection),
}

/// A quorum output recorded by a node, with its issue time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QuorumEvent {
    /// Algorithm 1 output.
    Plain(Quorum),
    /// Algorithm 2 output.
    Leader(LeaderQuorum),
}

/// Configuration of a [`SelectorNode`].
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Heartbeat broadcast period.
    pub heartbeat_period: SimDuration,
    /// Failure-detector timeouts.
    pub fd: FdConfig,
}

impl Default for NodeConfig {
    /// 5ms heartbeats with the default detector timeouts.
    fn default() -> Self {
        NodeConfig {
            heartbeat_period: SimDuration::millis(5),
            fd: FdConfig::default(),
        }
    }
}

/// One process of a quorum-selection service cluster (Fig. 1).
///
/// # Example
///
/// Running a 4-process cluster and crashing one member; the survivors agree
/// on a quorum excluding it:
///
/// ```
/// use qsel::node::{NodeConfig, SelectorNode, ServiceMsg};
/// use qsel_simnet::{SimConfig, SimTime, Simulation};
/// use qsel_types::crypto::Keychain;
/// use qsel_types::{ClusterConfig, ProcessId};
///
/// let cfg = ClusterConfig::new(4, 1).unwrap();
/// let chain = Keychain::new(&cfg, 3);
/// let nodes: Vec<SelectorNode> = cfg
///     .processes()
///     .map(|p| SelectorNode::new_quorum(cfg, p, &chain, NodeConfig::default()))
///     .collect();
/// let mut sim = Simulation::new(SimConfig::new(4, 3), nodes);
/// sim.start();
/// sim.crash(ProcessId(4));
/// sim.run_until(SimTime::from_micros(200_000));
/// for p in [1, 2, 3].map(ProcessId) {
///     let quorum = sim.actor(p).current_plain_quorum().unwrap();
///     assert!(!quorum.contains(ProcessId(4)));
/// }
/// ```
#[derive(Debug)]
pub struct SelectorNode {
    cfg: ClusterConfig,
    me: ProcessId,
    node_cfg: NodeConfig,
    signer: Signer,
    verifier: Verifier,
    fd: FailureDetector<ServiceMsg>,
    selector: Selector,
    hb_seq: u64,
    history: Vec<(SimTime, QuorumEvent)>,
}

/// Internal inter-module events, processed in production order.
enum Work {
    Fd(Vec<FdOutput<ServiceMsg>>),
    Qs(Vec<QsOutput>),
    Fs(Vec<FsOutput>),
}

impl SelectorNode {
    /// Creates a node running Algorithm 1 (Quorum Selection).
    pub fn new_quorum(
        cfg: ClusterConfig,
        me: ProcessId,
        chain: &qsel_types::crypto::Keychain,
        node_cfg: NodeConfig,
    ) -> Self {
        let selector = Selector::Quorum(QuorumSelection::new(
            cfg,
            me,
            chain.signer(me),
            chain.verifier(),
        ));
        Self::build(cfg, me, chain, node_cfg, selector)
    }

    /// Creates a node running Algorithm 2 (Follower Selection). Requires
    /// `n > 3f`.
    pub fn new_follower(
        cfg: ClusterConfig,
        me: ProcessId,
        chain: &qsel_types::crypto::Keychain,
        node_cfg: NodeConfig,
    ) -> Self {
        let selector = Selector::Follower(FollowerSelection::new(
            cfg,
            me,
            chain.signer(me),
            chain.verifier(),
        ));
        Self::build(cfg, me, chain, node_cfg, selector)
    }

    fn build(
        cfg: ClusterConfig,
        me: ProcessId,
        chain: &qsel_types::crypto::Keychain,
        node_cfg: NodeConfig,
        selector: Selector,
    ) -> Self {
        SelectorNode {
            cfg,
            me,
            signer: chain.signer(me),
            verifier: chain.verifier(),
            fd: FailureDetector::new(me, cfg.n(), node_cfg.fd.clone()),
            selector,
            hb_seq: 0,
            history: Vec::new(),
            node_cfg,
        }
    }

    /// All quorum events issued by this node, with timestamps.
    pub fn quorum_history(&self) -> &[(SimTime, QuorumEvent)] {
        &self.history
    }

    /// The most recent Algorithm 1 quorum (initial quorum if none issued).
    /// `None` when running Follower Selection.
    pub fn current_plain_quorum(&self) -> Option<Quorum> {
        match &self.selector {
            Selector::Quorum(qs) => Some(qs.current_quorum()),
            Selector::Follower(_) => None,
        }
    }

    /// The most recent leader quorum. `None` when running Quorum Selection.
    pub fn current_leader_quorum(&self) -> Option<LeaderQuorum> {
        match &self.selector {
            Selector::Follower(fs) => LeaderQuorum::of(
                &self.cfg,
                fs.leader(),
                fs.current_members().iter(),
            )
            .ok(),
            Selector::Quorum(_) => None,
        }
    }

    /// The selector's current epoch.
    pub fn epoch(&self) -> Epoch {
        match &self.selector {
            Selector::Quorum(qs) => qs.epoch(),
            Selector::Follower(fs) => fs.epoch(),
        }
    }

    /// Selection statistics.
    pub fn selection_stats(&self) -> &crate::stats::SelectionStats {
        match &self.selector {
            Selector::Quorum(qs) => qs.stats(),
            Selector::Follower(fs) => fs.stats(),
        }
    }

    /// Failure-detector statistics.
    pub fn fd_stats(&self) -> qsel_detector::FdStats {
        self.fd.stats()
    }

    /// The set currently suspected by this node's failure detector.
    pub fn suspected(&self) -> ProcessSet {
        self.fd.suspected_set()
    }

    fn peers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let me = self.me;
        self.cfg.processes().filter(move |p| *p != me)
    }

    /// Authenticates a network message: checks the embedded signature and
    /// returns the authenticated origin. Unauthenticatable messages are
    /// dropped (they cannot be attributed to any process).
    fn authenticate(&self, msg: &ServiceMsg) -> Option<ProcessId> {
        let ok = match msg {
            ServiceMsg::Update(u) => self.verifier.verify(u).is_ok(),
            ServiceMsg::Followers(f) => self.verifier.verify(f).is_ok(),
            ServiceMsg::Heartbeat(h) => self.verifier.verify(h).is_ok(),
        };
        if !ok {
            return None;
        }
        Some(match msg {
            ServiceMsg::Update(u) => u.signer,
            ServiceMsg::Followers(f) => f.signer,
            ServiceMsg::Heartbeat(h) => h.signer,
        })
    }

    fn heartbeat_tick(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        let now = ctx.now();
        // Expect a heartbeat from every peer, then send our own.
        for peer in self.cfg.processes().filter(|p| *p != self.me) {
            self.fd
                .expect(now, peer, "heartbeat", |m| matches!(m, ServiceMsg::Heartbeat(_)));
        }
        self.hb_seq += 1;
        let hb = ServiceMsg::Heartbeat(self.signer.sign(Heartbeat { seq: self.hb_seq }));
        let peers: Vec<ProcessId> = self.peers().collect();
        ctx.send_all(peers, hb);
        ctx.set_timer(self.node_cfg.heartbeat_period, TIMER_HEARTBEAT);
        self.rearm_fd_timer(ctx);
    }

    fn rearm_fd_timer(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        if let Some(deadline) = self.fd.next_deadline() {
            let delay = if deadline > ctx.now() {
                deadline - ctx.now() + SimDuration::micros(1)
            } else {
                SimDuration::micros(1)
            };
            ctx.set_timer(delay, TIMER_FD_POLL);
        }
    }

    /// Drains the inter-module work queue, routing each module's outputs to
    /// its consumers in production order.
    fn pump(&mut self, ctx: &mut Context<'_, ServiceMsg>, first: Work) {
        let mut queue: VecDeque<Work> = VecDeque::new();
        queue.push_back(first);
        while let Some(work) = queue.pop_front() {
            match work {
                Work::Fd(outputs) => {
                    for o in outputs {
                        match o {
                            FdOutput::Deliver { msg, .. } => match msg {
                                ServiceMsg::Update(u) => match &mut self.selector {
                                    Selector::Quorum(qs) => queue.push_back(Work::Qs(qs.on_update(u))),
                                    Selector::Follower(fs) => queue.push_back(Work::Fs(fs.on_update(u))),
                                },
                                ServiceMsg::Followers(f) => {
                                    if let Selector::Follower(fs) = &mut self.selector {
                                        queue.push_back(Work::Fs(fs.on_followers(f)));
                                    }
                                }
                                ServiceMsg::Heartbeat(_) => {}
                            },
                            FdOutput::Suspected(s) => match &mut self.selector {
                                Selector::Quorum(qs) => queue.push_back(Work::Qs(qs.on_suspected(s))),
                                Selector::Follower(fs) => queue.push_back(Work::Fs(fs.on_suspected(s))),
                            },
                        }
                    }
                }
                Work::Qs(outputs) => {
                    for o in outputs {
                        match o {
                            QsOutput::Broadcast(u) => {
                                let peers: Vec<ProcessId> = self.peers().collect();
                                ctx.send_all(peers, ServiceMsg::Update(u));
                            }
                            QsOutput::Quorum(q) => {
                                self.history.push((ctx.now(), QuorumEvent::Plain(q)));
                            }
                        }
                    }
                }
                Work::Fs(outputs) => {
                    for o in outputs {
                        match o {
                            FsOutput::BroadcastUpdate(u) => {
                                let peers: Vec<ProcessId> = self.peers().collect();
                                ctx.send_all(peers, ServiceMsg::Update(u));
                            }
                            FsOutput::BroadcastFollowers(f) => {
                                let peers: Vec<ProcessId> = self.peers().collect();
                                ctx.send_all(peers, ServiceMsg::Followers(f));
                            }
                            FsOutput::Quorum(lq) => {
                                self.history.push((ctx.now(), QuorumEvent::Leader(lq)));
                            }
                            FsOutput::Cancel => {
                                let outs = self.fd.cancel_all(ctx.now());
                                queue.push_back(Work::Fd(outs));
                            }
                            FsOutput::Expect { leader, epoch } => {
                                self.fd.expect(ctx.now(), leader, "followers", move |m| {
                                    matches!(
                                        m,
                                        ServiceMsg::Followers(sf) if sf.payload.epoch == epoch
                                    )
                                });
                            }
                            FsOutput::Detected(p) => {
                                let outs = self.fd.detected(ctx.now(), p);
                                queue.push_back(Work::Fd(outs));
                            }
                        }
                    }
                }
            }
        }
        self.rearm_fd_timer(ctx);
    }
}

impl Actor<ServiceMsg> for SelectorNode {
    fn on_start(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        self.heartbeat_tick(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ServiceMsg>, _link_sender: ProcessId, msg: ServiceMsg) {
        // The authenticated origin is the signer, not the link-level sender
        // (UPDATE and FOLLOWERS messages are forwarded by third parties).
        let Some(origin) = self.authenticate(&msg) else {
            return;
        };
        let outs = self.fd.on_receive(ctx.now(), origin, msg);
        self.pump(ctx, Work::Fd(outs));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ServiceMsg>, timer: TimerId) {
        match timer {
            TIMER_HEARTBEAT => self.heartbeat_tick(ctx),
            TIMER_FD_POLL => {
                let outs = self.fd.poll(ctx.now());
                self.pump(ctx, Work::Fd(outs));
            }
            // lint: allow(S2, timers are armed only by this node; an unknown id is a harness bug best surfaced loudly)
            other => unreachable!("unknown timer {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsel_simnet::{SimConfig, Simulation};
    use qsel_types::crypto::Keychain;

    fn cluster(
        n: u32,
        f: u32,
        seed: u64,
        follower: bool,
    ) -> Simulation<ServiceMsg, SelectorNode> {
        let cfg = ClusterConfig::new(n, f).unwrap();
        let chain = Keychain::new(&cfg, seed);
        let nodes: Vec<SelectorNode> = cfg
            .processes()
            .map(|p| {
                if follower {
                    SelectorNode::new_follower(cfg, p, &chain, NodeConfig::default())
                } else {
                    SelectorNode::new_quorum(cfg, p, &chain, NodeConfig::default())
                }
            })
            .collect();
        Simulation::new(SimConfig::new(n, seed), nodes)
    }

    #[test]
    fn healthy_cluster_stays_on_initial_quorum() {
        let mut sim = cluster(4, 1, 42, false);
        sim.run_until(SimTime::from_micros(100_000));
        for p in sim.ids().collect::<Vec<_>>() {
            let node = sim.actor(p);
            assert_eq!(
                node.current_plain_quorum().unwrap(),
                Quorum::initial(&ClusterConfig::new(4, 1).unwrap()),
                "no failures → no quorum changes at {p}"
            );
            assert!(node.quorum_history().is_empty());
        }
    }

    #[test]
    fn crashed_process_excluded_from_quorum() {
        let mut sim = cluster(4, 1, 7, false);
        sim.start();
        sim.crash(ProcessId(2));
        sim.run_until(SimTime::from_micros(200_000));
        for p in [1, 3, 4].map(ProcessId) {
            let q = sim.actor(p).current_plain_quorum().unwrap();
            assert!(!q.contains(ProcessId(2)), "at {p}: {q}");
        }
        // Agreement: all survivors output the same quorum.
        let q1 = sim.actor(ProcessId(1)).current_plain_quorum();
        assert_eq!(q1, sim.actor(ProcessId(3)).current_plain_quorum());
        assert_eq!(q1, sim.actor(ProcessId(4)).current_plain_quorum());
    }

    #[test]
    fn omission_link_fault_changes_quorum() {
        // p3 never receives p1's heartbeats: p3 suspects p1; the quorum
        // eventually avoids pairing p1 and p3 — and since suspicions are
        // recorded as an undirected edge, the lex-first independent set
        // keeps p1 out only if needed. Either way, agreement holds and the
        // quorum contains no suspicion edge.
        let mut sim = cluster(4, 1, 13, false);
        sim.start();
        sim.set_link(
            ProcessId(1),
            ProcessId(3),
            qsel_simnet::LinkState {
                drop_all: true,
                ..Default::default()
            },
        );
        sim.run_until(SimTime::from_micros(300_000));
        let quorums: Vec<Quorum> = [1, 2, 3, 4]
            .map(ProcessId)
            .iter()
            .map(|p| sim.actor(*p).current_plain_quorum().unwrap())
            .collect();
        for q in &quorums {
            assert_eq!(*q, quorums[0], "agreement");
            assert!(
                !(q.contains(ProcessId(1)) && q.contains(ProcessId(3))),
                "suspicion edge inside quorum: {q}"
            );
        }
    }

    #[test]
    fn follower_mode_crash_of_leader_elects_new_leader() {
        let mut sim = cluster(4, 1, 21, true);
        sim.start();
        sim.crash(ProcessId(1));
        sim.run_until(SimTime::from_micros(400_000));
        for p in [2, 3, 4].map(ProcessId) {
            let lq = sim.actor(p).current_leader_quorum().unwrap();
            assert_ne!(lq.leader(), ProcessId(1), "at {p}");
            assert!(!lq.quorum().contains(ProcessId(1)), "at {p}: {lq}");
        }
        let l2 = sim.actor(ProcessId(2)).current_leader_quorum().unwrap();
        let l3 = sim.actor(ProcessId(3)).current_leader_quorum().unwrap();
        let l4 = sim.actor(ProcessId(4)).current_leader_quorum().unwrap();
        assert_eq!(l2, l3);
        assert_eq!(l3, l4);
    }

    #[test]
    fn heartbeats_flow() {
        let mut sim = cluster(3, 1, 99, false);
        sim.set_classifier(|m| m.kind());
        sim.run_until(SimTime::from_micros(50_000));
        let stats = sim.stats();
        assert!(stats.by_kind["heartbeat"] > 0);
        // No failures: no update traffic beyond possibly nothing.
        assert!(stats.by_kind.get("followers").is_none());
    }
}
