//! The protocol-aware workspace passes.
//!
//! Unlike the per-file lints, these run over the whole [`Workspace`]
//! (symbol table + call graph):
//!
//! * **S1 verify-before-use** (dataflow upgrade): a fn reading a signed
//!   payload is clean if a verify-family call dominates the read in its
//!   own body, *or* every non-test call site is dominated by one in the
//!   caller (recursively, depth-limited). What is left is a genuine
//!   trust-boundary hole — or a documented boundary via `allow(S1, …)`.
//! * **P1 handler-exhaustiveness**: every wire-enum variant must be
//!   named somewhere reachable from the crate's message handler, so a
//!   wildcard arm cannot silently swallow a new message type.
//! * **P2 quorum-arithmetic**: hand-written `f + 1` / `2*f` / `n − f`
//!   threshold math outside `qsel_types::thresholds`.
//! * **P3 sans-io purity**: no call chain from a pure protocol crate
//!   may reach `std::net` / `std::thread` / `std::fs` / wall-clock
//!   types. This is the precondition for running the same state
//!   machines under a wall-clock backend and replaying against the DES.
//! * **P4 trace-vocabulary coverage**: every trace-event variant is
//!   emitted outside its defining crate and consumed by the
//!   replay/span tooling.
//! * **A1 stale-allow**: an `allow` annotation that matches no finding
//!   is noise that hides real suppressions — remove it. A1 is itself
//!   not suppressible.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::LintConfig;
use crate::lexer::{Tok, Token};
use crate::lints::{ident_at, punct_at};
use crate::model::Workspace;
use crate::parser::ParsedFile;
use crate::report::Finding;

/// Runs every workspace pass.
pub fn workspace_passes(ws: &Workspace, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    pass_s1(ws, cfg, findings);
    pass_p1(ws, cfg, findings);
    pass_p2(ws, cfg, findings);
    pass_p3(ws, cfg, findings);
    pass_p4(ws, cfg, findings);
}

/// Whether the scan set contains `krate`'s root file. The coverage
/// passes (P1, P4) key off this rather than mere crate presence: a full
/// workspace scan always includes the crate root, while unit-test and
/// fixture subsets (single files, `is_crate_root: false`) do not — and
/// those must not be told their enum is "missing".
fn has_crate_root(ws: &Workspace, krate: &str) -> bool {
    ws.files
        .iter()
        .any(|f| f.meta.krate == krate && f.meta.is_crate_root)
}

fn is_verify_ident(cfg: &LintConfig, s: &str) -> bool {
    cfg.verify_prefixes.iter().any(|p| s.starts_with(p.as_str()))
}

// ----------------------------------------------------------------------
// S1 — verify before use (interprocedural)
// ----------------------------------------------------------------------

fn pass_s1(ws: &Workspace, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    for id in 0..ws.fns.len() {
        let def = &ws.fns[id];
        if def.item.in_test || !cfg.s1_applies(&def.krate) {
            continue;
        }
        let Some((bs, be)) = def.item.body else { continue };
        let file = ws.file_of(id);
        let params = &file.code[def.item.params.0..def.item.params.1];
        for pname in signed_param_names(params) {
            let Some(rel) = first_payload_access(&file.code[bs..be], &pname) else {
                continue;
            };
            let acc = bs + rel;
            let in_body = file.code[bs..acc]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if is_verify_ident(cfg, s)));
            if in_body || callers_verify(ws, cfg, id, 0, &mut BTreeSet::new()) {
                continue;
            }
            findings.push(Finding {
                lint: "S1",
                file: file.meta.path.clone(),
                line: def.item.line,
                message: format!(
                    "fn `{}` reads `{pname}.payload` without a dominating `verify` call \
                     in its body or in every caller — signed payloads must be verified \
                     before use (σ_l assumption, PAPER.md §II)",
                    def.item.name
                ),
                suppressed: None,
            });
        }
    }
}

/// Whether *every* non-test call site of `id` is dominated by a
/// verify-family call — either textually earlier in the caller's body,
/// or (recursively) because the caller itself is only entered verified.
/// No known call sites means nobody vouches: `false`.
fn callers_verify(
    ws: &Workspace,
    cfg: &LintConfig,
    id: usize,
    depth: usize,
    visiting: &mut BTreeSet<usize>,
) -> bool {
    if depth >= cfg.s1_max_caller_depth || !visiting.insert(id) {
        return false; // depth bound or recursion cycle: assume unverified
    }
    let sites = ws.call_sites_of(id);
    if sites.is_empty() {
        visiting.remove(&id);
        return false;
    }
    for &(caller, site_idx) in sites {
        let cdef = &ws.fns[caller];
        let Some((bs, _)) = cdef.item.body else {
            visiting.remove(&id);
            return false;
        };
        let cfile = ws.file_of(caller);
        let dominated = cfile.code[bs..site_idx]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if is_verify_ident(cfg, s)));
        if !dominated && !callers_verify(ws, cfg, caller, depth + 1, visiting) {
            visiting.remove(&id);
            return false;
        }
    }
    visiting.remove(&id);
    true
}

/// Names of parameters whose type tokens mention an ident starting with
/// `Signed`, given the token slice between the parens of a `fn`.
fn signed_param_names(params: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    // Split at top-level commas, tracking (), [], {}, and <> depth.
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for (k, t) in params.iter().enumerate() {
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct('>') => {
                // `->` and `=>` are not closing angles.
                let arrow =
                    k > 0 && matches!(params[k - 1].tok, Tok::Punct('-') | Tok::Punct('='));
                if !arrow {
                    depth -= 1;
                }
            }
            Tok::Punct(',') if depth == 0 => {
                groups.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    groups.push((start, params.len()));
    for (a, b) in groups {
        let slice = &params[a..b];
        let Some(colon) = slice.iter().position(|t| t.tok == Tok::Punct(':')) else {
            continue; // `self`, `&mut self`, ...
        };
        let ty_signed = slice[colon + 1..]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s.starts_with("Signed")));
        if !ty_signed {
            continue;
        }
        // The binding name: last ident before the colon (skips `mut`, `&`).
        if let Some(name) = slice[..colon].iter().rev().find_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        }) {
            out.push(name);
        }
    }
    out
}

/// Index (within `body`) of the first `name . payload` sequence.
fn first_payload_access(body: &[Token], name: &str) -> Option<usize> {
    (0..body.len().saturating_sub(2)).find(|&k| {
        matches!(&body[k].tok, Tok::Ident(s) if s == name)
            && body[k + 1].tok == Tok::Punct('.')
            && matches!(&body[k + 2].tok, Tok::Ident(s) if s == "payload")
    })
}

// ----------------------------------------------------------------------
// P1 — handler exhaustiveness
// ----------------------------------------------------------------------

fn pass_p1(ws: &Workspace, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    for spec in &cfg.p1_handlers {
        // Fixture runs lint subsets of the tree; a handler spec whose
        // crate is absent from the scanned set simply does not apply.
        if !has_crate_root(ws, &spec.enum_crate) || !has_crate_root(ws, &spec.handler_crate) {
            continue;
        }
        let enum_item = ws.files.iter().find_map(|f| {
            if f.meta.krate != spec.enum_crate {
                return None;
            }
            f.enums
                .iter()
                .find(|e| e.name == spec.enum_name && !e.in_test)
                .map(|e| (f.meta.path.clone(), e.clone()))
        });
        let Some((enum_path, enum_item)) = enum_item else {
            findings.push(Finding {
                lint: "P1",
                file: format!("crates/{}/src", spec.enum_crate),
                line: 1,
                message: format!(
                    "wire enum `{}` not found in crate `{}` — update the P1 handler \
                     spec in qsel-lint's LintConfig",
                    spec.enum_name, spec.enum_crate
                ),
                suppressed: None,
            });
            continue;
        };
        let handlers = ws.fns_named(&spec.handler_crate, &spec.handler_fn);
        if handlers.is_empty() {
            findings.push(Finding {
                lint: "P1",
                file: enum_path,
                line: enum_item.line,
                message: format!(
                    "no fn `{}` found in crate `{}` to handle `{}` — update the P1 \
                     handler spec in qsel-lint's LintConfig",
                    spec.handler_fn, spec.handler_crate, spec.enum_name
                ),
                suppressed: None,
            });
            continue;
        }
        // Variants named anywhere reachable from the handler(s).
        let mut mentioned: BTreeSet<String> = BTreeSet::new();
        for id in ws.reachable(&handlers) {
            let def = &ws.fns[id];
            let Some((bs, be)) = def.item.body else { continue };
            let code = &ws.file_of(id).code;
            for i in bs..be.min(code.len()).saturating_sub(3) {
                if ident_at(code, i) == Some(spec.enum_name.as_str())
                    && punct_at(code, i + 1, ':')
                    && punct_at(code, i + 2, ':')
                {
                    if let Some(v) = ident_at(code, i + 3) {
                        mentioned.insert(v.to_string());
                    }
                }
            }
        }
        let missing: Vec<&str> = enum_item
            .variants
            .iter()
            .map(|(v, _)| v.as_str())
            .filter(|v| !mentioned.contains(*v))
            .collect();
        if !missing.is_empty() {
            let hfile = ws.file_of(handlers[0]);
            let hline = ws.fns[handlers[0]].item.line;
            findings.push(Finding {
                lint: "P1",
                file: hfile.meta.path.clone(),
                line: hline,
                message: format!(
                    "fn `{}` does not handle `{}` variant(s) {} — every wire variant \
                     must be matched explicitly (wildcard arms swallow new message types)",
                    spec.handler_fn,
                    spec.enum_name,
                    missing
                        .iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                suppressed: None,
            });
        }
    }
}

// ----------------------------------------------------------------------
// P2 — quorum arithmetic
// ----------------------------------------------------------------------

/// Normalized view of an expression token for threshold-pattern matching.
#[derive(Clone, Debug, PartialEq)]
enum Atom {
    /// Last path segment of an ident / field access / nullary call
    /// (`self.cluster.f()` → `f`).
    Name(String, u32, usize),
    /// A literal with its raw text.
    Lit(String, u32, usize),
    /// An arithmetic/comparison operator.
    Op(&'static str, u32, usize),
    /// Anything else (breaks adjacency).
    Other,
}

fn pass_p2(ws: &Workspace, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    for file in &ws.files {
        if !cfg.p2_applies(&file.meta.krate) || cfg.p2_exempt(&file.meta.path) {
            continue;
        }
        let atoms = normalize_exprs(&file.code);
        let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
        for w in 0..atoms.len() {
            let Some((snippet, line, idx)) = match_threshold(&atoms, w) else {
                continue;
            };
            if file.in_test(idx) || !flagged_lines.insert(line) {
                continue;
            }
            findings.push(Finding {
                lint: "P2",
                file: file.meta.path.clone(),
                line,
                message: format!(
                    "hand-written quorum threshold `{snippet}` — route it through \
                     `qsel_types::thresholds` so the off-by-one class is centralized"
                ),
                suppressed: None,
            });
        }
    }
}

/// Collapses the token stream into [`Atom`]s: path/field chains reduce
/// to their last segment, nullary calls to their method name, multi-char
/// operators are fused, and argument-taking calls become opaque.
fn normalize_exprs(code: &[Token]) -> Vec<Atom> {
    let mut out: Vec<Atom> = Vec::new();
    let mut i = 0;
    let n = code.len();
    while i < n {
        let line = code[i].line;
        match &code[i].tok {
            Tok::Ident(s) if s == "as" => {
                // A cast keeps the value: skip `as Type` so `x as u32 > f`
                // stays adjacent.
                i += 1;
                if matches!(code.get(i).map(|t| &t.tok), Some(Tok::Ident(_))) {
                    i += 1;
                }
            }
            Tok::Ident(s) => {
                push_named(&mut out, code, &mut i, s.clone(), line, false);
            }
            Tok::Literal(text) => {
                out.push(Atom::Lit(text.clone(), line, i));
                i += 1;
            }
            Tok::Punct('.') => {
                if punct_at(code, i + 1, '.') {
                    // Range operator `..` / `..=`.
                    out.push(Atom::Other);
                    i += 2;
                    if punct_at(code, i, '=') {
                        i += 1;
                    }
                } else if let Some(Tok::Ident(s)) = code.get(i + 1).map(|t| &t.tok) {
                    // Field access / method call: the chain's value is
                    // named by its last segment.
                    let name = s.clone();
                    i += 1;
                    push_named(&mut out, code, &mut i, name, line, true);
                } else {
                    // Tuple field `.0` etc.
                    if matches!(out.last(), Some(Atom::Name(..) | Atom::Lit(..))) {
                        out.pop();
                    }
                    out.push(Atom::Other);
                    i += 2;
                }
            }
            Tok::Punct(':') if punct_at(code, i + 1, ':') => {
                // Path separator: drop the qualifier, the next segment
                // re-pushes.
                if matches!(out.last(), Some(Atom::Name(..))) {
                    out.pop();
                }
                i += 2;
            }
            Tok::Punct('-') if punct_at(code, i + 1, '>') => {
                out.push(Atom::Other);
                i += 2;
            }
            Tok::Punct('=') if punct_at(code, i + 1, '>') => {
                out.push(Atom::Other);
                i += 2;
            }
            Tok::Punct('=') if punct_at(code, i + 1, '=') => {
                out.push(Atom::Op("==", line, i));
                i += 2;
            }
            Tok::Punct('!') if punct_at(code, i + 1, '=') => {
                out.push(Atom::Op("!=", line, i));
                i += 2;
            }
            Tok::Punct('<') if punct_at(code, i + 1, '=') => {
                out.push(Atom::Op("<=", line, i));
                i += 2;
            }
            Tok::Punct('>') if punct_at(code, i + 1, '=') => {
                out.push(Atom::Op(">=", line, i));
                i += 2;
            }
            Tok::Punct('<') if punct_at(code, i + 1, '<') => {
                out.push(Atom::Other);
                i += 2;
            }
            Tok::Punct('>') if punct_at(code, i + 1, '>') => {
                out.push(Atom::Other);
                i += 2;
            }
            Tok::Punct('+') => {
                out.push(Atom::Op("+", line, i));
                i += 1;
            }
            Tok::Punct('-') => {
                out.push(Atom::Op("-", line, i));
                i += 1;
            }
            Tok::Punct('*') => {
                out.push(Atom::Op("*", line, i));
                i += 1;
            }
            Tok::Punct('<') => {
                out.push(Atom::Op("<", line, i));
                i += 1;
            }
            Tok::Punct('>') => {
                out.push(Atom::Op(">", line, i));
                i += 1;
            }
            _ => {
                out.push(Atom::Other);
                i += 1;
            }
        }
    }
    out
}

/// Pushes the atom for an ident (possibly a call) at `*i`; `*i` points
/// at the ident. Nullary calls keep the name (they read a stored value:
/// `cfg.f()`); calls with arguments are opaque, but their argument
/// tokens are still scanned.
fn push_named(
    out: &mut Vec<Atom>,
    code: &[Token],
    i: &mut usize,
    name: String,
    line: u32,
    after_dot: bool,
) {
    if after_dot && matches!(out.last(), Some(Atom::Name(..) | Atom::Lit(..))) {
        out.pop(); // `self.cluster.f` — the chain names its last segment
    }
    let idx = *i;
    if punct_at(code, *i + 1, '(') {
        if punct_at(code, *i + 2, ')') {
            out.push(Atom::Name(name, line, idx));
            *i += 3; // nullary call: `f()` names its value
            return;
        }
        out.push(Atom::Other);
        *i += 1; // argument-taking call: opaque, but scan into the args
        return;
    }
    out.push(Atom::Name(name, line, idx));
    *i += 1;
}

fn is_f(a: &Atom) -> bool {
    matches!(a, Atom::Name(s, ..) if s == "f" || s == "faults")
}

fn is_nm(a: &Atom) -> bool {
    matches!(a, Atom::Name(s, ..) if s == "n" || s == "m")
}

fn is_cmp(a: &Atom) -> Option<&'static str> {
    match a {
        Atom::Op(op @ ("<" | ">" | "<=" | ">=" | "==" | "!="), ..) => Some(op),
        _ => None,
    }
}

fn atom_pos(a: &Atom) -> Option<(u32, usize)> {
    match a {
        Atom::Name(_, l, i) | Atom::Lit(_, l, i) | Atom::Op(_, l, i) => Some((*l, *i)),
        Atom::Other => None,
    }
}

fn atom_text(a: &Atom) -> String {
    match a {
        Atom::Name(s, ..) => s.clone(),
        Atom::Lit(s, ..) => s.clone(),
        Atom::Op(s, ..) => (*s).to_string(),
        Atom::Other => "_".to_string(),
    }
}

/// Threshold pattern match at window position `w`. Returns
/// `(snippet, line, token idx)` of the match.
fn match_threshold(atoms: &[Atom], w: usize) -> Option<(String, u32, usize)> {
    let a = atoms.get(w)?;
    let b = atoms.get(w + 1);
    let c = atoms.get(w + 2);
    let snippet = |k: usize| {
        atoms[w..=(w + k).min(atoms.len() - 1)]
            .iter()
            .map(atom_text)
            .collect::<Vec<_>>()
            .join(" ")
    };
    // `f <op> …` / `… <op> f` — any comparison against the fault bound.
    if is_f(a) && b.and_then(is_cmp).is_some() {
        let (l, i) = atom_pos(a)?;
        return Some((snippet(1), l, i));
    }
    if is_cmp(a).is_some() && b.is_some_and(is_f) {
        let (l, i) = atom_pos(b?)?;
        return Some((snippet(1), l, i));
    }
    // `f + <lit>` / `<lit> + f` — the f+1 family.
    if is_f(a)
        && matches!(b, Some(Atom::Op("+", ..)))
        && matches!(c, Some(Atom::Lit(..)))
    {
        let (l, i) = atom_pos(a)?;
        return Some((snippet(2), l, i));
    }
    if matches!(a, Atom::Lit(..))
        && matches!(b, Some(Atom::Op("+", ..)))
        && c.is_some_and(is_f)
    {
        let (l, i) = atom_pos(c?)?;
        return Some((snippet(2), l, i));
    }
    // `<lit> * f` / `f * <lit>` — the 2f/3f family.
    if matches!(a, Atom::Lit(..))
        && matches!(b, Some(Atom::Op("*", ..)))
        && c.is_some_and(is_f)
    {
        let (l, i) = atom_pos(c?)?;
        return Some((snippet(2), l, i));
    }
    if is_f(a)
        && matches!(b, Some(Atom::Op("*", ..)))
        && matches!(c, Some(Atom::Lit(..)))
    {
        let (l, i) = atom_pos(a)?;
        return Some((snippet(2), l, i));
    }
    // `n - f` / `m - f` — quorum size.
    if is_nm(a) && matches!(b, Some(Atom::Op("-", ..))) && c.is_some_and(is_f) {
        let (l, i) = atom_pos(a)?;
        return Some((snippet(2), l, i));
    }
    // `<cmp> n - 1` / `n - 1 <cmp>` — all-peers coverage compares.
    if is_cmp(a).is_some()
        && b.is_some_and(is_nm)
        && matches!(c, Some(Atom::Op("-", ..)))
        && matches!(atoms.get(w + 3), Some(Atom::Lit(t, ..)) if t == "1")
    {
        let (l, i) = atom_pos(b?)?;
        return Some((snippet(3), l, i));
    }
    if is_nm(a)
        && matches!(b, Some(Atom::Op("-", ..)))
        && matches!(c, Some(Atom::Lit(t, ..)) if t == "1")
        && atoms.get(w + 3).and_then(is_cmp).is_some()
    {
        let (l, i) = atom_pos(a)?;
        return Some((snippet(3), l, i));
    }
    None
}

// ----------------------------------------------------------------------
// P3 — sans-io purity
// ----------------------------------------------------------------------

const P3_MODULE_ANCHORS: &[&str] = &["net", "thread", "fs"];

/// The `std::` submodules that anchor taint for `krate`. Result-writer
/// crates (`bench`) get `fs` back; nobody gets `net` or `thread`.
fn module_anchors(cfg: &LintConfig, krate: &str) -> &'static [&'static str] {
    if cfg.p3_fs_exempt(krate) {
        &P3_MODULE_ANCHORS[..2]
    } else {
        P3_MODULE_ANCHORS
    }
}
const P3_NET_IDENT_ANCHORS: &[&str] = &["TcpStream", "TcpListener", "UdpSocket"];
const P3_TIME_IDENT_ANCHORS: &[&str] = &["Instant", "SystemTime"];

fn pass_p3(ws: &Workspace, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    // 1. Anchors: functions whose body (or whose file's import preamble)
    // textually touches an io/clock facility. Wall-clock anchors are
    // skipped in crates D2 exempts (they measure on purpose), and a
    // *direct* wall-clock use is not itself reported — D2 already flags
    // that exact line; P3 adds the interprocedural reach.
    let mut anchor: BTreeMap<usize, String> = BTreeMap::new();
    let mut time_only: BTreeSet<usize> = BTreeSet::new();
    let file_anchors: Vec<Option<String>> = ws
        .files
        .iter()
        .map(|f| file_level_anchor(f, cfg))
        .collect();
    for id in 0..ws.fns.len() {
        let def = &ws.fns[id];
        if def.item.in_test {
            continue;
        }
        if let Some(a) = &file_anchors[def.file] {
            anchor.insert(id, a.clone());
            continue;
        }
        let Some((bs, be)) = def.item.body else { continue };
        let file = ws.file_of(id);
        let time_ok = !cfg.d2_applies(&def.krate);
        for i in bs..be.min(file.code.len()) {
            let Some(s) = ident_at(&file.code, i) else { continue };
            if P3_NET_IDENT_ANCHORS.contains(&s) {
                anchor.insert(id, format!("`{s}`"));
                break;
            }
            if !time_ok && P3_TIME_IDENT_ANCHORS.contains(&s) {
                anchor.insert(id, format!("`{s}`"));
                time_only.insert(id);
                break;
            }
            if s == "std" && punct_at(&file.code, i + 1, ':') && punct_at(&file.code, i + 2, ':')
            {
                if let Some(m) = ident_at(&file.code, i + 3) {
                    if module_anchors(cfg, &def.krate).contains(&m) {
                        anchor.insert(id, format!("`std::{m}`"));
                        break;
                    }
                }
            }
        }
    }

    // 2. Taint: reverse-propagate anchors up the call graph. Edges out
    // of boundary crates (measurement shims like `criterion`) stop the
    // propagation — their impurity is their contract.
    let mut tainted: BTreeMap<usize, Option<usize>> = BTreeMap::new(); // id → taint parent
    let mut frontier: Vec<usize> = anchor.keys().copied().collect();
    for &id in &frontier {
        tainted.insert(id, None);
    }
    while let Some(t) = frontier.pop() {
        if cfg.p3_boundary(&ws.fns[t].krate) {
            continue; // callers of a boundary crate stay clean
        }
        for &(caller, _) in ws.call_sites_of(t) {
            if let std::collections::btree_map::Entry::Vacant(e) = tainted.entry(caller) {
                e.insert(Some(t));
                frontier.push(caller);
            }
        }
    }

    // 3. Report every tainted fn in a pure crate, with its chain. A fn
    // whose only sin is a direct wall-clock read is D2's finding, not
    // ours — P3 reports the chains D2 cannot see, plus direct io.
    for (&id, parent) in &tainted {
        let def = &ws.fns[id];
        if !cfg.p3_pure(&def.krate) {
            continue;
        }
        if parent.is_none() && time_only.contains(&id) {
            continue;
        }
        let mut chain = vec![id];
        let mut cur = id;
        while let Some(Some(parent)) = tainted.get(&cur) {
            chain.push(*parent);
            cur = *parent;
        }
        let chain_s = chain
            .iter()
            .map(|&c| format!("`{}`", ws.fns[c].item.name))
            .collect::<Vec<_>>()
            .join(" -> ");
        let what = anchor.get(&cur).cloned().unwrap_or_default();
        let file = ws.file_of(id);
        findings.push(Finding {
            lint: "P3",
            file: file.meta.path.clone(),
            line: def.item.line,
            message: format!(
                "fn `{}` in sans-io crate `{}` can reach {what} via {chain_s} — \
                 protocol logic must stay deterministic and io-free",
                def.item.name, def.krate
            ),
            suppressed: None,
        });
    }
}

/// A file-level anchor: `use std::{net,thread,fs}` (or any textual
/// `std::net`-style path outside test regions) taints every fn in the
/// file — pure crates must not even import these.
fn file_level_anchor(file: &ParsedFile, cfg: &LintConfig) -> Option<String> {
    let code = &file.code;
    let time_ok = !cfg.d2_applies(&file.meta.krate);
    for i in 0..code.len() {
        if file.in_test(i) {
            continue;
        }
        let Some(s) = ident_at(code, i) else { continue };
        if s == "std" && punct_at(code, i + 1, ':') && punct_at(code, i + 2, ':') {
            if let Some(m) = ident_at(code, i + 3) {
                if module_anchors(cfg, &file.meta.krate).contains(&m) {
                    return Some(format!("`std::{m}`"));
                }
                if !time_ok && m == "time" {
                    // `std::time::Duration` is fine; only the clock types
                    // anchor. Handled by the ident anchors below.
                }
            }
        }
    }
    None
}

// ----------------------------------------------------------------------
// P4 — trace vocabulary coverage
// ----------------------------------------------------------------------

fn pass_p4(ws: &Workspace, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    if !has_crate_root(ws, &cfg.p4_event_crate) {
        return; // fixture subset without the obs crate
    }
    let enum_item = ws.files.iter().find_map(|f| {
        if f.meta.krate != cfg.p4_event_crate {
            return None;
        }
        f.enums
            .iter()
            .find(|e| e.name == cfg.p4_event_enum && !e.in_test)
            .map(|e| (f.meta.path.clone(), e.clone()))
    });
    let Some((enum_path, enum_item)) = enum_item else {
        findings.push(Finding {
            lint: "P4",
            file: format!("crates/{}/src", cfg.p4_event_crate),
            line: 1,
            message: format!(
                "trace-event enum `{}` not found in crate `{}` — update the P4 \
                 config in qsel-lint",
                cfg.p4_event_enum, cfg.p4_event_crate
            ),
            suppressed: None,
        });
        return;
    };
    // Collect `Enum::Variant` references per file class.
    let mut emitted: BTreeSet<String> = BTreeSet::new();
    let mut consumed: BTreeSet<String> = BTreeSet::new();
    for file in &ws.files {
        let is_consumer = cfg
            .p4_consumer_paths
            .iter()
            .any(|p| file.meta.path.contains(p.as_str()));
        let is_emitter_site = file.meta.krate != cfg.p4_event_crate;
        if !is_consumer && !is_emitter_site {
            continue;
        }
        let code = &file.code;
        for i in 0..code.len().saturating_sub(3) {
            if ident_at(code, i) == Some(cfg.p4_event_enum.as_str())
                && punct_at(code, i + 1, ':')
                && punct_at(code, i + 2, ':')
            {
                if let Some(v) = ident_at(code, i + 3) {
                    if is_consumer {
                        consumed.insert(v.to_string());
                    }
                    if is_emitter_site && !file.in_test(i) {
                        emitted.insert(v.to_string());
                    }
                }
            }
        }
    }
    for (v, line) in &enum_item.variants {
        let e = emitted.contains(v);
        let c = consumed.contains(v);
        if e && c {
            continue;
        }
        let gap = match (e, c) {
            (false, false) => "is neither emitted outside its crate nor consumed by the replay/span tooling",
            (false, true) => "is never emitted outside its defining crate",
            (true, false) => "is not consumed by the replay/span tooling",
            _ => unreachable!(),
        };
        findings.push(Finding {
            lint: "P4",
            file: enum_path.clone(),
            line: *line,
            message: format!(
                "trace event `{}::{v}` {gap} — dead vocabulary rots the observability \
                 contract (emit it, consume it, or delete the variant)",
                cfg.p4_event_enum
            ),
            suppressed: None,
        });
    }
}

// ----------------------------------------------------------------------
// A1 — stale allows
// ----------------------------------------------------------------------

/// Flags `// lint: allow(ID, …)` annotations that matched no finding.
/// Run *after* suppression application; A1 findings are themselves
/// never suppressible (an allow for A1 would be self-justifying).
pub fn pass_a1(ws: &Workspace, applied: &[Finding], findings: &mut Vec<Finding>) {
    for file in &ws.files {
        for s in &file.suppressions {
            let matched = applied.iter().any(|f| {
                f.lint != "A1"
                    && f.lint == s.lint
                    && f.file == file.meta.path
                    && (f.line == s.line || f.line == s.line + 1)
            });
            if !matched {
                findings.push(Finding {
                    lint: "A1",
                    file: file.meta.path.clone(),
                    line: s.line,
                    message: format!(
                        "stale `allow({}, {})`: no {} finding on this or the next line — \
                         remove the annotation (stale allows hide real suppressions)",
                        s.lint, s.reason, s.lint
                    ),
                    suppressed: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::FileMeta;

    fn pf(krate: &str, name: &str, src: &str) -> ParsedFile {
        ParsedFile::parse(
            src,
            &FileMeta {
                path: format!("crates/{krate}/src/{name}.rs"),
                krate: krate.to_string(),
                is_crate_root: false,
            },
        )
    }

    fn ws(files: Vec<ParsedFile>) -> Workspace {
        Workspace::build(files, BTreeMap::new())
    }

    #[test]
    fn s1_accepts_caller_side_verification() {
        let src = "fn entry(m: SignedVote) { verify_sig(&m); apply(m); }\n\
                   fn apply(m: SignedVote) { use_it(m.payload); }";
        let w = ws(vec![pf("core", "a", src)]);
        let mut f = Vec::new();
        pass_s1(&w, &LintConfig::default(), &mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn s1_flags_unverified_caller_chain() {
        let src = "fn entry(m: SignedVote) { apply(m); }\n\
                   fn apply(m: SignedVote) { use_it(m.payload); }";
        let w = ws(vec![pf("core", "a", src)]);
        let mut f = Vec::new();
        pass_s1(&w, &LintConfig::default(), &mut f);
        // `apply` reads unverified; `entry` never touches payload itself.
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("`apply`"));
    }

    #[test]
    fn p2_flags_raw_thresholds_and_spares_helpers() {
        let src = "fn quorum(&self) -> bool { self.votes.len() as u32 > self.cluster.f() }\n\
                   fn ok(&self) -> bool { reply_quorum_reached(self.cluster.f(), self.votes.len()) }";
        let w = ws(vec![pf("xpaxos", "a", src)]);
        let mut f = Vec::new();
        pass_p2(&w, &LintConfig::default(), &mut f);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn p2_matches_literal_arithmetic() {
        let src = "fn a(f: u32) -> u32 { f + 1 }\nfn b(f: u32) -> u32 { 2 * f + 1 }\n\
                   fn c(n: u32, f: u32) -> u32 { n - f }";
        let w = ws(vec![pf("core", "t", src)]);
        let mut f = Vec::new();
        pass_p2(&w, &LintConfig::default(), &mut f);
        let lines: Vec<u32> = f.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![1, 2, 3], "{f:?}");
    }

    #[test]
    fn p2_exempts_thresholds_module_and_tests() {
        let src = "fn q(n: u32, f: u32) -> u32 { n - f }";
        let mut file = pf("types", "x", src);
        file.meta.path = "crates/types/src/thresholds.rs".into();
        let w = ws(vec![file]);
        let mut f = Vec::new();
        pass_p2(&w, &LintConfig::default(), &mut f);
        assert!(f.is_empty());
        let test_src = "#[cfg(test)]\nmod t { fn q(n: u32, f: u32) -> u32 { n - f } }";
        let w = ws(vec![pf("types", "y", test_src)]);
        let mut f = Vec::new();
        pass_p2(&w, &LintConfig::default(), &mut f);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn a1_flags_unmatched_allow() {
        let file = pf("core", "a", "// lint: allow(S2, old reason)\nfn fine() {}");
        let w = ws(vec![file]);
        let mut out = Vec::new();
        pass_a1(&w, &[], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].lint, "A1");
    }
}
