//! Lint configuration: which crates each lint applies to.
//!
//! The scoping encodes the workspace's determinism architecture rather
//! than per-file whims:
//!
//! * protocol/simulation crates must be reproducible byte-for-byte, so
//!   they get the determinism lints (D1–D3) and the protocol-safety
//!   lints (S1–S2);
//! * `bench` and the vendored `criterion` shim measure wall-clock time
//!   on purpose — they are the only places D2 permits `Instant`;
//! * the vendored `rand` shim *implements* the seeded generators all
//!   randomness must flow from, so it is exempt from D3 by definition.

/// Per-lint crate scoping. Crate names are the directory names under
/// `crates/` (plus the synthetic names `qsel-repro` for the root package
/// and `examples` for example binaries).
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// D1 (nondeterministic iteration) applies to these crates.
    pub d1_crates: Vec<String>,
    /// D2 (wall clock) applies everywhere *except* these crates.
    pub d2_exempt_crates: Vec<String>,
    /// D3 (ambient rng) applies everywhere *except* these crates.
    pub d3_exempt_crates: Vec<String>,
    /// S1 (verify before use) applies to these crates.
    pub s1_crates: Vec<String>,
    /// S2 (panic in protocol code) applies to these crates.
    pub s2_crates: Vec<String>,
    /// Path substrings exempt from H1 (crate roots allowed to omit
    /// `#![forbid(unsafe_code)]`). Empty by default: the whole workspace
    /// carries the header.
    pub h1_exempt: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        LintConfig {
            // Crates whose iteration order can reach messages, traces,
            // or stats of a seeded simulation. The scenario layer compiles
            // specs into fault plans and actor placements, so its iteration
            // order reaches the trace too.
            d1_crates: v(&["core", "xpaxos", "pbft", "detector", "simnet", "scenario", "mmr"]),
            d2_exempt_crates: v(&["bench", "criterion"]),
            d3_exempt_crates: v(&["rand"]),
            // Crates that handle signed protocol messages.
            s1_crates: v(&["core", "xpaxos", "pbft", "detector"]),
            s2_crates: v(&["core", "xpaxos", "pbft", "detector", "mmr"]),
            h1_exempt: Vec::new(),
        }
    }
}

impl LintConfig {
    /// Whether D1 applies to `krate`.
    pub fn d1_applies(&self, krate: &str) -> bool {
        self.d1_crates.iter().any(|c| c == krate)
    }

    /// Whether D2 applies to `krate`.
    pub fn d2_applies(&self, krate: &str) -> bool {
        !self.d2_exempt_crates.iter().any(|c| c == krate)
    }

    /// Whether D3 applies to `krate`.
    pub fn d3_applies(&self, krate: &str) -> bool {
        !self.d3_exempt_crates.iter().any(|c| c == krate)
    }

    /// Whether S1 applies to `krate`.
    pub fn s1_applies(&self, krate: &str) -> bool {
        self.s1_crates.iter().any(|c| c == krate)
    }

    /// Whether S2 applies to `krate`.
    pub fn s2_applies(&self, krate: &str) -> bool {
        self.s2_crates.iter().any(|c| c == krate)
    }

    /// Whether `path` (workspace-relative, `/`-separated) is exempt from H1.
    pub fn h1_exempt(&self, path: &str) -> bool {
        self.h1_exempt.iter().any(|p| path.contains(p.as_str()))
    }
}
