//! Lint configuration: which crates each lint applies to.
//!
//! The scoping encodes the workspace's determinism architecture rather
//! than per-file whims:
//!
//! * protocol/simulation crates must be reproducible byte-for-byte, so
//!   they get the determinism lints (D1–D3) and the protocol-safety
//!   lints (S1–S2);
//! * `bench` and the vendored `criterion` shim measure wall-clock time
//!   on purpose — they are the only places D2 permits `Instant`;
//! * the vendored `rand` shim *implements* the seeded generators all
//!   randomness must flow from, so it is exempt from D3 by definition.

/// A wire enum + the handler fn that must match it exhaustively (P1).
#[derive(Clone, Debug)]
pub struct HandlerSpec {
    /// Crate (dir name) defining the wire enum.
    pub enum_crate: String,
    /// The wire enum's name.
    pub enum_name: String,
    /// Crate defining the handler function.
    pub handler_crate: String,
    /// The handler function's name; every enum variant must be named in
    /// code reachable from it.
    pub handler_fn: String,
}

/// Per-lint crate scoping. Crate names are the directory names under
/// `crates/` (plus the synthetic names `qsel-repro` for the root package
/// and `examples` for example binaries).
#[derive(Clone, Debug)]
pub struct LintConfig {
    /// D1 (nondeterministic iteration) applies to these crates.
    pub d1_crates: Vec<String>,
    /// D2 (wall clock) applies everywhere *except* these crates.
    pub d2_exempt_crates: Vec<String>,
    /// D3 (ambient rng) applies everywhere *except* these crates.
    pub d3_exempt_crates: Vec<String>,
    /// S1 (verify before use) applies to these crates.
    pub s1_crates: Vec<String>,
    /// How far up the call graph S1 chases caller-side verification
    /// before giving up and flagging.
    pub s1_max_caller_depth: usize,
    /// Identifier prefixes that count as verify-family calls for S1
    /// domination (`verify_sig`, `authenticate_peer`, ...).
    pub verify_prefixes: Vec<String>,
    /// S2 (panic in protocol code) applies to these crates.
    pub s2_crates: Vec<String>,
    /// Path substrings exempt from H1 (crate roots allowed to omit
    /// `#![forbid(unsafe_code)]`). Empty by default: the whole workspace
    /// carries the header.
    pub h1_exempt: Vec<String>,
    /// P1 handler-exhaustiveness specs.
    pub p1_handlers: Vec<HandlerSpec>,
    /// P2 (hand-written quorum arithmetic) applies to these crates.
    pub p2_crates: Vec<String>,
    /// Path substrings exempt from P2 — the one place allowed to spell
    /// the arithmetic out is the central thresholds module itself.
    pub p2_exempt_paths: Vec<String>,
    /// P3 sans-io crates: no call chain from these may reach io/clock.
    pub p3_pure_crates: Vec<String>,
    /// P3 boundary crates: impure by contract; taint does not propagate
    /// outward through calls into them.
    pub p3_boundary_crates: Vec<String>,
    /// Crates whose `std::fs` use is contractual (result writers): the
    /// fs anchor class is skipped there, net/thread stay banned.
    pub p3_fs_exempt_crates: Vec<String>,
    /// Crate defining the trace-event enum (P4).
    pub p4_event_crate: String,
    /// The trace-event enum's name (P4).
    pub p4_event_enum: String,
    /// Path substrings of the files that *consume* trace events (P4):
    /// every variant must be referenced in at least one of them.
    pub p4_consumer_paths: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        LintConfig {
            // Crates whose iteration order can reach messages, traces,
            // or stats of a seeded simulation. The scenario layer compiles
            // specs into fault plans and actor placements, so its iteration
            // order reaches the trace too.
            d1_crates: v(&["core", "xpaxos", "pbft", "detector", "simnet", "scenario", "mmr"]),
            d2_exempt_crates: v(&["bench", "criterion"]),
            d3_exempt_crates: v(&["rand"]),
            // Crates that handle signed protocol messages.
            s1_crates: v(&["core", "xpaxos", "pbft", "detector"]),
            s1_max_caller_depth: 3,
            verify_prefixes: v(&["verify", "authenticate"]),
            s2_crates: v(&["core", "xpaxos", "pbft", "detector", "mmr"]),
            h1_exempt: Vec::new(),
            p1_handlers: vec![
                HandlerSpec {
                    enum_crate: "xpaxos".into(),
                    enum_name: "XpMsg".into(),
                    handler_crate: "xpaxos".into(),
                    handler_fn: "handle_message".into(),
                },
                HandlerSpec {
                    enum_crate: "pbft".into(),
                    enum_name: "PbftMsg".into(),
                    handler_crate: "pbft".into(),
                    handler_fn: "on_message".into(),
                },
            ],
            p2_crates: v(&["types", "core", "detector", "xpaxos", "pbft", "scenario"]),
            p2_exempt_paths: v(&["types/src/thresholds.rs"]),
            // Everything that feeds the deterministic simulation, plus
            // the experiment driver (`bench`), which may *measure* time
            // (D2-exempt) but must not open sockets or spawn threads.
            p3_pure_crates: v(&[
                "types", "core", "detector", "graph", "xpaxos", "pbft", "mmr", "obs", "simnet",
                "scenario", "adversary", "bench",
            ]),
            p3_boundary_crates: v(&["criterion"]),
            // The experiment driver's whole job is writing result files;
            // it still must not open sockets or spawn threads.
            p3_fs_exempt_crates: v(&["bench"]),
            p4_event_crate: "obs".into(),
            p4_event_enum: "TraceEvent".into(),
            p4_consumer_paths: v(&["crates/obs/src/replay.rs", "crates/obs/src/span.rs"]),
        }
    }
}

impl LintConfig {
    /// Whether D1 applies to `krate`.
    pub fn d1_applies(&self, krate: &str) -> bool {
        self.d1_crates.iter().any(|c| c == krate)
    }

    /// Whether D2 applies to `krate`.
    pub fn d2_applies(&self, krate: &str) -> bool {
        !self.d2_exempt_crates.iter().any(|c| c == krate)
    }

    /// Whether D3 applies to `krate`.
    pub fn d3_applies(&self, krate: &str) -> bool {
        !self.d3_exempt_crates.iter().any(|c| c == krate)
    }

    /// Whether S1 applies to `krate`.
    pub fn s1_applies(&self, krate: &str) -> bool {
        self.s1_crates.iter().any(|c| c == krate)
    }

    /// Whether S2 applies to `krate`.
    pub fn s2_applies(&self, krate: &str) -> bool {
        self.s2_crates.iter().any(|c| c == krate)
    }

    /// Whether `path` (workspace-relative, `/`-separated) is exempt from H1.
    pub fn h1_exempt(&self, path: &str) -> bool {
        self.h1_exempt.iter().any(|p| path.contains(p.as_str()))
    }

    /// Whether P2 applies to `krate`.
    pub fn p2_applies(&self, krate: &str) -> bool {
        self.p2_crates.iter().any(|c| c == krate)
    }

    /// Whether `path` is exempt from P2.
    pub fn p2_exempt(&self, path: &str) -> bool {
        self.p2_exempt_paths.iter().any(|p| path.contains(p.as_str()))
    }

    /// Whether `krate` must stay sans-io (P3).
    pub fn p3_pure(&self, krate: &str) -> bool {
        self.p3_pure_crates.iter().any(|c| c == krate)
    }

    /// Whether `krate` is a P3 taint boundary.
    pub fn p3_boundary(&self, krate: &str) -> bool {
        self.p3_boundary_crates.iter().any(|c| c == krate)
    }

    /// Whether `krate` may use `std::fs` (P3 fs-anchor exemption).
    pub fn p3_fs_exempt(&self, krate: &str) -> bool {
        self.p3_fs_exempt_crates.iter().any(|c| c == krate)
    }
}
