//! Workspace model: per-crate symbol table and interprocedural call graph.
//!
//! Resolution is name-based (the analyzer has no type information): a
//! call `foo(...)` / `x.foo(...)` / `path::foo(...)` resolves to every
//! non-test function named `foo` in the caller's crate, or — only if the
//! caller's crate defines none — in the crates it declares as
//! dependencies. That over-approximates (two unrelated methods named
//! `len` alias) but never misses an edge inside the workspace, which is
//! the direction the purity and verify-before-use proofs need.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::Tok;
use crate::parser::{FnItem, ParsedFile};

/// A call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name (last path segment before the `(`).
    pub name: String,
    /// Token index of the callee ident in the file's `code`.
    pub idx: usize,
}

/// A function in the workspace: its parsed item plus extracted call sites.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Index of the owning file in [`Workspace::files`].
    pub file: usize,
    /// The parsed item.
    pub item: FnItem,
    /// Owning crate (directory name, as in [`FileMeta::krate`]).
    ///
    /// [`FileMeta::krate`]: crate::lints::FileMeta::krate
    pub krate: String,
    /// Calls made from the body, in token order.
    pub calls: Vec<CallSite>,
}

/// The parsed workspace: files, functions, and the call graph.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All parsed files, in scan order.
    pub files: Vec<ParsedFile>,
    /// Crate dependency map: crate dir name → dep crate dir names.
    pub deps: BTreeMap<String, Vec<String>>,
    /// All functions, flattened across files.
    pub fns: Vec<FnDef>,
    /// Function name → indices into `fns`.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Resolved call edges: caller fn id → callee fn ids (deduped).
    edges: Vec<Vec<usize>>,
    /// Reverse edges: callee fn id → (caller fn id, call-site token idx).
    callers: Vec<Vec<(usize, usize)>>,
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "in", "loop", "return", "let", "fn", "move", "as",
    "break", "continue", "where", "impl", "dyn",
];

impl Workspace {
    /// Builds the model: extracts call sites, indexes functions by name,
    /// and resolves edges.
    pub fn build(files: Vec<ParsedFile>, deps: BTreeMap<String, Vec<String>>) -> Workspace {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for item in &file.fns {
                let calls = item
                    .body
                    .map(|(s, e)| extract_calls(file, s, e))
                    .unwrap_or_default();
                fns.push(FnDef {
                    file: fi,
                    item: item.clone(),
                    krate: file.meta.krate.clone(),
                    calls,
                });
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(f.item.name.clone()).or_default().push(id);
        }
        let mut ws = Workspace {
            files,
            deps,
            fns,
            by_name,
            edges: Vec::new(),
            callers: Vec::new(),
        };
        ws.edges = vec![Vec::new(); ws.fns.len()];
        ws.callers = vec![Vec::new(); ws.fns.len()];
        for caller in 0..ws.fns.len() {
            if ws.fns[caller].item.in_test {
                continue; // test code neither taints nor vouches
            }
            let mut seen = BTreeSet::new();
            let calls = ws.fns[caller].calls.clone();
            let krate = ws.fns[caller].krate.clone();
            for call in calls {
                for callee in ws.resolve(&call.name, &krate) {
                    ws.callers[callee].push((caller, call.idx));
                    if seen.insert(callee) {
                        ws.edges[caller].push(callee);
                    }
                }
            }
        }
        ws
    }

    /// Resolves a callee name from `from_crate`: same-crate candidates
    /// win; otherwise candidates in declared dependency crates. Test
    /// functions are never candidates.
    pub fn resolve(&self, name: &str, from_crate: &str) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        let live = |id: &&usize| !self.fns[**id].item.in_test;
        let same: Vec<usize> = cands
            .iter()
            .filter(live)
            .filter(|id| self.fns[**id].krate == from_crate)
            .copied()
            .collect();
        if !same.is_empty() {
            return same;
        }
        let empty = Vec::new();
        let deps = self.deps.get(from_crate).unwrap_or(&empty);
        cands
            .iter()
            .filter(live)
            .filter(|id| deps.iter().any(|d| *d == self.fns[**id].krate))
            .copied()
            .collect()
    }

    /// All non-test functions named `name` in crate `krate`.
    pub fn fns_named(&self, krate: &str, name: &str) -> Vec<usize> {
        self.by_name
            .get(name)
            .map(|ids| {
                ids.iter()
                    .filter(|id| self.fns[**id].krate == krate && !self.fns[**id].item.in_test)
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Forward reachability over resolved call edges from `starts`
    /// (inclusive).
    pub fn reachable(&self, starts: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = starts.iter().copied().collect();
        let mut frontier: Vec<usize> = starts.to_vec();
        while let Some(id) = frontier.pop() {
            for &next in &self.edges[id] {
                if seen.insert(next) {
                    frontier.push(next);
                }
            }
        }
        seen
    }

    /// Direct callees of `id`.
    pub fn callees(&self, id: usize) -> &[usize] {
        &self.edges[id]
    }

    /// Call sites targeting `id`: `(caller fn id, token idx of the call
    /// in the caller file's code)`.
    pub fn call_sites_of(&self, id: usize) -> &[(usize, usize)] {
        &self.callers[id]
    }

    /// The file owning function `id`.
    pub fn file_of(&self, id: usize) -> &ParsedFile {
        &self.files[self.fns[id].file]
    }
}

/// Extracts call sites from the body token range `[start, end)` of
/// `file`. A call is `ident (` where the ident is not a keyword and not
/// a macro invocation (`ident !`), and not the name in a nested `fn`
/// definition.
fn extract_calls(file: &ParsedFile, start: usize, end: usize) -> Vec<CallSite> {
    let code = &file.code;
    let mut out = Vec::new();
    for i in start..end.min(code.len()) {
        let Tok::Ident(name) = &code[i].tok else {
            continue;
        };
        if code.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        if i > 0 && matches!(&code[i - 1].tok, Tok::Ident(k) if k == "fn") {
            continue; // nested definition, not a call
        }
        out.push(CallSite {
            name: name.clone(),
            idx: i,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::FileMeta;

    fn file(krate: &str, name: &str, src: &str) -> ParsedFile {
        ParsedFile::parse(
            src,
            &FileMeta {
                path: format!("crates/{krate}/src/{name}.rs"),
                krate: krate.to_string(),
                is_crate_root: false,
            },
        )
    }

    #[test]
    fn resolves_same_crate_before_deps() {
        let files = vec![
            file("a", "x", "fn top() { helper(); }\nfn helper() {}"),
            file("b", "y", "fn helper() {}"),
        ];
        let deps = BTreeMap::from([("a".to_string(), vec!["b".to_string()])]);
        let ws = Workspace::build(files, deps);
        let top = ws.fns_named("a", "top")[0];
        assert_eq!(ws.callees(top).len(), 1);
        assert_eq!(ws.fns[ws.callees(top)[0]].krate, "a");
    }

    #[test]
    fn cross_crate_edges_follow_declared_deps_only() {
        let files = vec![
            file("a", "x", "fn top() { remote(); }"),
            file("b", "y", "fn remote() {}"),
            file("c", "z", "fn remote() {}"),
        ];
        let deps = BTreeMap::from([("a".to_string(), vec!["b".to_string()])]);
        let ws = Workspace::build(files, deps);
        let top = ws.fns_named("a", "top")[0];
        let callees = ws.callees(top);
        assert_eq!(callees.len(), 1);
        assert_eq!(ws.fns[callees[0]].krate, "b");
    }

    #[test]
    fn reachability_is_transitive() {
        let files = vec![file(
            "a",
            "x",
            "fn one() { two(); }\nfn two() { three(); }\nfn three() {}\nfn island() {}",
        )];
        let ws = Workspace::build(files, BTreeMap::new());
        let one = ws.fns_named("a", "one")[0];
        let reach = ws.reachable(&[one]);
        assert_eq!(reach.len(), 3);
        let island = ws.fns_named("a", "island")[0];
        assert!(!reach.contains(&island));
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let files = vec![file(
            "a",
            "x",
            "fn top() { if (1 > 0) { println!(\"x\"); } match (1) { _ => {} } }",
        )];
        let ws = Workspace::build(files, BTreeMap::new());
        let top = ws.fns_named("a", "top")[0];
        assert!(ws.fns[top].calls.is_empty());
    }

    #[test]
    fn test_fns_are_invisible_to_resolution() {
        let files = vec![file(
            "a",
            "x",
            "fn top() { helper(); }\n#[cfg(test)]\nmod t { fn helper() {} }",
        )];
        let ws = Workspace::build(files, BTreeMap::new());
        let top = ws.fns_named("a", "top")[0];
        assert!(ws.callees(top).is_empty());
    }
}
