//! The per-file, token-level lints (D1–D3, S2, H1).
//!
//! These need no cross-file knowledge and run on each [`ParsedFile`]
//! independently. The dataflow and whole-workspace passes (S1, P1–P4)
//! live in [`crate::passes`]; the escape hatch
//! `// lint: allow(ID, reason)` — on the finding's line or the line
//! directly above it — records the audit for every intentional
//! exception and is applied by the driver in `lib.rs`.

use crate::config::LintConfig;
use crate::lexer::{Tok, Token};
use crate::parser::ParsedFile;
use crate::report::Finding;

/// Where a source file sits in the workspace.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Workspace-relative path, `/`-separated (reported verbatim).
    pub path: String,
    /// Owning crate (directory name under `crates/`, `qsel-repro` for
    /// the root package, `examples` for example binaries).
    pub krate: String,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`, a
    /// `src/bin/` binary, or an example) — the H1 targets.
    pub is_crate_root: bool,
}

/// Runs the per-file lints on one parsed file.
pub fn per_file_lints(file: &ParsedFile, cfg: &LintConfig, findings: &mut Vec<Finding>) {
    let meta = &file.meta;
    if cfg.d1_applies(&meta.krate) {
        lint_d1(file, findings);
    }
    if cfg.d2_applies(&meta.krate) {
        lint_ident_ban(
            file,
            "D2",
            &["Instant", "SystemTime"],
            "wall-clock time in deterministic code; sim crates must use `SimTime`",
            findings,
        );
    }
    if cfg.d3_applies(&meta.krate) {
        lint_ident_ban(
            file,
            "D3",
            &["thread_rng", "from_entropy", "OsRng"],
            "ambient randomness; all randomness must flow from a seeded generator",
            findings,
        );
    }
    if cfg.s2_applies(&meta.krate) {
        lint_s2(file, findings);
    }
    if meta.is_crate_root && !cfg.h1_exempt(&meta.path) {
        lint_h1(file, findings);
    }
}

pub(crate) fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn punct_at(code: &[Token], i: usize, c: char) -> bool {
    code.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c))
}

// ----------------------------------------------------------------------
// D1 — nondeterministic iteration sources
// ----------------------------------------------------------------------

/// Flags `HashMap`/`HashSet` in determinism-sensitive crates. Plain
/// `use` imports are not flagged — the type must actually appear in a
/// declaration or expression to matter. Lookup-only maps that are never
/// iterated are legitimate; annotate them with
/// `// lint: allow(D1, lookup-only: ...)`.
fn lint_d1(file: &ParsedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let meta = &file.meta;
    let mut in_use = false;
    let mut last_line = 0u32;
    for (i, t) in code.iter().enumerate() {
        match &t.tok {
            Tok::Ident(s) if s == "use" => in_use = true,
            Tok::Punct(';') if in_use => in_use = false,
            Tok::Ident(s) if (s == "HashMap" || s == "HashSet") && !in_use => {
                if file.in_test(i) || t.line == last_line {
                    continue;
                }
                last_line = t.line;
                findings.push(Finding {
                    lint: "D1",
                    file: meta.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{s}` in determinism-sensitive crate `{}`: iteration order can \
                         leak into messages, traces, or stats — use `BTreeMap`/`BTreeSet` \
                         or sort before order-sensitive use",
                        meta.krate
                    ),
                    suppressed: None,
                });
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// D2 / D3 — banned identifiers
// ----------------------------------------------------------------------

fn lint_ident_ban(
    file: &ParsedFile,
    lint: &'static str,
    banned: &[&str],
    why: &str,
    findings: &mut Vec<Finding>,
) {
    let mut last_line = 0u32;
    for (i, t) in file.code.iter().enumerate() {
        let Tok::Ident(s) = &t.tok else { continue };
        if !banned.contains(&s.as_str()) || file.in_test(i) || t.line == last_line {
            continue;
        }
        last_line = t.line;
        findings.push(Finding {
            lint,
            file: file.meta.path.clone(),
            line: t.line,
            message: format!("`{s}`: {why}"),
            suppressed: None,
        });
    }
}

// ----------------------------------------------------------------------
// S2 — panics in protocol code
// ----------------------------------------------------------------------

/// Flags `.unwrap()`, single-argument `.expect("...")`, and the panic
/// macro family outside test code. The argument count matters: the
/// failure detector's `expect(now, peer, tag, matcher)` API is a
/// four-argument method and is *not* `Option::expect`.
fn lint_s2(file: &ParsedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let meta = &file.meta;
    let push = |line: u32, what: &str, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            lint: "S2",
            file: meta.path.clone(),
            line,
            message: format!(
                "`{what}` in protocol crate `{}`: return a typed error or justify with \
                 `// lint: allow(S2, ...)`",
                meta.krate
            ),
            suppressed: None,
        });
    };
    for i in 0..code.len() {
        if file.in_test(i) {
            continue;
        }
        match ident_at(code, i) {
            Some("unwrap")
                if punct_at(code, i.wrapping_sub(1), '.')
                    && punct_at(code, i + 1, '(')
                    && punct_at(code, i + 2, ')') =>
            {
                push(code[i].line, "unwrap()", findings);
            }
            Some("expect") if punct_at(code, i.wrapping_sub(1), '.') && punct_at(code, i + 1, '(')
                && call_arg_count(code, i + 1) == Some(1) => {
                    push(code[i].line, "expect(_)", findings);
                }
            Some(m @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if punct_at(code, i + 1, '!') =>
            {
                push(code[i].line, &format!("{m}!"), findings);
            }
            _ => {}
        }
    }
}

/// Number of top-level arguments of the call whose `(` is at `lp`.
fn call_arg_count(code: &[Token], lp: usize) -> Option<usize> {
    let rp = crate::parser::matching_close(code, lp, '(', ')')?;
    if rp == lp + 1 {
        return Some(0);
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    for t in &code[lp + 1..rp] {
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 0 => commas += 1,
            _ => {}
        }
    }
    Some(commas + 1)
}

// ----------------------------------------------------------------------
// H1 — unsafe header
// ----------------------------------------------------------------------

/// Every crate root must carry `#![forbid(unsafe_code)]`.
fn lint_h1(file: &ParsedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let has = (0..code.len()).any(|i| {
        ident_at(code, i) == Some("forbid")
            && punct_at(code, i + 1, '(')
            && ident_at(code, i + 2) == Some("unsafe_code")
    });
    if !has {
        findings.push(Finding {
            lint: "H1",
            file: file.meta.path.clone(),
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            suppressed: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    fn meta(krate: &str, root: bool) -> FileMeta {
        FileMeta {
            path: format!("crates/{krate}/src/x.rs"),
            krate: krate.to_string(),
            is_crate_root: root,
        }
    }

    fn run(src: &str, krate: &str) -> Vec<Finding> {
        lint_source(src, &meta(krate, false), &LintConfig::default())
    }

    #[test]
    fn d1_ignores_use_lines_and_tests() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u8, u8> }\n\
                   #[cfg(test)]\nmod tests { fn f() { let _m: HashMap<u8,u8> = HashMap::new(); } }";
        let f = run(src, "xpaxos");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].lint, f[0].line), ("D1", 2));
    }

    #[test]
    fn s2_distinguishes_fd_expect_from_option_expect() {
        let src = "fn g() { fd.expect(now, k, \"tag\", |m| true); o.expect(\"boom\"); }";
        let f = run(src, "xpaxos");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("expect(_)"));
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let src = "// lint: allow(S2, justified)\nfn g() { panic!(\"x\") }";
        let f = run(src, "xpaxos");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].suppressed.as_deref(), Some("justified"));
    }

    #[test]
    fn s1_requires_verify_before_payload() {
        let bad = "fn g(m: SignedVote) { let _ = m.payload.x; }";
        let good =
            "fn g(m: SignedVote) { if verifier.verify(&m).is_err() { return } let _ = m.payload.x; }";
        assert_eq!(run(bad, "core").len(), 1);
        assert_eq!(run(good, "core").len(), 0);
    }

    #[test]
    fn h1_checks_crate_roots_only() {
        let cfg = LintConfig::default();
        let f = lint_source("fn main() {}", &meta("types", true), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "H1");
        let f = lint_source(
            "#![forbid(unsafe_code)]\nfn main() {}",
            &meta("types", true),
            &cfg,
        );
        assert!(f.is_empty());
    }
}
