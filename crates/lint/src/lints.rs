//! The six lint passes.
//!
//! Everything here is token-level (see DESIGN.md §11 for why that is
//! enough offline): the passes over-approximate and the named escape
//! hatch `// lint: allow(ID, reason)` — on the finding's line or the
//! line directly above it — records the audit for every intentional
//! exception.

use crate::config::LintConfig;
use crate::lexer::{lex, Tok, Token};
use crate::report::Finding;

/// Where a source file sits in the workspace.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Workspace-relative path, `/`-separated (reported verbatim).
    pub path: String,
    /// Owning crate (directory name under `crates/`, `qsel-repro` for
    /// the root package, `examples` for example binaries).
    pub krate: String,
    /// Whether this file is a crate root (`lib.rs`, `main.rs`, a
    /// `src/bin/` binary, or an example) — the H1 targets.
    pub is_crate_root: bool,
}

/// Lints one source file.
pub fn lint_file(src: &str, meta: &FileMeta, cfg: &LintConfig) -> Vec<Finding> {
    let toks = lex(src);
    let suppressions = collect_suppressions(&toks);
    // Code view: comments stripped, order preserved.
    let code: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.tok, Tok::Comment(_)))
        .collect();
    let test_mask = test_regions(&code);

    let mut findings = Vec::new();
    if cfg.d1_applies(&meta.krate) {
        lint_d1(&code, &test_mask, meta, &mut findings);
    }
    if cfg.d2_applies(&meta.krate) {
        lint_ident_ban(
            &code,
            &test_mask,
            meta,
            "D2",
            &["Instant", "SystemTime"],
            "wall-clock time in deterministic code; sim crates must use `SimTime`",
            &mut findings,
        );
    }
    if cfg.d3_applies(&meta.krate) {
        lint_ident_ban(
            &code,
            &test_mask,
            meta,
            "D3",
            &["thread_rng", "from_entropy", "OsRng"],
            "ambient randomness; all randomness must flow from a seeded generator",
            &mut findings,
        );
    }
    if cfg.s1_applies(&meta.krate) {
        lint_s1(&code, &test_mask, meta, &mut findings);
    }
    if cfg.s2_applies(&meta.krate) {
        lint_s2(&code, &test_mask, meta, &mut findings);
    }
    if meta.is_crate_root && !cfg.h1_exempt(&meta.path) {
        lint_h1(&code, meta, &mut findings);
    }

    // Apply suppressions: an allow annotation covers its own line and
    // the line below it (trailing comment or a comment directly above).
    for f in &mut findings {
        if let Some(reason) = suppressions
            .iter()
            .find(|s| s.lint == f.lint && (s.line == f.line || s.line + 1 == f.line))
        {
            f.suppressed = Some(reason.reason.clone());
        }
    }
    findings
}

struct Suppression {
    lint: String,
    line: u32,
    reason: String,
}

/// Parses `lint: allow(ID, reason)` annotations out of comments. The
/// reason is mandatory in spirit (it is what makes the escape hatch an
/// audit trail); an omitted reason is recorded as `"(no reason given)"`.
fn collect_suppressions(toks: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        let Tok::Comment(text) = &t.tok else { continue };
        let mut rest = text.as_str();
        while let Some(at) = rest.find("lint:") {
            rest = &rest[at + 5..];
            let Some(ap) = rest.find("allow(") else { break };
            rest = &rest[ap + 6..];
            let end = rest.find(')').unwrap_or(rest.len());
            let inner = &rest[..end];
            rest = &rest[end..];
            let (id, reason) = match inner.split_once(',') {
                Some((id, r)) => (id.trim(), r.trim()),
                None => (inner.trim(), ""),
            };
            if id.is_empty() {
                continue;
            }
            out.push(Suppression {
                lint: id.to_string(),
                line: t.line,
                reason: if reason.is_empty() {
                    "(no reason given)".to_string()
                } else {
                    reason.to_string()
                },
            });
        }
    }
    out
}

/// Token-index ranges (over the comment-stripped stream) covered by
/// `#[cfg(test)]` or `#[test]` items. Test code is exempt from every
/// lint except H1.
fn test_regions(code: &[&Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !is_test_attr(code, i) {
            i += 1;
            continue;
        }
        // Skip this attribute and any further attributes.
        let mut j = skip_attr(code, i);
        while j < code.len() && code[j].tok == Tok::Punct('#') {
            j = skip_attr(code, j);
        }
        // The annotated item runs to its closing brace (or `;` for
        // brace-less items like `#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut entered = false;
        while j < code.len() {
            match code[j].tok {
                Tok::Punct('{') => {
                    depth += 1;
                    entered = true;
                }
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        j += 1;
                        break;
                    }
                }
                Tok::Punct(';') if !entered => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((i, j));
        i = j;
    }
    regions
}

/// Whether the attribute starting at `i` is `#[test]`, `#[cfg(test)]`,
/// or `#[cfg(all(test, ...))]`-shaped (any cfg mentioning `test`).
fn is_test_attr(code: &[&Token], i: usize) -> bool {
    if code.get(i).map(|t| &t.tok) != Some(&Tok::Punct('#')) {
        return false;
    }
    if code.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
        return false;
    }
    match code.get(i + 2).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if s == "test" => true,
        Some(Tok::Ident(s)) if s == "cfg" => {
            // Scan the attribute tokens for a `test` ident.
            let end = skip_attr(code, i);
            code[i..end]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "test"))
        }
        _ => false,
    }
}

/// Returns the index one past the `]` closing the attribute at `i`
/// (which must point at `#`).
fn skip_attr(code: &[&Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < code.len() {
        match code[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn in_test(mask: &[(usize, usize)], idx: usize) -> bool {
    mask.iter().any(|(a, b)| idx >= *a && idx < *b)
}

fn ident_at<'a>(code: &'a [&Token], i: usize) -> Option<&'a str> {
    match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(code: &[&Token], i: usize, c: char) -> bool {
    code.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c))
}

// ----------------------------------------------------------------------
// D1 — nondeterministic iteration sources
// ----------------------------------------------------------------------

/// Flags `HashMap`/`HashSet` in determinism-sensitive crates. Plain
/// `use` imports are not flagged — the type must actually appear in a
/// declaration or expression to matter. Lookup-only maps that are never
/// iterated are legitimate; annotate them with
/// `// lint: allow(D1, lookup-only: ...)`.
fn lint_d1(
    code: &[&Token],
    mask: &[(usize, usize)],
    meta: &FileMeta,
    findings: &mut Vec<Finding>,
) {
    let mut in_use = false;
    let mut last_line = 0u32;
    for (i, t) in code.iter().enumerate() {
        match &t.tok {
            Tok::Ident(s) if s == "use" => in_use = true,
            Tok::Punct(';') if in_use => in_use = false,
            Tok::Ident(s) if (s == "HashMap" || s == "HashSet") && !in_use => {
                if in_test(mask, i) || t.line == last_line {
                    continue;
                }
                last_line = t.line;
                findings.push(Finding {
                    lint: "D1",
                    file: meta.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{s}` in determinism-sensitive crate `{}`: iteration order can \
                         leak into messages, traces, or stats — use `BTreeMap`/`BTreeSet` \
                         or sort before order-sensitive use",
                        meta.krate
                    ),
                    suppressed: None,
                });
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// D2 / D3 — banned identifiers
// ----------------------------------------------------------------------

fn lint_ident_ban(
    code: &[&Token],
    mask: &[(usize, usize)],
    meta: &FileMeta,
    lint: &'static str,
    banned: &[&str],
    why: &str,
    findings: &mut Vec<Finding>,
) {
    let mut last_line = 0u32;
    for (i, t) in code.iter().enumerate() {
        let Tok::Ident(s) = &t.tok else { continue };
        if !banned.contains(&s.as_str()) || in_test(mask, i) || t.line == last_line {
            continue;
        }
        last_line = t.line;
        findings.push(Finding {
            lint,
            file: meta.path.clone(),
            line: t.line,
            message: format!("`{s}`: {why}"),
            suppressed: None,
        });
    }
}

// ----------------------------------------------------------------------
// S1 — verify before use
// ----------------------------------------------------------------------

/// For every `fn` taking a parameter whose type mentions a `Signed*`
/// message, the body must contain a `verify*` call before the first
/// read of that parameter's `.payload`. Functions trusting a caller's
/// verification document it with `// lint: allow(S1, ...)` — that
/// annotation trail *is* the crate's trust-boundary map.
fn lint_s1(
    code: &[&Token],
    mask: &[(usize, usize)],
    meta: &FileMeta,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < code.len() {
        if ident_at(code, i) != Some("fn") || in_test(mask, i) {
            i += 1;
            continue;
        }
        let fn_line = code[i].line;
        let Some(fn_name) = ident_at(code, i + 1) else {
            i += 1;
            continue;
        };
        // Find the parameter list.
        let Some(lp) = (i + 2..code.len()).find(|&j| punct_at(code, j, '(')) else {
            i += 1;
            continue;
        };
        let Some(rp) = matching_close(code, lp, '(', ')') else {
            i += 1;
            continue;
        };
        let signed_params = signed_param_names(&code[lp + 1..rp]);
        // Find the body (or `;` for trait-method declarations).
        let mut j = rp + 1;
        let mut body: Option<(usize, usize)> = None;
        while j < code.len() {
            match code[j].tok {
                Tok::Punct(';') => break,
                Tok::Punct('{') => {
                    if let Some(close) = matching_close(code, j, '{', '}') {
                        body = Some((j + 1, close));
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        let next_scan = body.map(|(s, _)| s).unwrap_or(j + 1);
        if let Some((bs, be)) = body {
            for pname in &signed_params {
                if let Some(acc) = first_payload_access(&code[bs..be], pname) {
                    let verified = code[bs..bs + acc]
                        .iter()
                        .any(|t| matches!(&t.tok, Tok::Ident(s) if s.starts_with("verify")));
                    if !verified {
                        findings.push(Finding {
                            lint: "S1",
                            file: meta.path.clone(),
                            line: fn_line,
                            message: format!(
                                "fn `{fn_name}` reads `{pname}.payload` without a prior \
                                 `verify` call — signed payloads must be verified before use \
                                 (σ_l assumption, PAPER.md §II)"
                            ),
                            suppressed: None,
                        });
                    }
                }
            }
        }
        i = next_scan;
    }
}

/// Names of parameters whose type tokens mention an ident starting with
/// `Signed`, given the token slice between the parens of a `fn`.
fn signed_param_names(params: &[&Token]) -> Vec<String> {
    let mut out = Vec::new();
    // Split at top-level commas, tracking (), [], {}, and <> depth.
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut groups: Vec<(usize, usize)> = Vec::new();
    for (k, t) in params.iter().enumerate() {
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') | Tok::Punct('<') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct('>') => {
                // `->` and `=>` are not closing angles.
                let arrow = k > 0
                    && matches!(params[k - 1].tok, Tok::Punct('-') | Tok::Punct('='));
                if !arrow {
                    depth -= 1;
                }
            }
            Tok::Punct(',') if depth == 0 => {
                groups.push((start, k));
                start = k + 1;
            }
            _ => {}
        }
    }
    groups.push((start, params.len()));
    for (a, b) in groups {
        let slice = &params[a..b];
        let Some(colon) = slice.iter().position(|t| t.tok == Tok::Punct(':')) else {
            continue; // `self`, `&mut self`, ...
        };
        let ty_signed = slice[colon + 1..]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s.starts_with("Signed")));
        if !ty_signed {
            continue;
        }
        // The binding name: last ident before the colon (skips `mut`, `&`).
        if let Some(name) = slice[..colon].iter().rev().find_map(|t| match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        }) {
            out.push(name);
        }
    }
    out
}

/// Index (within `body`) of the first `name . payload` sequence.
fn first_payload_access(body: &[&Token], name: &str) -> Option<usize> {
    (0..body.len().saturating_sub(2)).find(|&k| {
        matches!(&body[k].tok, Tok::Ident(s) if s == name)
            && body[k + 1].tok == Tok::Punct('.')
            && matches!(&body[k + 2].tok, Tok::Ident(s) if s == "payload")
    })
}

/// Index of the token closing the group opened at `open_idx`.
fn matching_close(code: &[&Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open_idx) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ----------------------------------------------------------------------
// S2 — panics in protocol code
// ----------------------------------------------------------------------

/// Flags `.unwrap()`, single-argument `.expect("...")`, and the panic
/// macro family outside test code. The argument count matters: the
/// failure detector's `expect(now, peer, tag, matcher)` API is a
/// four-argument method and is *not* `Option::expect`.
fn lint_s2(
    code: &[&Token],
    mask: &[(usize, usize)],
    meta: &FileMeta,
    findings: &mut Vec<Finding>,
) {
    let push = |line: u32, what: &str, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            lint: "S2",
            file: meta.path.clone(),
            line,
            message: format!(
                "`{what}` in protocol crate `{}`: return a typed error or justify with \
                 `// lint: allow(S2, ...)`",
                meta.krate
            ),
            suppressed: None,
        });
    };
    for i in 0..code.len() {
        if in_test(mask, i) {
            continue;
        }
        match ident_at(code, i) {
            Some("unwrap")
                if punct_at(code, i.wrapping_sub(1), '.')
                    && punct_at(code, i + 1, '(')
                    && punct_at(code, i + 2, ')') =>
            {
                push(code[i].line, "unwrap()", findings);
            }
            Some("expect") if punct_at(code, i.wrapping_sub(1), '.') && punct_at(code, i + 1, '(')
                && call_arg_count(code, i + 1) == Some(1) => {
                    push(code[i].line, "expect(_)", findings);
                }
            Some(m @ ("panic" | "unreachable" | "todo" | "unimplemented"))
                if punct_at(code, i + 1, '!') =>
            {
                push(code[i].line, &format!("{m}!"), findings);
            }
            _ => {}
        }
    }
}

/// Number of top-level arguments of the call whose `(` is at `lp`.
fn call_arg_count(code: &[&Token], lp: usize) -> Option<usize> {
    let rp = matching_close(code, lp, '(', ')')?;
    if rp == lp + 1 {
        return Some(0);
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    for t in &code[lp + 1..rp] {
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(',') if depth == 0 => commas += 1,
            _ => {}
        }
    }
    Some(commas + 1)
}

// ----------------------------------------------------------------------
// H1 — unsafe header
// ----------------------------------------------------------------------

/// Every crate root must carry `#![forbid(unsafe_code)]`.
fn lint_h1(code: &[&Token], meta: &FileMeta, findings: &mut Vec<Finding>) {
    let has = (0..code.len()).any(|i| {
        ident_at(code, i) == Some("forbid")
            && punct_at(code, i + 1, '(')
            && ident_at(code, i + 2) == Some("unsafe_code")
    });
    if !has {
        findings.push(Finding {
            lint: "H1",
            file: meta.path.clone(),
            line: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            suppressed: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(krate: &str, root: bool) -> FileMeta {
        FileMeta {
            path: format!("crates/{krate}/src/x.rs"),
            krate: krate.to_string(),
            is_crate_root: root,
        }
    }

    fn run(src: &str, krate: &str) -> Vec<Finding> {
        lint_file(src, &meta(krate, false), &LintConfig::default())
    }

    #[test]
    fn d1_ignores_use_lines_and_tests() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u8, u8> }\n\
                   #[cfg(test)]\nmod tests { fn f() { let _m: HashMap<u8,u8> = HashMap::new(); } }";
        let f = run(src, "xpaxos");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].lint, f[0].line), ("D1", 2));
    }

    #[test]
    fn s2_distinguishes_fd_expect_from_option_expect() {
        let src = "fn f() { fd.expect(now, k, \"tag\", |m| true); o.expect(\"boom\"); }";
        let f = run(src, "xpaxos");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("expect(_)"));
    }

    #[test]
    fn suppression_covers_own_and_next_line() {
        let src = "// lint: allow(S2, justified)\nfn f() { panic!(\"x\") }";
        let f = run(src, "xpaxos");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].suppressed.as_deref(), Some("justified"));
    }

    #[test]
    fn s1_requires_verify_before_payload() {
        let bad = "fn f(m: SignedVote) { let _ = m.payload.x; }";
        let good = "fn f(m: SignedVote) { if verifier.verify(&m).is_err() { return } let _ = m.payload.x; }";
        assert_eq!(run(bad, "core").len(), 1);
        assert_eq!(run(good, "core").len(), 0);
    }

    #[test]
    fn h1_checks_crate_roots_only() {
        let cfg = LintConfig::default();
        let f = lint_file("fn main() {}", &meta("types", true), &cfg);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "H1");
        let f = lint_file(
            "#![forbid(unsafe_code)]\nfn main() {}",
            &meta("types", true),
            &cfg,
        );
        assert!(f.is_empty());
    }
}
