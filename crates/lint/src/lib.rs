#![forbid(unsafe_code)]
//! `qsel-lint` — workspace static analysis for determinism and
//! protocol-safety invariants.
//!
//! The repo's correctness story rests on byte-identical seeded traces
//! (golden traces, chaos soak, replay bound-checking); this crate is
//! what *enforces* the properties those tests only sample. Six lints,
//! each token-level and suppressible in place:
//!
//! | id | name | invariant |
//! |----|------|-----------|
//! | D1 | nondeterministic-iteration | no `HashMap`/`HashSet` in crates whose iteration order can reach messages, traces, or stats |
//! | D2 | wall-clock | no `std::time::{Instant, SystemTime}` outside `bench`/`criterion` |
//! | D3 | ambient-rng | no `thread_rng`/`from_entropy`/`OsRng`; randomness flows from seeded generators |
//! | S1 | verify-before-use | a fn taking a `Signed*` message verifies it before reading `.payload` |
//! | S2 | panic-in-protocol | no `unwrap()`/`expect(_)`/`panic!` family in protocol crates outside tests |
//! | H1 | unsafe-header | every crate root carries `#![forbid(unsafe_code)]` |
//!
//! Escape hatch: `// lint: allow(ID, reason)` on the finding's line or
//! the line directly above. Suppressed findings still appear in
//! `lint_report.json` (with their reasons) — the annotation trail is an
//! audit log, not a mute button.
//!
//! Run with `cargo run -p qsel-lint`; exits non-zero on any
//! unsuppressed finding.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod report;

use std::fs;
use std::path::{Path, PathBuf};

pub use config::LintConfig;
pub use lints::{lint_file, FileMeta};
pub use report::{Finding, Report};

/// Lints every workspace source file under `root` with `cfg`.
///
/// Scanned: `crates/*/src/**/*.rs` (including `src/bin/`), the root
/// package's `src/**/*.rs`, and `examples/*.rs`. Integration-test
/// directories (`tests/`) are not scanned — every lint except H1
/// already exempts test code, and fixtures under
/// `crates/lint/tests/fixtures/` contain deliberate violations.
pub fn run(root: &Path, cfg: &LintConfig) -> std::io::Result<Report> {
    let mut files: Vec<(PathBuf, FileMeta)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut |p| {
                    files.push((p.to_path_buf(), file_meta(root, p)));
                })?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut |p| {
            files.push((p.to_path_buf(), file_meta(root, p)));
        })?;
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        collect_rs(&examples, &mut |p| {
            files.push((p.to_path_buf(), file_meta(root, p)));
        })?;
    }
    lint_paths(&files, cfg)
}

/// Lints an explicit file set (the fixture tests use this directly).
pub fn lint_paths(files: &[(PathBuf, FileMeta)], cfg: &LintConfig) -> std::io::Result<Report> {
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: files.len(),
    };
    for (path, meta) in files {
        let src = fs::read_to_string(path)?;
        report.findings.extend(lint_file(&src, meta, cfg));
    }
    report.sort();
    Ok(report)
}

/// Computes the [`FileMeta`] for `path` relative to the workspace root.
pub fn file_meta(root: &Path, path: &Path) -> FileMeta {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_str = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let parts: Vec<&str> = rel_str.split('/').collect();
    let krate = match parts.first() {
        Some(&"crates") => parts.get(1).unwrap_or(&"").to_string(),
        Some(&"examples") => "examples".to_string(),
        _ => "qsel-repro".to_string(),
    };
    let is_crate_root = rel_str.ends_with("src/lib.rs")
        || rel_str.ends_with("src/main.rs")
        || rel_str.contains("/src/bin/")
        || parts.first() == Some(&"examples");
    FileMeta {
        path: rel_str,
        krate,
        is_crate_root,
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic report order.
fn collect_rs(dir: &Path, f: &mut impl FnMut(&Path)) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, f)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            f(&p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_meta_classifies_paths() {
        let root = Path::new("/ws");
        let m = file_meta(root, Path::new("/ws/crates/xpaxos/src/log.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("xpaxos", false));
        let m = file_meta(root, Path::new("/ws/crates/bench/src/bin/exp_thm3.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("bench", true));
        let m = file_meta(root, Path::new("/ws/examples/trace_run.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("examples", true));
        let m = file_meta(root, Path::new("/ws/src/lib.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("qsel-repro", true));
    }
}
