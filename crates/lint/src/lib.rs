#![forbid(unsafe_code)]
//! `qsel-lint` — protocol-aware static analysis for determinism and
//! protocol-safety invariants.
//!
//! The repo's correctness story rests on byte-identical seeded traces
//! (golden traces, chaos soak, replay bound-checking); this crate is
//! what *enforces* the properties those tests only sample. The analyzer
//! is dependency-free (no `syn` — the workspace is offline): a hand
//! rolled lexer feeds an item-level parser, a per-crate symbol table,
//! and a name-resolved interprocedural call graph, over which the
//! passes run.
//!
//! | id | name | invariant |
//! |----|------|-----------|
//! | D1 | nondeterministic-iteration | no `HashMap`/`HashSet` in crates whose iteration order can reach messages, traces, or stats |
//! | D2 | wall-clock | no `std::time::{Instant, SystemTime}` outside `bench`/`criterion` |
//! | D3 | ambient-rng | no `thread_rng`/`from_entropy`/`OsRng`; randomness flows from seeded generators |
//! | S1 | verify-before-use | a fn reading a `Signed*` payload is dominated by a verify-family call — in its own body or in every caller (interprocedural, depth-bounded) |
//! | S2 | panic-in-protocol | no `unwrap()`/`expect(_)`/`panic!` family in protocol crates outside tests |
//! | H1 | unsafe-header | every crate root carries `#![forbid(unsafe_code)]` |
//! | P1 | handler-exhaustiveness | every wire-enum variant (`XpMsg`, `PbftMsg`) is named in code reachable from its message handler |
//! | P2 | quorum-arithmetic | no hand-written `f + 1` / `2*f` / `n - f` threshold math outside `qsel_types::thresholds` |
//! | P3 | sans-io-purity | no call chain from a pure protocol crate reaches `std::net`/`std::thread`/`std::fs` or wall-clock types |
//! | P4 | trace-coverage | every `TraceEvent` variant is emitted outside its crate and consumed by the replay/span tooling |
//! | A1 | stale-allow | every `// lint: allow(...)` annotation matches a live finding |
//!
//! Escape hatch: `// lint: allow(ID, reason)` on the finding's line or
//! the line directly above. Suppressed findings still appear in
//! `lint_report.json` (with their reasons) — the annotation trail is an
//! audit log, not a mute button. A1 closes the loop: an allow that no
//! longer matches anything is itself a finding, and is not suppressible.
//!
//! Run with `cargo run -p qsel-lint`; exits non-zero on any unsuppressed
//! finding. In CI, `--baseline lint_baseline.json` compares against a
//! committed baseline of known findings (keyed by stable IDs that
//! survive line shifts) and fails only on *new* ones.

pub mod baseline;
pub mod config;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod parser;
pub mod passes;
pub mod report;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub use config::LintConfig;
pub use lints::FileMeta;
pub use model::Workspace;
pub use parser::ParsedFile;
pub use report::{Finding, Report};

/// Lints every workspace source file under `root` with `cfg`, resolving
/// the crate dependency graph from the Cargo manifests.
///
/// Scanned: `crates/*/src/**/*.rs` (including `src/bin/`), the root
/// package's `src/**/*.rs`, and `examples/*.rs`. Integration-test
/// directories (`tests/`) are not scanned — every lint except H1
/// already exempts test code, and fixtures under
/// `crates/lint/tests/fixtures/` contain deliberate violations.
pub fn run(root: &Path, cfg: &LintConfig) -> std::io::Result<Report> {
    let mut files: Vec<(PathBuf, FileMeta)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut |p| {
                    files.push((p.to_path_buf(), file_meta(root, p)));
                })?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut |p| {
            files.push((p.to_path_buf(), file_meta(root, p)));
        })?;
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        collect_rs(&examples, &mut |p| {
            files.push((p.to_path_buf(), file_meta(root, p)));
        })?;
    }
    let deps = workspace_deps(root)?;
    lint_paths_with_deps(&files, cfg, deps)
}

/// Lints an explicit file set with no cross-crate dependency edges (the
/// fixture tests use this directly; same-crate resolution still works).
pub fn lint_paths(files: &[(PathBuf, FileMeta)], cfg: &LintConfig) -> std::io::Result<Report> {
    lint_paths_with_deps(files, cfg, BTreeMap::new())
}

/// Lints an explicit file set with an explicit crate dependency map
/// (crate dir name → dep crate dir names).
pub fn lint_paths_with_deps(
    files: &[(PathBuf, FileMeta)],
    cfg: &LintConfig,
    deps: BTreeMap<String, Vec<String>>,
) -> std::io::Result<Report> {
    let mut parsed = Vec::with_capacity(files.len());
    for (path, meta) in files {
        let src = fs::read_to_string(path)?;
        parsed.push(ParsedFile::parse(&src, meta));
    }
    let ws = Workspace::build(parsed, deps);
    let mut report = Report {
        findings: analyze(&ws, cfg),
        files_scanned: ws.files.len(),
    };
    report.sort();
    Ok(report)
}

/// Lints a single in-memory source file (unit tests use this). The
/// workspace passes run too, so S1's caller analysis sees same-file
/// callers.
pub fn lint_source(src: &str, meta: &FileMeta, cfg: &LintConfig) -> Vec<Finding> {
    let ws = Workspace::build(vec![ParsedFile::parse(src, meta)], BTreeMap::new());
    analyze(&ws, cfg)
}

/// The full pipeline over a built workspace: per-file lints, workspace
/// passes, suppression application, then the stale-allow audit.
pub fn analyze(ws: &Workspace, cfg: &LintConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        lints::per_file_lints(file, cfg, &mut findings);
    }
    passes::workspace_passes(ws, cfg, &mut findings);
    apply_suppressions(ws, &mut findings);
    let mut stale = Vec::new();
    passes::pass_a1(ws, &findings, &mut stale);
    findings.extend(stale);
    findings
}

/// Marks findings covered by a `// lint: allow(ID, reason)` annotation
/// on the same or the directly preceding line. A1 findings are exempt —
/// the stale-allow audit cannot be allowed away.
fn apply_suppressions(ws: &Workspace, findings: &mut [Finding]) {
    for f in findings.iter_mut() {
        if f.lint == "A1" {
            continue;
        }
        let Some(file) = ws.files.iter().find(|x| x.meta.path == f.file) else {
            continue;
        };
        for s in &file.suppressions {
            if s.lint == f.lint && (s.line == f.line || s.line + 1 == f.line) {
                f.suppressed = Some(s.reason.clone());
                break;
            }
        }
    }
}

/// Reads the crate dependency graph (crate dir name → dep dir names)
/// from the Cargo manifests. A minimal TOML scan — the workspace pins
/// every internal dependency through `[workspace.dependencies]`, so the
/// package-name → directory mapping lives in the root manifest and the
/// per-crate manifests only need their `[dependencies]` name lists.
pub fn workspace_deps(root: &Path) -> std::io::Result<BTreeMap<String, Vec<String>>> {
    // 1. Package name → crate dir, from the root manifest's
    //    `[workspace.dependencies]` (`qsel = { path = "crates/core" }`).
    let root_toml = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();
    let mut name_to_dir: BTreeMap<String, String> = BTreeMap::new();
    for (section, line) in toml_lines(&root_toml) {
        if section != "workspace.dependencies" {
            continue;
        }
        let Some((name, rest)) = line.split_once('=') else { continue };
        let Some(path) = toml_str_value(rest, "path") else { continue };
        if let Some(dir) = path.rsplit('/').next() {
            name_to_dir.insert(name.trim().to_string(), dir.to_string());
        }
    }
    let dir_of = |dep_name: &str| -> String {
        name_to_dir
            .get(dep_name)
            .cloned()
            .unwrap_or_else(|| dep_name.to_string())
    };
    // 2. Per-crate `[dependencies]` (and the root package's, which maps
    //    to the synthetic crate `qsel-repro`).
    let mut deps: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut add_manifest = |krate: &str, toml: &str| {
        let mut list: Vec<String> = Vec::new();
        for (section, line) in toml_lines(toml) {
            if section != "dependencies" {
                continue;
            }
            // `qsel-types.workspace = true` or `qsel-types = { ... }`.
            let Some(head) = line.split('=').next() else { continue };
            let name = head.trim().trim_end_matches(".workspace").trim();
            if !name.is_empty() {
                list.push(dir_of(name));
            }
        }
        if !list.is_empty() {
            deps.insert(krate.to_string(), list);
        }
    };
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for e in fs::read_dir(&crates_dir)?.filter_map(|e| e.ok()) {
            let p = e.path();
            let manifest = p.join("Cargo.toml");
            if let (Some(dir), Ok(toml)) = (
                p.file_name().map(|s| s.to_string_lossy().to_string()),
                fs::read_to_string(&manifest),
            ) {
                add_manifest(&dir, &toml);
            }
        }
    }
    add_manifest("qsel-repro", &root_toml);
    // Examples link against the root package and (transitively, for the
    // name-based resolver) whatever it depends on.
    let mut ex: Vec<String> = deps.get("qsel-repro").cloned().unwrap_or_default();
    ex.push("qsel-repro".to_string());
    deps.insert("examples".to_string(), ex);
    Ok(deps)
}

/// Yields `(current_section, line)` for non-comment, non-header lines.
fn toml_lines(toml: &str) -> impl Iterator<Item = (String, &str)> {
    let mut section = String::new();
    let mut out = Vec::new();
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        out.push((section.clone(), line));
    }
    out.into_iter()
}

/// Extracts `key = "value"` from an inline TOML table fragment.
fn toml_str_value(fragment: &str, key: &str) -> Option<String> {
    let pos = fragment.find(key)?;
    let rest = fragment[pos + key.len()..].trim_start().strip_prefix('=')?;
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest.split('"').next()?.to_string())
}

/// Computes the [`FileMeta`] for `path` relative to the workspace root.
pub fn file_meta(root: &Path, path: &Path) -> FileMeta {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_str = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    let parts: Vec<&str> = rel_str.split('/').collect();
    let krate = match parts.first() {
        Some(&"crates") => parts.get(1).unwrap_or(&"").to_string(),
        Some(&"examples") => "examples".to_string(),
        _ => "qsel-repro".to_string(),
    };
    let is_crate_root = rel_str.ends_with("src/lib.rs")
        || rel_str.ends_with("src/main.rs")
        || rel_str.contains("/src/bin/")
        || parts.first() == Some(&"examples");
    FileMeta {
        path: rel_str,
        krate,
        is_crate_root,
    }
}

/// Recursively collects `.rs` files under `dir`, sorted for
/// deterministic report order.
fn collect_rs(dir: &Path, f: &mut impl FnMut(&Path)) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, f)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            f(&p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_meta_classifies_paths() {
        let root = Path::new("/ws");
        let m = file_meta(root, Path::new("/ws/crates/xpaxos/src/log.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("xpaxos", false));
        let m = file_meta(root, Path::new("/ws/crates/bench/src/bin/exp_thm3.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("bench", true));
        let m = file_meta(root, Path::new("/ws/examples/trace_run.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("examples", true));
        let m = file_meta(root, Path::new("/ws/src/lib.rs"));
        assert_eq!((m.krate.as_str(), m.is_crate_root), ("qsel-repro", true));
    }

    #[test]
    fn workspace_deps_maps_names_to_dirs() {
        let toml = "[workspace.dependencies]\n\
                    qsel-types = { path = \"crates/types\" }\n\
                    qsel = { path = \"crates/core\" }\n";
        let mut map = BTreeMap::new();
        for (section, line) in toml_lines(toml) {
            assert_eq!(section, "workspace.dependencies");
            let (name, rest) = line.split_once('=').unwrap();
            let path = toml_str_value(rest, "path").unwrap();
            map.insert(name.trim().to_string(), path);
        }
        assert_eq!(map["qsel-types"], "crates/types");
        assert_eq!(map["qsel"], "crates/core");
    }

    #[test]
    fn stale_allow_is_not_suppressible() {
        let meta = FileMeta {
            path: "crates/core/src/x.rs".into(),
            krate: "core".into(),
            is_crate_root: false,
        };
        // The allow matches nothing; an A1 fires; a second allow aimed
        // at the A1 itself must not mute it (and is itself stale).
        let src = "// lint: allow(A1, trying to mute the audit)\n\
                   // lint: allow(S2, stale)\nfn fine() {}";
        let f = lint_source(src, &meta, &LintConfig::default());
        let a1: Vec<_> = f.iter().filter(|x| x.lint == "A1").collect();
        assert_eq!(a1.len(), 2);
        assert!(a1.iter().all(|x| x.suppressed.is_none()));
    }
}
