//! Item-level ("ast-lite") parsing over the lexed token stream.
//!
//! The analyzer does not need a full AST: the passes operate on *items*
//! (functions with their parameter/body token ranges, enums with their
//! variants) plus the test-region mask. Everything is positional over a
//! comment-stripped token vector, so ranges stay cheap to slice and
//! line-accurate for reporting.

use crate::lexer::{lex, Tok, Token};
use crate::lints::FileMeta;

/// A parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range (exclusive of the parens) of the parameter list,
    /// indices into [`ParsedFile::code`].
    pub params: (usize, usize),
    /// Token range (exclusive of the braces) of the body, if the item
    /// has one (trait-method declarations do not).
    pub body: Option<(usize, usize)>,
    /// Whether the item sits inside a `#[cfg(test)]`/`#[test]` region.
    pub in_test: bool,
}

/// A parsed enum item.
#[derive(Clone, Debug)]
pub struct EnumItem {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names with the line each is declared on.
    pub variants: Vec<(String, u32)>,
    /// Whether the item sits inside a test region.
    pub in_test: bool,
}

/// A `// lint: allow(ID, reason)` annotation.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The lint id the annotation names.
    pub lint: String,
    /// Line the comment starts on.
    pub line: u32,
    /// The recorded justification.
    pub reason: String,
}

/// One source file, lexed and item-parsed.
#[derive(Clone, Debug)]
pub struct ParsedFile {
    /// Where the file sits in the workspace.
    pub meta: FileMeta,
    /// Comment-stripped token stream (all item ranges index into this).
    pub code: Vec<Token>,
    /// Token-index ranges covered by test items.
    pub test_mask: Vec<(usize, usize)>,
    /// Functions declared in the file (any nesting depth).
    pub fns: Vec<FnItem>,
    /// Enums declared in the file.
    pub enums: Vec<EnumItem>,
    /// Allow annotations found in comments.
    pub suppressions: Vec<Suppression>,
}

impl ParsedFile {
    /// Lexes and parses `src`.
    pub fn parse(src: &str, meta: &FileMeta) -> ParsedFile {
        let toks = lex(src);
        let suppressions = collect_suppressions(&toks);
        let code: Vec<Token> = toks
            .into_iter()
            .filter(|t| !matches!(t.tok, Tok::Comment(_)))
            .collect();
        let test_mask = test_regions(&code);
        let fns = parse_fns(&code, &test_mask);
        let enums = parse_enums(&code, &test_mask);
        ParsedFile {
            meta: meta.clone(),
            code,
            test_mask,
            fns,
            enums,
            suppressions,
        }
    }

    /// Whether token index `idx` falls in a test region.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_mask.iter().any(|(a, b)| idx >= *a && idx < *b)
    }
}

/// Parses `lint: allow(ID, reason)` annotations out of comments. The
/// reason is mandatory in spirit (it is what makes the escape hatch an
/// audit trail); an omitted reason is recorded as `"(no reason given)"`.
///
/// Only a comment that *begins* with `lint:` is an annotation. Doc
/// comments lex with a leading `/` or `!` and prose mentions sit
/// mid-sentence, so documentation *about* the escape hatch (this
/// paragraph included) never registers as a suppression — which
/// matters doubly now that A1 audits every annotation against live
/// findings.
pub fn collect_suppressions(toks: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in toks {
        let Tok::Comment(text) = &t.tok else { continue };
        let Some(mut rest) = text.trim_start().strip_prefix("lint:") else {
            continue;
        };
        while let Some(ap) = rest.find("allow(") {
            rest = &rest[ap + 6..];
            let end = rest.find(')').unwrap_or(rest.len());
            let inner = &rest[..end];
            rest = &rest[end..];
            let (id, reason) = match inner.split_once(',') {
                Some((id, r)) => (id.trim(), r.trim()),
                None => (inner.trim(), ""),
            };
            if id.is_empty() {
                continue;
            }
            out.push(Suppression {
                lint: id.to_string(),
                line: t.line,
                reason: if reason.is_empty() {
                    "(no reason given)".to_string()
                } else {
                    reason.to_string()
                },
            });
        }
    }
    out
}

/// Token-index ranges (over the comment-stripped stream) covered by
/// `#[cfg(test)]` or `#[test]` items. Test code is exempt from every
/// lint except H1.
pub fn test_regions(code: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !is_test_attr(code, i) {
            i += 1;
            continue;
        }
        // Skip this attribute and any further attributes.
        let mut j = skip_attr(code, i);
        while j < code.len() && code[j].tok == Tok::Punct('#') {
            j = skip_attr(code, j);
        }
        // The annotated item runs to its closing brace (or `;` for
        // brace-less items like `#[cfg(test)] use ...;`).
        let mut depth = 0usize;
        let mut entered = false;
        while j < code.len() {
            match code[j].tok {
                Tok::Punct('{') => {
                    depth += 1;
                    entered = true;
                }
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        j += 1;
                        break;
                    }
                }
                Tok::Punct(';') if !entered => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((i, j));
        i = j;
    }
    regions
}

/// Whether the attribute starting at `i` is `#[test]`, `#[cfg(test)]`,
/// or `#[cfg(all(test, ...))]`-shaped (any cfg mentioning `test`).
fn is_test_attr(code: &[Token], i: usize) -> bool {
    if code.get(i).map(|t| &t.tok) != Some(&Tok::Punct('#')) {
        return false;
    }
    if code.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('[')) {
        return false;
    }
    match code.get(i + 2).map(|t| &t.tok) {
        Some(Tok::Ident(s)) if s == "test" => true,
        Some(Tok::Ident(s)) if s == "cfg" => {
            // Scan the attribute tokens for a `test` ident.
            let end = skip_attr(code, i);
            code[i..end]
                .iter()
                .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "test"))
        }
        _ => false,
    }
}

/// Returns the index one past the `]` closing the attribute at `i`
/// (which must point at `#`).
fn skip_attr(code: &[Token], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < code.len() {
        match code[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Index of the token closing the group opened at `open_idx`.
pub fn matching_close(code: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in code.iter().enumerate().skip(open_idx) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

fn ident_at(code: &[Token], i: usize) -> Option<&str> {
    match code.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(code: &[Token], i: usize, c: char) -> bool {
    code.get(i).map(|t| &t.tok) == Some(&Tok::Punct(c))
}

/// Extracts every `fn` item (at any nesting depth). Function-pointer
/// types (`fn(...)` with no name) are skipped.
fn parse_fns(code: &[Token], mask: &[(usize, usize)]) -> Vec<FnItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if ident_at(code, i) != Some("fn") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(code, i + 1) else {
            i += 1; // `fn(` — a function-pointer type
            continue;
        };
        let fn_line = code[i].line;
        let in_test = mask.iter().any(|(a, b)| i >= *a && i < *b);
        // Parameter list: the first `(` after the name (skips generics;
        // `<` inside generics never contains a bare `(` before the list).
        let Some(lp) = (i + 2..code.len()).find(|&j| punct_at(code, j, '(')) else {
            i += 1;
            continue;
        };
        let Some(rp) = matching_close(code, lp, '(', ')') else {
            i += 1;
            continue;
        };
        // Body: the next `{` before a `;` (trait declarations end at `;`).
        let mut j = rp + 1;
        let mut body = None;
        while j < code.len() {
            match code[j].tok {
                Tok::Punct(';') => break,
                Tok::Punct('{') => {
                    if let Some(close) = matching_close(code, j, '{', '}') {
                        body = Some((j + 1, close));
                    }
                    break;
                }
                _ => j += 1,
            }
        }
        out.push(FnItem {
            name: name.to_string(),
            line: fn_line,
            params: (lp + 1, rp),
            body,
            in_test,
        });
        // Continue *inside* the body so nested fns are found too.
        i = body.map(|(s, _)| s).unwrap_or(j + 1);
    }
    out
}

/// Extracts every `enum` item with its variant names.
fn parse_enums(code: &[Token], mask: &[(usize, usize)]) -> Vec<EnumItem> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if ident_at(code, i) != Some("enum") {
            i += 1;
            continue;
        }
        let Some(name) = ident_at(code, i + 1) else {
            i += 1;
            continue;
        };
        let enum_line = code[i].line;
        let in_test = mask.iter().any(|(a, b)| i >= *a && i < *b);
        let Some(lb) = (i + 2..code.len()).find(|&j| punct_at(code, j, '{')) else {
            i += 1;
            continue;
        };
        let Some(rb) = matching_close(code, lb, '{', '}') else {
            i += 1;
            continue;
        };
        let mut variants = Vec::new();
        let mut j = lb + 1;
        while j < rb {
            // Skip attributes (incl. doc comments lexed away already).
            while j < rb && punct_at(code, j, '#') {
                j = skip_attr(code, j);
            }
            let Some(v) = ident_at(code, j) else { break };
            variants.push((v.to_string(), code[j].line));
            // Skip the payload / discriminant to the next top-level comma.
            j += 1;
            let mut depth = 0i32;
            while j < rb {
                match code[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                    Tok::Punct(',') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        out.push(EnumItem {
            name: name.to_string(),
            line: enum_line,
            variants,
            in_test,
        });
        i = rb + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> FileMeta {
        FileMeta {
            path: "crates/x/src/a.rs".into(),
            krate: "x".into(),
            is_crate_root: false,
        }
    }

    #[test]
    fn fns_with_bodies_and_nesting() {
        let src = "fn outer(a: u32) { fn inner() {} }\ntrait T { fn decl(&self); }";
        let p = ParsedFile::parse(src, &meta());
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "decl"]);
        assert!(p.fns[0].body.is_some());
        assert!(p.fns[2].body.is_none());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = ParsedFile::parse("struct S { cb: fn(u32) -> u32 }", &meta());
        assert!(p.fns.is_empty());
    }

    #[test]
    fn enums_with_payload_variants() {
        let src = "pub enum Msg {\n  A,\n  B(u32, String),\n  C { x: u8 },\n  #[doc = \"d\"]\n  D = 4,\n}";
        let p = ParsedFile::parse(src, &meta());
        assert_eq!(p.enums.len(), 1);
        let vs: Vec<&str> = p.enums[0].variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(vs, vec!["A", "B", "C", "D"]);
        assert_eq!(p.enums[0].variants[1].1, 3);
    }

    #[test]
    fn test_fns_are_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod t { fn helper() {} }";
        let p = ParsedFile::parse(src, &meta());
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test);
    }
}
