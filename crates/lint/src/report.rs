//! Findings, suppression records, and the human/JSON reports.

use std::fmt::Write as _;

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Lint id, e.g. `"D1"`.
    pub lint: &'static str,
    /// Workspace-relative file path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// What fired and why it matters.
    pub message: String,
    /// `Some(reason)` if a `// lint: allow(ID, reason)` annotation
    /// covers this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    /// Content hash over `(lint, file, message)` — deliberately *not*
    /// the line number, so baselines survive unrelated edits that shift
    /// code up or down.
    pub fn stable_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for part in [self.lint, self.file.as_str(), self.message.as_str()] {
            for b in part.bytes() {
                h = fnv1a_step(h, b);
            }
            h = fnv1a_step(h, 0x1f); // field separator
        }
        h
    }

    /// The stable finding ID, `file:line:lint:hash` — line for humans
    /// jumping to the site, hash for baselines matching across shifts.
    pub fn id(&self) -> String {
        format!(
            "{}:{}:{}:{:016x}",
            self.file,
            self.line,
            self.lint,
            self.stable_hash()
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a_step(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
}

/// The result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by an allow annotation.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Number of unsuppressed findings (the CI gate).
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Sorts findings deterministically.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    }

    /// The human-readable report.
    pub fn human(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            match &f.suppressed {
                None => {
                    let _ = writeln!(s, "{}: {}:{}: {}", f.lint, f.file, f.line, f.message);
                }
                Some(reason) => {
                    let _ = writeln!(
                        s,
                        "{} (allowed: {}): {}:{}: {}",
                        f.lint, reason, f.file, f.line, f.message
                    );
                }
            }
        }
        let suppressed = self.findings.len() - self.unsuppressed_count();
        let _ = writeln!(
            s,
            "qsel-lint: {} file(s), {} finding(s), {} suppressed, {} unsuppressed",
            self.files_scanned,
            self.findings.len(),
            suppressed,
            self.unsuppressed_count()
        );
        s
    }

    /// The machine-readable report (`lint_report.json`). Hand-rolled —
    /// the linter is dependency-free by design.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": \"{}\", \"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"suppressed\": {}}}",
                esc(&f.id()),
                esc(f.lint),
                esc(&f.file),
                f.line,
                esc(&f.message),
                match &f.suppressed {
                    None => "null".to_string(),
                    Some(r) => format!("\"{}\"", esc(r)),
                }
            );
            s.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        let suppressed = self.findings.len() - self.unsuppressed_count();
        let _ = write!(
            s,
            "  ],\n  \"summary\": {{\"files_scanned\": {}, \"total\": {}, \"suppressed\": {}, \"unsuppressed\": {}}}\n}}\n",
            self.files_scanned,
            self.findings.len(),
            suppressed,
            self.unsuppressed_count()
        );
        s
    }
}

/// Minimal JSON string escaping.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            findings: vec![Finding {
                lint: "S2",
                file: "a/b.rs".into(),
                line: 3,
                message: "panic \"boom\"".into(),
                suppressed: None,
            }],
            files_scanned: 1,
        };
        r.sort();
        let j = r.to_json();
        assert!(j.contains("\\\"boom\\\""));
        assert!(j.contains("\"unsuppressed\": 1"));
        assert_eq!(r.unsuppressed_count(), 1);
        assert!(j.contains(&r.findings[0].id()));
    }

    #[test]
    fn stable_ids_survive_line_shifts_but_not_edits() {
        let f = |line, msg: &str| Finding {
            lint: "P2",
            file: "crates/core/src/x.rs".into(),
            line,
            message: msg.into(),
            suppressed: None,
        };
        assert_eq!(f(3, "same").stable_hash(), f(90, "same").stable_hash());
        assert_ne!(f(3, "one").stable_hash(), f(3, "two").stable_hash());
        let id = f(3, "m").id();
        assert!(id.starts_with("crates/core/src/x.rs:3:P2:"));
        assert_eq!(id.rsplit(':').next().unwrap().len(), 16);
    }
}
