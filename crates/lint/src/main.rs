#![forbid(unsafe_code)]
//! `qsel-lint` binary: lints the workspace, prints the human report,
//! writes `lint_report.json`, and exits non-zero on any unsuppressed
//! finding.
//!
//! ```text
//! qsel-lint [ROOT] [--json PATH]
//! ```
//!
//! `ROOT` defaults to the current directory; `PATH` defaults to
//! `lint_report.json` under `ROOT`.

use std::path::PathBuf;
use std::process::ExitCode;

use qsel_lint::{run, LintConfig};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("qsel-lint: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: qsel-lint [ROOT] [--json PATH]");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }
    let json_path = json_path.unwrap_or_else(|| root.join("lint_report.json"));

    let report = match run(&root, &LintConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qsel-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.human());
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("qsel-lint: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if report.unsuppressed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
