#![forbid(unsafe_code)]
//! `qsel-lint` binary: lints the workspace, prints the human report,
//! writes `lint_report.json`, and exits non-zero on findings.
//!
//! ```text
//! qsel-lint [ROOT] [--json PATH] [--baseline PATH] [--write-baseline PATH]
//! ```
//!
//! * Without a baseline: exit 1 on any unsuppressed finding.
//! * `--baseline PATH`: differential mode — exit 1 only on findings not
//!   covered by the committed baseline (keyed by stable IDs, so line
//!   shifts don't break it). A missing baseline file is an error: CI
//!   must never silently fall back to non-differential behavior.
//! * `--write-baseline PATH`: record the current unsuppressed findings
//!   as the new baseline and exit 0 (the refresh tool, run locally).
//!
//! `ROOT` defaults to the current directory; the JSON report path
//! defaults to `lint_report.json` under `ROOT`.

use std::path::PathBuf;
use std::process::ExitCode;

use qsel_lint::baseline::Baseline;
use qsel_lint::{run, LintConfig};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut path_arg = |flag: &str| match args.next() {
            Some(p) => Ok(PathBuf::from(p)),
            None => {
                eprintln!("qsel-lint: {flag} requires a path");
                Err(ExitCode::from(2))
            }
        };
        match a.as_str() {
            "--json" => match path_arg("--json") {
                Ok(p) => json_path = Some(p),
                Err(c) => return c,
            },
            "--baseline" => match path_arg("--baseline") {
                Ok(p) => baseline_path = Some(p),
                Err(c) => return c,
            },
            "--write-baseline" => match path_arg("--write-baseline") {
                Ok(p) => write_baseline = Some(p),
                Err(c) => return c,
            },
            "--help" | "-h" => {
                println!(
                    "usage: qsel-lint [ROOT] [--json PATH] [--baseline PATH] \
                     [--write-baseline PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }
    let json_path = json_path.unwrap_or_else(|| root.join("lint_report.json"));

    let report = match run(&root, &LintConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("qsel-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.human());
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("qsel-lint: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }

    if let Some(path) = write_baseline {
        let b = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&path, b.to_json()) {
            eprintln!("qsel-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "qsel-lint: wrote baseline with {} entry(ies) to {}",
            b.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline_path {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("qsel-lint: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("qsel-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let new = baseline.new_findings(&report);
        if new.is_empty() {
            println!(
                "qsel-lint: no new findings vs baseline ({} known entry(ies))",
                baseline.len()
            );
            return ExitCode::SUCCESS;
        }
        println!("qsel-lint: {} new finding(s) vs baseline:", new.len());
        for f in new {
            println!("  NEW {}: {}", f.id(), f.message);
        }
        return ExitCode::FAILURE;
    }

    if report.unsuppressed_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
