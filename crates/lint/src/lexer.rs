//! A minimal Rust lexer: just enough token structure for line-accurate,
//! comment-aware pattern matching.
//!
//! The workspace is offline (no `syn`), so the lints run on a token
//! stream, not an AST. The lexer's only obligations are the ones a
//! token-level analysis cannot fake:
//!
//! * string/char literals must not leak their contents as identifiers
//!   (`"unwrap()"` in a message is not a call);
//! * comments must be skipped for code matching but *kept* so the
//!   suppression pass can read `// lint: allow(...)` annotations;
//! * every token carries its 1-based source line for reporting.

/// A lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`::` is two `Punct(':')`).
    Punct(char),
    /// A string/char/number literal, carrying its raw source text. The
    /// quorum-arithmetic pass (P2) needs to see the `1` in `f + 1`; the
    /// other lints ignore the contents.
    Literal(String),
    /// A line comment's text (without the leading `//`), including doc
    /// comments. Block comments are folded into this too.
    Comment(String),
}

/// A token plus its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Lexes `src` into a token stream. Unterminated constructs simply end at
/// EOF — the linter must degrade gracefully on code rustc would reject.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = b.len();
    macro_rules! bump {
        () => {{
            if b[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }
    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Line comment (incl. /// and //!).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            i += 2;
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                i += 1;
            }
            out.push(Token {
                tok: Tok::Comment(text),
                line: start_line,
            });
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1;
            let mut text = String::new();
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    text.push(b[i]);
                    bump!();
                }
            }
            out.push(Token {
                tok: Tok::Comment(text),
                line: start_line,
            });
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br##"..."## etc.
        if (c == 'r' || c == 'b') && raw_string_start(&b, i) {
            let start_line = line;
            let lit_start = i;
            // Skip the b/r prefix.
            while i < n && (b[i] == 'b' || b[i] == 'r') {
                i += 1;
            }
            let mut hashes = 0;
            while i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            if i < n && b[i] == '"' {
                bump!(); // opening quote
                loop {
                    if i >= n {
                        break;
                    }
                    if b[i] == '"' {
                        let mut ok = true;
                        for k in 0..hashes {
                            if i + 1 + k >= n || b[i + 1 + k] != '#' {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            i += 1 + hashes;
                            break;
                        }
                    }
                    bump!();
                }
            }
            out.push(Token {
                tok: Tok::Literal(b[lit_start..i].iter().collect()),
                line: start_line,
            });
            continue;
        }
        // Plain (or byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start_line = line;
            let lit_start = i;
            if c == 'b' {
                i += 1;
            }
            bump!(); // opening quote
            while i < n && b[i] != '"' {
                if b[i] == '\\' && i + 1 < n {
                    bump!();
                }
                bump!();
            }
            if i < n {
                i += 1; // closing quote
            }
            out.push(Token {
                tok: Tok::Literal(b[lit_start..i].iter().collect()),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime: 'x' is a literal; 'a (not followed by
        // a closing quote) is a lifetime and lexes as punct + ident.
        if c == '\'' {
            let is_lifetime = i + 1 < n
                && (b[i + 1].is_alphabetic() || b[i + 1] == '_')
                && !(i + 2 < n && b[i + 2] == '\'');
            if is_lifetime {
                i += 1; // swallow the quote; the ident lexes next round
                continue;
            }
            let start_line = line;
            let lit_start = i;
            i += 1;
            while i < n && b[i] != '\'' {
                if b[i] == '\\' && i + 1 < n {
                    bump!();
                }
                bump!();
            }
            if i < n {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Literal(b[lit_start..i].iter().collect()),
                line: start_line,
            });
            continue;
        }
        // Number literal (digits, underscores, type suffixes, hex, floats).
        if c.is_ascii_digit() {
            let start_line = line;
            let lit_start = i;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_' || b[i] == '.') {
                // `0..10` — stop before a range operator.
                if b[i] == '.' && i + 1 < n && b[i + 1] == '.' {
                    break;
                }
                i += 1;
            }
            out.push(Token {
                tok: Tok::Literal(b[lit_start..i].iter().collect()),
                line: start_line,
            });
            continue;
        }
        // Identifier / keyword (incl. r#ident raw identifiers).
        if c.is_alphabetic() || c == '_' {
            let start_line = line;
            let mut s = String::new();
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                s.push(b[i]);
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(s),
                line: start_line,
            });
            continue;
        }
        // Everything else: single punctuation char.
        out.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        bump!();
    }
    out
}

/// Whether position `i` starts a raw-string prefix (`r"`, `r#`, `br"`,
/// `rb` is not a thing; `b` alone is handled by the byte-string branch).
fn raw_string_start(b: &[char], i: usize) -> bool {
    let mut j = i;
    let n = b.len();
    if j < n && b[j] == 'b' {
        j += 1;
    }
    if j >= n || b[j] != 'r' {
        return false;
    }
    j += 1;
    while j < n && b[j] == '#' {
        j += 1;
    }
    j < n && b[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_do_not_leak_idents() {
        assert_eq!(idents(r#"let x = "unwrap() HashMap";"#), vec!["let", "x"]);
        assert_eq!(idents(r##"let y = r#"panic!"#;"##), vec!["let", "y"]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let toks = lex("let a = 1;\n// lint: allow(S2, reason)\nlet b = 2;");
        let c = toks
            .iter()
            .find(|t| matches!(t.tok, Tok::Comment(_)))
            .unwrap();
        assert_eq!(c.line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        assert_eq!(idents("fn f<'a>(x: &'a str) {}"), vec!["fn", "f", "a", "x", "a", "str"]);
        let lit_count = lex("let c = 'x';")
            .iter()
            .filter(|t| matches!(t.tok, Tok::Literal(_)))
            .count();
        assert_eq!(lit_count, 1);
    }

    #[test]
    fn literals_carry_source_text() {
        let texts: Vec<String> = lex("let q = 2 * f + 1; let s = \"x\";")
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Literal(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(texts, vec!["2", "1", "\"x\""]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("/* outer /* inner */ still */ fn f() {}"), vec!["fn", "f"]);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
