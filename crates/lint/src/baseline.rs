//! Differential mode: a committed baseline of known findings.
//!
//! `qsel-lint --baseline lint_baseline.json` compares the run against
//! the baseline and fails CI only on findings that are *new* — so an
//! inherited debt item does not block unrelated PRs, while any fresh
//! violation does. Entries are keyed by [`Finding::stable_hash`]
//! (lint + file + message, no line number) with an occurrence count per
//! key, so the baseline survives line shifts but notices when a second
//! identical violation appears in the same file.
//!
//! Suppressed findings never enter the baseline: they are already
//! accounted for by their `allow` annotations.

use std::collections::BTreeMap;

use crate::report::{Finding, Report};

/// A committed set of known findings, keyed `(file, lint, hash)` with
/// occurrence counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<(String, String, u64), usize>,
}

impl Baseline {
    /// Builds a baseline from a report's unsuppressed findings.
    pub fn from_report(report: &Report) -> Baseline {
        let mut b = Baseline::default();
        for f in report.unsuppressed() {
            *b.counts.entry(key(f)).or_insert(0) += 1;
        }
        b
    }

    /// The unsuppressed findings of `report` not covered by the
    /// baseline. Each baseline count absorbs that many identical
    /// findings; the overflow (in report order) is new.
    pub fn new_findings<'a>(&self, report: &'a Report) -> Vec<&'a Finding> {
        let mut budget = self.counts.clone();
        report
            .unsuppressed()
            .filter(|f| {
                match budget.get_mut(&key(f)) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        false
                    }
                    _ => true,
                }
            })
            .collect()
    }

    /// Number of baseline entries (distinct keys).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Serializes the baseline (hand-rolled JSON; the linter is
    /// dependency-free by design). Deterministic: keys are sorted.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"entries\": [\n");
        for (i, ((file, lint, hash), count)) in self.counts.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"file\": \"{}\", \"lint\": \"{}\", \"hash\": \"{:016x}\", \"count\": {}}}{}\n",
                crate::report::esc(file),
                crate::report::esc(lint),
                hash,
                count,
                if i + 1 < self.counts.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a baseline produced by [`Baseline::to_json`]. Line
    /// oriented — each entry lives on its own line — which is all the
    /// writer ever emits.
    pub fn parse(json: &str) -> Result<Baseline, String> {
        let mut b = Baseline::default();
        for line in json.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with('{') || !line.contains("\"hash\"") {
                continue;
            }
            let file = field_str(line, "file").ok_or_else(|| bad(line, "file"))?;
            let lint = field_str(line, "lint").ok_or_else(|| bad(line, "lint"))?;
            let hash_s = field_str(line, "hash").ok_or_else(|| bad(line, "hash"))?;
            let hash = u64::from_str_radix(&hash_s, 16).map_err(|_| bad(line, "hash"))?;
            let count = field_num(line, "count").ok_or_else(|| bad(line, "count"))?;
            *b.counts.entry((file, lint, hash)).or_insert(0) += count;
        }
        Ok(b)
    }
}

fn key(f: &Finding) -> (String, String, u64) {
    (f.file.clone(), f.lint.to_string(), f.stable_hash())
}

fn bad(line: &str, field: &str) -> String {
    format!("malformed baseline entry (missing `{field}`): {line}")
}

/// Extracts `"key": "value"` from a single-line JSON object. The writer
/// only ever emits paths, lint IDs, and hex hashes here — no escapes.
fn field_str(line: &str, field: &str) -> Option<String> {
    let tag = format!("\"{field}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest.split('"').next()?.to_string())
}

/// Extracts `"key": 123` from a single-line JSON object.
fn field_num(line: &str, field: &str) -> Option<usize> {
    let tag = format!("\"{field}\":");
    let rest = line[line.find(&tag)? + tag.len()..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, msg: &str) -> Finding {
        Finding {
            lint: "D1",
            file: file.into(),
            line,
            message: msg.into(),
            suppressed: None,
        }
    }

    fn report(findings: Vec<Finding>) -> Report {
        let mut r = Report {
            files_scanned: 1,
            findings,
        };
        r.sort();
        r
    }

    #[test]
    fn roundtrip_and_line_shift_tolerance() {
        let r = report(vec![finding("a.rs", 10, "m1"), finding("a.rs", 20, "m2")]);
        let b = Baseline::from_report(&r);
        let b2 = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(b, b2);
        // Same findings on different lines: still covered.
        let shifted = report(vec![finding("a.rs", 99, "m1"), finding("a.rs", 1, "m2")]);
        assert!(b2.new_findings(&shifted).is_empty());
    }

    #[test]
    fn counts_catch_duplicated_violations() {
        let b = Baseline::from_report(&report(vec![finding("a.rs", 10, "m")]));
        let doubled = report(vec![finding("a.rs", 10, "m"), finding("a.rs", 40, "m")]);
        let new = b.new_findings(&doubled);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 40);
    }

    #[test]
    fn new_message_is_a_new_finding() {
        let b = Baseline::from_report(&report(vec![finding("a.rs", 10, "old")]));
        let r = report(vec![finding("a.rs", 10, "new")]);
        assert_eq!(b.new_findings(&r).len(), 1);
    }

    #[test]
    fn suppressed_findings_stay_out() {
        let mut f = finding("a.rs", 10, "m");
        f.suppressed = Some("reason".into());
        let b = Baseline::from_report(&report(vec![f]));
        assert!(b.is_empty());
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(Baseline::parse("{\"entries\": [\n{\"hash\": \"zz\"}\n]}").is_err());
    }
}
