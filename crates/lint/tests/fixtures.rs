//! Fixture-driven self-test: every lint is proven by a bad/good file
//! pair, and the machine-readable report carries exact (lint, file,
//! line) triples for each.

use std::path::PathBuf;

use qsel_lint::{lint_paths, FileMeta, LintConfig};

/// (disk path, meta) for a fixture, linted as if it lived in `krate`.
fn fixture(name: &str, krate: &str, is_crate_root: bool) -> (PathBuf, FileMeta) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let meta = FileMeta {
        path: format!("fixtures/{name}"),
        krate: krate.to_string(),
        is_crate_root,
    };
    (path, meta)
}

#[test]
fn bad_fixtures_fire_exact_findings() {
    let files = vec![
        fixture("d1_bad.rs", "xpaxos", false),
        fixture("d2_bad.rs", "xpaxos", false),
        fixture("d3_bad.rs", "xpaxos", false),
        fixture("s1_bad.rs", "xpaxos", false),
        fixture("s2_bad.rs", "xpaxos", false),
        // `simnet`, not `xpaxos`: a crate-root file in a P1 handler's
        // crate would (correctly) demand the wire enum be present too.
        fixture("h1_bad.rs", "simnet", true),
    ];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    let got: Vec<(&str, &str, u32)> = report
        .findings
        .iter()
        .map(|f| (f.lint, f.file.as_str(), f.line))
        .collect();
    assert_eq!(
        got,
        vec![
            ("D1", "fixtures/d1_bad.rs", 5),
            ("D2", "fixtures/d2_bad.rs", 3),
            ("D3", "fixtures/d3_bad.rs", 3),
            ("H1", "fixtures/h1_bad.rs", 1),
            ("S1", "fixtures/s1_bad.rs", 2),
            ("S2", "fixtures/s2_bad.rs", 3),
        ]
    );
    assert!(report.findings.iter().all(|f| f.suppressed.is_none()));
    assert_eq!(report.unsuppressed_count(), 6);
}

#[test]
fn good_fixtures_are_clean() {
    let files = vec![
        fixture("d1_good.rs", "xpaxos", false),
        fixture("d2_good.rs", "xpaxos", false),
        fixture("d3_good.rs", "xpaxos", false),
        fixture("s1_good.rs", "xpaxos", false),
        fixture("s2_good.rs", "xpaxos", false),
        fixture("h1_good.rs", "simnet", true),
    ];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    assert!(
        report.findings.is_empty(),
        "expected clean fixtures, got: {:?}",
        report.findings
    );
}

#[test]
fn suppression_records_reason_and_does_not_gate() {
    let files = vec![fixture("suppressed.rs", "xpaxos", false)];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!((f.lint, f.line), ("S2", 4));
    assert_eq!(
        f.suppressed.as_deref(),
        Some("fixture demonstrates the escape hatch")
    );
    assert_eq!(report.unsuppressed_count(), 0);
}

#[test]
fn cfg_test_code_is_exempt() {
    let files = vec![fixture("cfg_test.rs", "xpaxos", false)];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    assert!(
        report.findings.is_empty(),
        "test code must be exempt, got: {:?}",
        report.findings
    );
}

#[test]
fn json_report_carries_exact_ids_files_and_lines() {
    let files = vec![
        fixture("d1_bad.rs", "xpaxos", false),
        fixture("suppressed.rs", "xpaxos", false),
    ];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    let json = report.to_json();
    assert!(json.contains(
        r#""lint": "D1", "file": "fixtures/d1_bad.rs", "line": 5,"#
    ));
    assert!(json.contains(
        r#""lint": "S2", "file": "fixtures/suppressed.rs", "line": 4,"#
    ));
    // Every finding carries its stable id, and the id embeds the
    // (file, line, lint) triple for humans.
    for f in &report.findings {
        assert!(json.contains(&format!(r#""id": "{}""#, f.id())));
        assert!(f.id().starts_with(&format!("{}:{}:{}:", f.file, f.line, f.lint)));
    }
    assert!(json.contains(r#""suppressed": "fixture demonstrates the escape hatch""#));
    assert!(json.contains(r#""summary": {"files_scanned": 2, "total": 2, "suppressed": 1, "unsuppressed": 1}"#));
}
