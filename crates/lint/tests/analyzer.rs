//! Fixture-driven self-tests for the workspace passes (P1–P4): each
//! pass is proven by a bad/good fixture pair, and the call-graph
//! machinery is proven by a three-file purity fixture whose io hides
//! two calls deep.

use std::path::PathBuf;

use qsel_lint::config::HandlerSpec;
use qsel_lint::{lint_paths, FileMeta, LintConfig};

/// (disk path, meta) for a fixture, linted as if it lived in `krate`.
fn fixture(name: &str, krate: &str, is_crate_root: bool) -> (PathBuf, FileMeta) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let meta = FileMeta {
        path: format!("fixtures/{name}"),
        krate: krate.to_string(),
        is_crate_root,
    };
    (path, meta)
}

fn p1_cfg() -> LintConfig {
    let mut cfg = LintConfig::default();
    cfg.p1_handlers = vec![HandlerSpec {
        enum_crate: "wire".into(),
        enum_name: "WireMsg".into(),
        handler_crate: "wire".into(),
        handler_fn: "handle_message".into(),
    }];
    cfg
}

#[test]
fn p1_flags_wildcard_swallowed_variant() {
    let files = vec![fixture("p1_bad.rs", "wire", true)];
    let report = lint_paths(&files, &p1_cfg()).unwrap();
    let p1: Vec<_> = report.findings.iter().filter(|f| f.lint == "P1").collect();
    assert_eq!(p1.len(), 1, "{:?}", report.findings);
    assert_eq!(p1[0].line, 9); // the handler's line
    assert!(p1[0].message.contains("`Sync`"));
    assert!(!p1[0].message.contains("`Ping`"));
}

#[test]
fn p1_follows_the_call_graph_out_of_the_handler() {
    // `Sync` is only named inside a helper the handler calls — the pass
    // must accept it (reachability, not just the handler body).
    let files = vec![fixture("p1_good.rs", "wire", true)];
    let report = lint_paths(&files, &p1_cfg()).unwrap();
    assert!(
        report.findings.is_empty(),
        "expected clean, got: {:?}",
        report.findings
    );
}

#[test]
fn p2_flags_handwritten_thresholds() {
    let files = vec![fixture("p2_bad.rs", "xpaxos", false)];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    let lines: Vec<u32> = report
        .findings
        .iter()
        .filter(|f| f.lint == "P2")
        .map(|f| f.line)
        .collect();
    assert_eq!(lines, vec![3, 7], "{:?}", report.findings);
}

#[test]
fn p2_accepts_threshold_module_calls() {
    let files = vec![fixture("p2_good.rs", "xpaxos", false)];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    assert!(
        report.findings.is_empty(),
        "expected clean, got: {:?}",
        report.findings
    );
}

#[test]
fn p3_flags_io_reached_through_a_helper() {
    let files = vec![fixture("p3_bad.rs", "core", false)];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    let p3: Vec<_> = report.findings.iter().filter(|f| f.lint == "P3").collect();
    // Both the helper touching the socket and the entry point reaching
    // it are impure.
    let fns: Vec<&str> = p3
        .iter()
        .map(|f| {
            if f.message.contains("`broadcast`") && f.line == 2 {
                "broadcast"
            } else {
                "push_wire"
            }
        })
        .collect();
    assert_eq!(p3.len(), 2, "{:?}", report.findings);
    assert!(fns.contains(&"broadcast") && fns.contains(&"push_wire"));
}

#[test]
fn p3_accepts_the_sans_io_twin() {
    let files = vec![fixture("p3_good.rs", "core", false)];
    let report = lint_paths(&files, &LintConfig::default()).unwrap();
    assert!(
        report.findings.is_empty(),
        "expected clean, got: {:?}",
        report.findings
    );
}

#[test]
fn p3_chains_through_three_files() {
    // The known 3-deep violation: entry -> middle -> sink, one file
    // each, io only in the last. The call graph must stitch the chain
    // across files and the finding on `entry` must spell it out.
    let mut cfg = LintConfig::default();
    cfg.p3_pure_crates.push("purebad".into());
    let files = vec![
        fixture("purebad_entry.rs", "purebad", false),
        fixture("purebad_middle.rs", "purebad", false),
        fixture("purebad_sink.rs", "purebad", false),
    ];
    let report = lint_paths(&files, &cfg).unwrap();
    let p3: Vec<_> = report.findings.iter().filter(|f| f.lint == "P3").collect();
    assert_eq!(p3.len(), 3, "{:?}", report.findings);
    let entry = p3
        .iter()
        .find(|f| f.file.ends_with("purebad_entry.rs"))
        .expect("entry finding");
    assert!(
        entry.message.contains("`entry` -> `middle` -> `sink`"),
        "chain missing: {}",
        entry.message
    );
    assert!(entry.message.contains("std::fs"));
}

fn p4_cfg() -> LintConfig {
    let mut cfg = LintConfig::default();
    cfg.p4_event_crate = "tracefix".into();
    cfg.p4_event_enum = "Ev".into();
    cfg.p4_consumer_paths = vec!["p4_consumer".into()];
    cfg
}

#[test]
fn p4_flags_unemitted_and_unconsumed_variants() {
    let files = vec![
        fixture("p4_enum.rs", "tracefix", true),
        fixture("p4_emit_bad.rs", "emit", false),
        fixture("p4_consumer_bad.rs", "replayfix", false),
    ];
    let report = lint_paths(&files, &p4_cfg()).unwrap();
    let p4: Vec<_> = report.findings.iter().filter(|f| f.lint == "P4").collect();
    assert_eq!(p4.len(), 2, "{:?}", report.findings);
    // `Delivered` (line 6): emitted, never consumed.
    assert!(p4.iter().any(|f| f.line == 6
        && f.message.contains("`Ev::Delivered`")
        && f.message.contains("not consumed")));
    // `Dropped` (line 7): neither emitted nor consumed.
    assert!(p4.iter().any(|f| f.line == 7
        && f.message.contains("`Ev::Dropped`")
        && f.message.contains("neither emitted")));
}

#[test]
fn p4_accepts_full_coverage() {
    let files = vec![
        fixture("p4_enum.rs", "tracefix", true),
        fixture("p4_emit_good.rs", "emit", false),
        fixture("p4_consumer_good.rs", "replayfix", false),
    ];
    let report = lint_paths(&files, &p4_cfg()).unwrap();
    assert!(
        report.findings.is_empty(),
        "expected clean, got: {:?}",
        report.findings
    );
}

#[test]
fn s1_bad_and_good_fixture_twins_still_hold_under_dataflow() {
    // The dataflow upgrade must keep the original per-file pair honest:
    // the bad twin has no callers at all (nobody vouches), the good
    // twin verifies in-body.
    let cfg = LintConfig::default();
    let report = lint_paths(&[fixture("s1_bad.rs", "xpaxos", false)], &cfg).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].lint, "S1");
    let report = lint_paths(&[fixture("s1_good.rs", "xpaxos", false)], &cfg).unwrap();
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}
