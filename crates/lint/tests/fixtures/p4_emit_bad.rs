//! P4 fixture: emits only part of the vocabulary — `Dropped` is dead.
pub fn on_send(trace: &mut Vec<Ev>) {
    trace.push(Ev::Sent);
}

pub fn on_deliver(trace: &mut Vec<Ev>) {
    trace.push(Ev::Delivered);
}
