//! P4 fixture: the replay side only understands `Sent` — `Delivered`
//! is emitted but never consumed.
pub fn consume(e: &Ev) -> bool {
    matches!(e, Ev::Sent)
}
