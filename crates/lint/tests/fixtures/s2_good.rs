//! S2 fixture (clean): typed error instead of a panic.
pub fn committed_op(op: Option<u64>) -> Result<u64, Error> {
    op.ok_or(Error::MissingOp)
}
