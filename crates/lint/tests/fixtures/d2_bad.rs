//! D2 fixture: wall-clock time in deterministic code.
pub fn stamp_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}
