#![forbid(unsafe_code)]
//! P4 fixture: the trace vocabulary under audit. Whether each variant
//! is live depends on which emitter/consumer fixture rides along.
pub enum Ev {
    Sent,
    Delivered,
    Dropped,
}
