//! D3 fixture (clean): randomness flows from a seeded generator.
pub fn roll(rng: &mut StdRng) -> u64 {
    rng.next_u64()
}
