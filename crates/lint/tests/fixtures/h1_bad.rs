//! H1 fixture: crate root without the unsafe-code forbid header.
fn main() {}
