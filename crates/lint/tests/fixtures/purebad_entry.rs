//! Purity fixture, file 1 of 3: the public protocol entry point. It
//! looks innocent — the io hides two calls down.
pub fn entry(x: u64) -> u64 {
    middle(x)
}
