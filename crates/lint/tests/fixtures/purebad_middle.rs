//! Purity fixture, file 2 of 3: an innocent-looking relay.
pub fn middle(x: u64) -> u64 {
    sink(x)
}
