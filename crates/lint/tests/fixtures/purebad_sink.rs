//! Purity fixture, file 3 of 3: the buried io.
pub fn sink(x: u64) -> u64 {
    let _ = std::fs::read("/tmp/state");
    x
}
