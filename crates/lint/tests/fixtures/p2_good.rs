//! P2 fixture (clean): thresholds routed through the central module.
pub fn reply_ready(f: u32, matching: usize) -> bool {
    qsel_types::thresholds::reply_quorum_reached(f, matching)
}

pub fn quorum(n: u32, f: u32) -> u32 {
    qsel_types::thresholds::quorum_size(n, f)
}
