//! D1 fixture: `HashMap` field in a determinism-sensitive crate.
use std::collections::HashMap;

pub struct Tally {
    pub votes: HashMap<u64, u32>,
}
