//! H1 fixture (clean): crate root carrying the header.
#![forbid(unsafe_code)]
fn main() {}
