//! D3 fixture: ambient randomness.
pub fn roll() -> u64 {
    rand::thread_rng().next_u64()
}
