//! Test-code exemption fixture: violations inside `#[cfg(test)]` and
//! `#[test]` items are out of scope for every lint but H1.
#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tallies() {
        let mut m: HashMap<u8, u8> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.remove(&1).unwrap(), 2);
    }
}
