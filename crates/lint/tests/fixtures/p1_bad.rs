#![forbid(unsafe_code)]
//! P1 fixture: a handler whose wildcard arm swallows a wire variant.
pub enum WireMsg {
    Ping,
    Pong,
    Sync,
}

pub fn handle_message(m: WireMsg) {
    match m {
        WireMsg::Ping => reply(),
        WireMsg::Pong => note(),
        _ => {}
    }
}

fn reply() {}
fn note() {}
