//! P2 fixture: hand-written quorum arithmetic in protocol code.
pub fn reply_ready(f: u32, matching: u32) -> bool {
    matching >= f + 1
}

pub fn quorum(n: u32, f: u32) -> u32 {
    n - f
}
