//! P4 fixture (clean): every variant is emitted.
pub fn on_send(trace: &mut Vec<Ev>) {
    trace.push(Ev::Sent);
}

pub fn on_deliver(trace: &mut Vec<Ev>) {
    trace.push(Ev::Delivered);
}

pub fn on_drop(trace: &mut Vec<Ev>) {
    trace.push(Ev::Dropped);
}
