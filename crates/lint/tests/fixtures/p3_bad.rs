//! P3 fixture: protocol code reaching the network through a helper.
pub fn broadcast(buf: &[u8]) -> usize {
    push_wire(buf)
}

fn push_wire(buf: &[u8]) -> usize {
    let _ = std::net::TcpStream::connect("127.0.0.1:1");
    buf.len()
}
