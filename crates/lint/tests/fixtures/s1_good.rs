//! S1 fixture (clean): payload read only after verification.
pub fn on_prepare(keys: &Verifier, sp: SignedPrepare) -> Option<u64> {
    keys.verify(&sp).ok()?;
    Some(sp.payload.slot)
}
