//! Suppression fixture: an S2 finding with an audit-trail annotation.
pub fn fingerprint(d: [u8; 32]) -> u64 {
    // lint: allow(S2, fixture demonstrates the escape hatch)
    u64::from_be_bytes(d[..8].try_into().unwrap())
}
