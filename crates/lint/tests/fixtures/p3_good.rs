//! P3 fixture (clean): the same shape, sans io — messages go to an
//! in-memory queue the simulation owns.
pub fn broadcast(buf: &[u8]) -> usize {
    push_queue(buf)
}

fn push_queue(buf: &[u8]) -> usize {
    buf.len()
}
