//! P4 fixture (clean): the replay side understands the full vocabulary.
pub fn consume(e: &Ev) -> u8 {
    match e {
        Ev::Sent => 0,
        Ev::Delivered => 1,
        Ev::Dropped => 2,
    }
}
