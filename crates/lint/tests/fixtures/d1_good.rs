//! D1 fixture (clean): ordered map, deterministic iteration.
use std::collections::BTreeMap;

pub struct Tally {
    pub votes: BTreeMap<u64, u32>,
}
