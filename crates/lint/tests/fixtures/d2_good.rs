//! D2 fixture (clean): time flows from the simulated clock.
pub fn stamp(now: SimTime) -> SimTime {
    now
}
