#![forbid(unsafe_code)]
//! P1 fixture (clean): every variant is named in code reachable from
//! the handler — `Sync` through a helper, proving the pass follows the
//! call graph rather than just the handler body.
pub enum WireMsg {
    Ping,
    Pong,
    Sync,
}

pub fn handle_message(m: WireMsg) {
    match m {
        WireMsg::Ping => reply(),
        WireMsg::Pong => note(),
        other => handle_rest(other),
    }
}

fn handle_rest(m: WireMsg) {
    if let WireMsg::Sync = m {
        note()
    }
}

fn reply() {}
fn note() {}
