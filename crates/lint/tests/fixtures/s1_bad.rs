//! S1 fixture: signed payload read without verification.
pub fn on_prepare(sp: SignedPrepare) -> u64 {
    sp.payload.slot
}
