//! S2 fixture: panic path in protocol code.
pub fn committed_op(op: Option<u64>) -> u64 {
    op.unwrap()
}
