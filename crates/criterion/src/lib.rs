//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides the
//! subset of criterion's API that the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size` / `bench_with_input` / `finish`,
//! `BenchmarkId`, `Bencher::iter`) backed by a simple wall-clock measurement
//! loop. No statistical analysis, plots, or HTML reports — each benchmark
//! prints its median per-iteration time to stdout.
//!
//! Measurements are real (std::time::Instant around batched iterations), so
//! relative comparisons between runs on the same machine remain meaningful,
//! just without criterion's confidence intervals.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark. Kept short: these benches gate
/// nothing and mostly run in CI smoke mode.
const TARGET_TIME: Duration = Duration::from_millis(200);

/// Runs closures under measurement via [`Bencher::iter`].
pub struct Bencher {
    /// Median per-iteration time of the last measurement, in nanoseconds.
    last_ns: f64,
}

impl Bencher {
    /// Measures `f` by timing batches of calls until [`TARGET_TIME`] is
    /// spent, then records the median batch's per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: time one call to pick a batch size that
        // keeps per-batch timing overhead negligible.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        let mut samples = Vec::new();
        let start = Instant::now();
        while start.elapsed() < TARGET_TIME || samples.is_empty() {
            let bt = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(bt.elapsed().as_secs_f64() * 1e9 / batch as f64);
            if samples.len() >= 50 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = samples[samples.len() / 2];
    }
}

fn report(name: &str, ns: f64) {
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!("{name:<60} time: {value:>10.3} {unit}/iter");
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { last_ns: 0.0 };
    f(&mut b);
    report(name, b.last_ns);
}

/// Identifies a benchmark within a group, mirroring criterion's type.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter; the group name provides the prefix.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed time budget already
    /// bounds sampling, so the requested count is not used.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no-op).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.id), |b| f(b, input));
        self
    }

    /// Benchmarks a closure under this group's name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Ends the group (printing happens eagerly per benchmark).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single named closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter("p1"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("n5_f1").id, "n5_f1");
    }
}
