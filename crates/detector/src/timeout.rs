//! Adaptive per-peer timeouts.

use qsel_simnet::SimDuration;

/// Per-peer adaptive timeout with exponential back-off on false suspicion
/// and guarded multiplicative decay on sustained responsiveness.
///
/// Timing failures cannot be detected in an asynchronous system (paper
/// §II); in an eventually-synchronous one, *increasing* timing failures can
/// be detected eventually. The back-off realises the other direction of
/// that argument: every falsely-suspected correct peer doubles its timeout,
/// so after GST the timeout eventually exceeds the true delay bound and
/// false suspicions stop — giving eventual strong accuracy.
///
/// [`TimeoutPolicy::record_success`] is the counterweight: pre-GST chaos
/// (or a transient gray failure) can inflate the timeout far beyond what
/// the stabilized network needs, leaving the detector slow forever. Each
/// on-time fulfilment contributes to a *decay step* that halves the excess
/// over `initial`. Decay is guarded so it cannot destroy accuracy: every
/// back-off doubles the number of consecutive successes required before
/// the next decay step, so any oscillation around the true delay bound
/// dies off geometrically and the timeout converges above the bound.
///
/// # Example
///
/// ```
/// use qsel_detector::TimeoutPolicy;
/// use qsel_simnet::SimDuration;
///
/// let mut t = TimeoutPolicy::new(SimDuration::millis(1), SimDuration::secs(10));
/// assert_eq!(t.current(), SimDuration::millis(1));
/// t.back_off();
/// assert_eq!(t.current(), SimDuration::millis(2));
/// ```
#[derive(Clone, Debug)]
pub struct TimeoutPolicy {
    initial: SimDuration,
    current: SimDuration,
    cap: SimDuration,
    back_offs: u32,
    /// Consecutive on-time fulfilments since the last back-off or decay.
    streak: u32,
}

impl TimeoutPolicy {
    /// Creates a policy starting at `initial`, never exceeding `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds `cap`.
    pub fn new(initial: SimDuration, cap: SimDuration) -> Self {
        assert!(initial > SimDuration::ZERO, "timeout must be positive");
        assert!(initial <= cap, "initial timeout exceeds cap");
        TimeoutPolicy {
            initial,
            current: initial,
            cap,
            back_offs: 0,
            streak: 0,
        }
    }

    /// The current timeout Δ.
    pub fn current(&self) -> SimDuration {
        self.current
    }

    /// The configured floor the timeout can never decay below.
    pub fn initial(&self) -> SimDuration {
        self.initial
    }

    /// Doubles the timeout (capped); called when a suspicion against this
    /// peer turns out false. Resets the success streak — and, by growing
    /// the streak requirement (see [`TimeoutPolicy::record_success`]),
    /// makes future decay steps harder to earn.
    pub fn back_off(&mut self) {
        self.back_offs += 1;
        self.streak = 0;
        self.current = self.current.saturating_mul(2).min(self.cap);
    }

    /// Records an on-time fulfilment. After `2^back_offs` consecutive
    /// successes (capped at `2^16`), the excess of the timeout over
    /// `initial` is halved — multiplicative shrink toward, and never
    /// below, `initial`.
    pub fn record_success(&mut self) {
        if self.current == self.initial {
            self.streak = 0;
            return;
        }
        self.streak += 1;
        let needed = 1u32 << self.back_offs.min(16);
        if self.streak < needed {
            return;
        }
        self.streak = 0;
        let excess = self.current.as_micros() - self.initial.as_micros();
        self.current = SimDuration::micros(self.initial.as_micros() + excess / 2);
    }

    /// How many times this peer caused a back-off.
    pub fn back_off_count(&self) -> u32 {
        self.back_offs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let mut t = TimeoutPolicy::new(SimDuration::micros(100), SimDuration::micros(350));
        t.back_off();
        assert_eq!(t.current(), SimDuration::micros(200));
        t.back_off();
        assert_eq!(t.current(), SimDuration::micros(350)); // capped
        t.back_off();
        assert_eq!(t.current(), SimDuration::micros(350));
        assert_eq!(t.back_off_count(), 3);
    }

    #[test]
    fn success_decay_never_goes_below_initial() {
        let initial = SimDuration::millis(1);
        let mut t = TimeoutPolicy::new(initial, SimDuration::secs(60));
        for _ in 0..3 {
            t.back_off();
        }
        assert_eq!(t.current(), SimDuration::millis(8));
        for _ in 0..10_000 {
            t.record_success();
            assert!(t.current() >= initial, "decayed below the floor");
        }
        assert_eq!(t.current(), initial, "sustained successes reach the floor");
        // At the floor, further successes are no-ops.
        t.record_success();
        assert_eq!(t.current(), initial);
    }

    #[test]
    fn decay_requires_a_streak_that_doubles_with_back_offs() {
        let mut t = TimeoutPolicy::new(SimDuration::millis(1), SimDuration::secs(60));
        t.back_off();
        t.back_off(); // 4ms; two back-offs → 4 consecutive successes per step
        assert_eq!(t.current(), SimDuration::millis(4));
        for _ in 0..3 {
            t.record_success();
            assert_eq!(t.current(), SimDuration::millis(4), "streak not yet earned");
        }
        t.record_success();
        // Excess over initial halves: 1ms + 3ms/2 = 2.5ms.
        assert_eq!(t.current(), SimDuration::micros(2_500));
        // A back-off resets the streak: three successes after it change nothing
        // (requirement is now 8).
        t.back_off();
        let after = t.current();
        for _ in 0..7 {
            t.record_success();
        }
        assert_eq!(t.current(), after);
    }

    #[test]
    fn converges_above_true_delay_bound_after_gst() {
        // Closed-loop model of one peer after GST: the network's true delay
        // bound is D. An expectation armed with `current < D` is fulfilled
        // late (false suspicion → back_off); one armed with `current >= D`
        // is fulfilled on time (record_success). The streak guard makes
        // decay-induced false suspicions geometrically rarer, so the
        // timeout settles above D instead of oscillating around it.
        let d = SimDuration::millis(10);
        let mut t = TimeoutPolicy::new(SimDuration::millis(1), SimDuration::secs(60));
        const ROUNDS: usize = 50_000;
        let mut late_in_last_quarter = 0u32;
        for round in 0..ROUNDS {
            if t.current() < d {
                if round >= ROUNDS * 3 / 4 {
                    late_in_last_quarter += 1;
                }
                t.back_off();
            } else {
                t.record_success();
            }
        }
        assert_eq!(late_in_last_quarter, 0, "false suspicions persisted");
        assert!(t.current() >= d, "converged below the delay bound");
        assert!(
            t.current() <= d.saturating_mul(4),
            "converged without tracking the bound: {:?}",
            t.current()
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_initial_rejected() {
        let _ = TimeoutPolicy::new(SimDuration::ZERO, SimDuration::secs(1));
    }

    #[test]
    #[should_panic(expected = "exceeds cap")]
    fn initial_above_cap_rejected() {
        let _ = TimeoutPolicy::new(SimDuration::secs(2), SimDuration::secs(1));
    }
}
