//! Adaptive per-peer timeouts.

use qsel_simnet::SimDuration;

/// Per-peer adaptive timeout with exponential back-off on false suspicion.
///
/// Timing failures cannot be detected in an asynchronous system (paper
/// §II); in an eventually-synchronous one, *increasing* timing failures can
/// be detected eventually. The back-off realises the other direction of
/// that argument: every falsely-suspected correct peer doubles its timeout,
/// so after GST the timeout eventually exceeds the true delay bound and
/// false suspicions stop — giving eventual strong accuracy.
///
/// # Example
///
/// ```
/// use qsel_detector::TimeoutPolicy;
/// use qsel_simnet::SimDuration;
///
/// let mut t = TimeoutPolicy::new(SimDuration::millis(1), SimDuration::secs(10));
/// assert_eq!(t.current(), SimDuration::millis(1));
/// t.back_off();
/// assert_eq!(t.current(), SimDuration::millis(2));
/// ```
#[derive(Clone, Debug)]
pub struct TimeoutPolicy {
    current: SimDuration,
    cap: SimDuration,
    back_offs: u32,
}

impl TimeoutPolicy {
    /// Creates a policy starting at `initial`, never exceeding `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is zero or exceeds `cap`.
    pub fn new(initial: SimDuration, cap: SimDuration) -> Self {
        assert!(initial > SimDuration::ZERO, "timeout must be positive");
        assert!(initial <= cap, "initial timeout exceeds cap");
        TimeoutPolicy {
            current: initial,
            cap,
            back_offs: 0,
        }
    }

    /// The current timeout Δ.
    pub fn current(&self) -> SimDuration {
        self.current
    }

    /// Doubles the timeout (capped); called when a suspicion against this
    /// peer turns out false.
    pub fn back_off(&mut self) {
        self.back_offs += 1;
        self.current = self.current.saturating_mul(2).min(self.cap);
    }

    /// How many times this peer caused a back-off.
    pub fn back_off_count(&self) -> u32 {
        self.back_offs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubles_until_cap() {
        let mut t = TimeoutPolicy::new(SimDuration::micros(100), SimDuration::micros(350));
        t.back_off();
        assert_eq!(t.current(), SimDuration::micros(200));
        t.back_off();
        assert_eq!(t.current(), SimDuration::micros(350)); // capped
        t.back_off();
        assert_eq!(t.current(), SimDuration::micros(350));
        assert_eq!(t.back_off_count(), 3);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_initial_rejected() {
        let _ = TimeoutPolicy::new(SimDuration::ZERO, SimDuration::secs(1));
    }

    #[test]
    #[should_panic(expected = "exceeds cap")]
    fn initial_above_cap_rejected() {
        let _ = TimeoutPolicy::new(SimDuration::secs(2), SimDuration::secs(1));
    }
}
