//! Expectation-based Byzantine failure detection (Section IV-B of the
//! paper).
//!
//! As argued by Doudou et al. and adopted by the paper, failure detection
//! under Byzantine faults cannot be application-independent. This module
//! therefore *does not know the protocol*: the application tells the
//! detector which messages it **expects** (`⟨EXPECT, P, i⟩`), reports
//! application-detected commission failures (`⟨DETECTED, i⟩`), and may
//! **cancel** outstanding expectations (`⟨CANCEL⟩`). The detector delivers
//! received messages (`⟨DELIVER, m, i⟩`) and publishes the set of currently
//! suspected processes (`⟨SUSPECTED, S⟩`).
//!
//! # Properties (paper §IV-B1)
//!
//! * **Expectation completeness** — an uncancelled expectation either gets
//!   a matching delivery or the sender is eventually suspected: enforced by
//!   deadline timers ([`FailureDetector::poll`]).
//! * **Detection completeness** — an application-reported detection pins a
//!   *permanent* suspicion.
//! * **Eventual strong accuracy** — after the network stabilizes, correct
//!   processes stop suspecting each other: achieved with adaptive per-peer
//!   timeouts that back off every time a suspicion proves false (the
//!   expected message arrives late), so that post-GST the timeout
//!   eventually exceeds the real round-trip bound.
//!
//! The detector is a sans-io state machine: the host (see `qsel::node`)
//! feeds it receptions and the current time, and forwards its outputs.
//!
//! # Example
//!
//! ```
//! use qsel_detector::{FailureDetector, FdConfig, FdOutput};
//! use qsel_simnet::{SimDuration, SimTime};
//! use qsel_types::ProcessId;
//!
//! let mut fd: FailureDetector<&'static str> =
//!     FailureDetector::new(ProcessId(1), 3, FdConfig::default());
//! let t0 = SimTime::ZERO;
//! fd.expect(t0, ProcessId(2), "commit", |m| *m == "commit");
//!
//! // Nothing arrives; past the deadline p2 becomes suspected:
//! let late = t0 + SimDuration::secs(60);
//! let out = fd.poll(late);
//! assert!(matches!(&out[..], [FdOutput::Suspected(s)] if s.contains(ProcessId(2))));
//!
//! // The message finally arrives: delivered, and the suspicion is
//! // cancelled (eventual detection of repeated offenders only).
//! let out = fd.on_receive(late, ProcessId(2), "commit");
//! assert_eq!(out.len(), 2);
//! assert!(!fd.is_suspected(ProcessId(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod timeout;

pub use detector::{FailureDetector, FdConfig, FdOutput, FdStats};
pub use timeout::TimeoutPolicy;
