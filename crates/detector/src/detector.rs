//! The failure-detector state machine.

use std::fmt;

use qsel_obs::{TraceEvent, TraceSink};
use qsel_simnet::{SimDuration, SimTime};
use qsel_types::{ProcessId, ProcessSet};

use crate::timeout::TimeoutPolicy;

/// Configuration of a [`FailureDetector`].
#[derive(Clone, Debug)]
pub struct FdConfig {
    /// Initial expectation timeout Δ per peer.
    pub initial_timeout: SimDuration,
    /// Upper bound for the adaptive timeout.
    pub timeout_cap: SimDuration,
    /// Whether late fulfilment backs off the peer's timeout. Disabling
    /// this (ablation) loses eventual strong accuracy on
    /// eventually-synchronous networks — see experiment E-ABL.
    pub adaptive: bool,
}

impl Default for FdConfig {
    /// 1ms initial timeout, 60s cap — suitable for the default LAN-like
    /// delay model of `qsel-simnet` (50–150µs per hop).
    fn default() -> Self {
        FdConfig {
            initial_timeout: SimDuration::millis(1),
            timeout_cap: SimDuration::secs(60),
            adaptive: true,
        }
    }
}

/// Output events of the failure detector (paper §IV-B).
#[derive(Debug)]
pub enum FdOutput<M> {
    /// `⟨DELIVER, m, i⟩` — a correctly authenticated message from `from`
    /// is passed up to the application / quorum-selection module.
    Deliver {
        /// Original sender.
        from: ProcessId,
        /// The message.
        msg: M,
    },
    /// `⟨SUSPECTED, S⟩` — the set of currently suspected processes
    /// changed; `S` is the complete new set.
    Suspected(ProcessSet),
}

/// Counters describing detector behaviour (used by experiment E9).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FdStats {
    /// Expirations per expectation label (diagnosis aid).
    pub expired_by_label: std::collections::BTreeMap<&'static str, u64>,
    /// The first expirations, with time / peer / label (diagnosis aid;
    /// capped at 256 entries).
    pub expiry_log: Vec<(SimTime, ProcessId, &'static str)>,
    /// Expectations issued.
    pub expectations_issued: u64,
    /// Expectations satisfied by a matching delivery before their deadline.
    pub expectations_met: u64,
    /// Expectations that expired (each expiry raises / keeps a suspicion).
    pub expectations_expired: u64,
    /// Expectations removed by `⟨CANCEL⟩`.
    pub expectations_cancelled: u64,
    /// Suspicions raised (a peer entering the suspected set).
    pub suspicions_raised: u64,
    /// Suspicions cancelled (a peer leaving the suspected set — a false or
    /// stale suspicion, triggering timeout back-off).
    pub suspicions_cancelled: u64,
    /// Permanent detections reported by the application.
    pub detections: u64,
}

struct Expectation<M> {
    from: ProcessId,
    deadline: SimTime,
    expired: bool,
    label: &'static str,
    pred: Box<dyn Fn(&M) -> bool>,
}

impl<M> fmt::Debug for Expectation<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Expectation")
            .field("from", &self.from)
            .field("deadline", &self.deadline)
            .field("expired", &self.expired)
            .field("label", &self.label)
            .finish()
    }
}

/// The failure-detector module of one process (Fig. 1 of the paper).
///
/// See the [crate documentation](crate) for the event model and an example.
pub struct FailureDetector<M> {
    me: ProcessId,
    expectations: Vec<Expectation<M>>,
    timeouts: Vec<TimeoutPolicy>,
    adaptive: bool,
    detected: ProcessSet,
    last_published: ProcessSet,
    stats: FdStats,
    trace: TraceSink,
}

impl<M> FailureDetector<M> {
    /// Creates the detector for process `me` in a cluster of `n` processes.
    pub fn new(me: ProcessId, n: u32, cfg: FdConfig) -> Self {
        FailureDetector {
            me,
            expectations: Vec::new(),
            timeouts: (0..n)
                .map(|_| TimeoutPolicy::new(cfg.initial_timeout, cfg.timeout_cap))
                .collect(),
            adaptive: cfg.adaptive,
            detected: ProcessSet::new(),
            last_published: ProcessSet::new(),
            stats: FdStats::default(),
            trace: TraceSink::disabled(),
        }
    }

    /// Installs a trace sink (typically a clone of the simulation's, so
    /// events carry the ambient simulated time).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The owning process.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// `⟨EXPECT, P, i⟩` — the application expects a message satisfying
    /// `pred` from `from`. The deadline is `now` plus the current adaptive
    /// timeout for `from`. `label` names the expectation in debug output.
    pub fn expect(
        &mut self,
        now: SimTime,
        from: ProcessId,
        label: &'static str,
        pred: impl Fn(&M) -> bool + 'static,
    ) {
        self.expect_with_min(now, from, SimDuration::ZERO, label, pred);
    }

    /// Like [`FailureDetector::expect`], but with a floor on the timeout:
    /// the deadline is `now + max(adaptive, min_timeout)`. Use this for
    /// expectations whose fulfilment spans a multi-round sub-protocol
    /// (e.g. a view change), where the per-hop adaptive timeout would
    /// violate the §IV-B accuracy requirement of only expecting what a
    /// correct process sends within two communication rounds.
    pub fn expect_with_min(
        &mut self,
        now: SimTime,
        from: ProcessId,
        min_timeout: SimDuration,
        label: &'static str,
        pred: impl Fn(&M) -> bool + 'static,
    ) {
        self.stats.expectations_issued += 1;
        let timeout = self.timeouts[from.index()].current().max(min_timeout);
        self.expectations.push(Expectation {
            from,
            deadline: now + timeout,
            expired: false,
            label,
            pred: Box::new(pred),
        });
    }

    /// `⟨CANCEL⟩` — drops all outstanding expectations (met or not) and
    /// retracts the suspicions they caused. Expired expectations whose
    /// message never arrived do *not* back off the timeout (nothing proved
    /// the suspicion false).
    pub fn cancel_all(&mut self, _now: SimTime) -> Vec<FdOutput<M>> {
        self.stats.expectations_cancelled += self.expectations.len() as u64;
        self.expectations.clear();
        self.publish_if_changed()
    }

    /// `⟨RECEIVE, m, i⟩` — a correctly authenticated message arrived from
    /// `from`. Always emits a [`FdOutput::Deliver`]; additionally resolves
    /// matching expectations and retracts suspicions they caused. A match
    /// for an *expired* expectation is a late message: the suspicion was
    /// false, so the timeout for `from` backs off. An on-time match feeds
    /// [`TimeoutPolicy::record_success`], letting a timeout inflated by
    /// pre-GST chaos decay back toward its floor once the peer proves
    /// responsive again.
    pub fn on_receive(&mut self, _now: SimTime, from: ProcessId, msg: M) -> Vec<FdOutput<M>> {
        let mut late_match = false;
        let mut met = 0u64;
        self.expectations.retain(|e| {
            if e.from == from && (e.pred)(&msg) {
                if e.expired {
                    late_match = true;
                }
                met += 1;
                false
            } else {
                true
            }
        });
        self.stats.expectations_met += met;
        if self.adaptive {
            if late_match {
                self.timeouts[from.index()].back_off();
            } else if met > 0 {
                self.timeouts[from.index()].record_success();
            }
        }
        let mut out = vec![FdOutput::Deliver { from, msg }];
        out.extend(self.publish_if_changed());
        out
    }

    /// Advances time: marks expectations past their deadline as expired and
    /// publishes the new suspicion set if it changed. The host should call
    /// this at (or after) [`FailureDetector::next_deadline`].
    pub fn poll(&mut self, now: SimTime) -> Vec<FdOutput<M>> {
        for e in &mut self.expectations {
            if !e.expired && e.deadline <= now {
                e.expired = true;
                self.stats.expectations_expired += 1;
                *self.stats.expired_by_label.entry(e.label).or_insert(0) += 1;
                if self.stats.expiry_log.len() < 256 {
                    self.stats.expiry_log.push((now, e.from, e.label));
                }
            }
        }
        self.publish_if_changed()
    }

    /// `⟨DETECTED, i⟩` — the application found proof that `who` is faulty
    /// (commission failure); `who` is suspected permanently (detection
    /// completeness).
    pub fn detected(&mut self, _now: SimTime, who: ProcessId) -> Vec<FdOutput<M>> {
        if self.detected.insert(who) {
            self.stats.detections += 1;
        }
        self.publish_if_changed()
    }

    /// The earliest outstanding expectation deadline, if any — the next
    /// instant at which [`FailureDetector::poll`] could change the
    /// suspicion set.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.expectations
            .iter()
            .filter(|e| !e.expired)
            .map(|e| e.deadline)
            .min()
    }

    /// The current suspicion set: permanently detected processes plus every
    /// peer with an expired outstanding expectation.
    pub fn suspected_set(&self) -> ProcessSet {
        let mut s = self.detected;
        for e in &self.expectations {
            if e.expired {
                s.insert(e.from);
            }
        }
        s
    }

    /// Whether `p` is currently suspected.
    pub fn is_suspected(&self, p: ProcessId) -> bool {
        self.suspected_set().contains(p)
    }

    /// Processes permanently detected as faulty by the application.
    pub fn detected_set(&self) -> ProcessSet {
        self.detected
    }

    /// Number of outstanding (uncancelled, unmet) expectations.
    pub fn pending_expectations(&self) -> usize {
        self.expectations.len()
    }

    /// The adaptive timeout currently applied to `peer`.
    pub fn current_timeout(&self, peer: ProcessId) -> SimDuration {
        self.timeouts[peer.index()].current()
    }

    /// Behaviour counters.
    pub fn stats(&self) -> FdStats {
        self.stats.clone()
    }

    fn publish_if_changed(&mut self) -> Vec<FdOutput<M>> {
        let now_set = self.suspected_set();
        if now_set == self.last_published {
            return Vec::new();
        }
        let raised = now_set.difference(&self.last_published).len() as u64;
        let cancelled = self.last_published.difference(&now_set).len() as u64;
        self.stats.suspicions_raised += raised;
        self.stats.suspicions_cancelled += cancelled;
        self.last_published = now_set;
        self.trace.emit(|| TraceEvent::SuspicionChanged {
            p: self.me.0,
            suspected: now_set.iter().map(|p| p.0).collect(),
        });
        vec![FdOutput::Suspected(now_set)]
    }
}

impl<M> fmt::Debug for FailureDetector<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailureDetector")
            .field("me", &self.me)
            .field("expectations", &self.expectations)
            .field("detected", &self.detected)
            .field("suspected", &self.suspected_set())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Fd = FailureDetector<&'static str>;

    fn fd() -> Fd {
        FailureDetector::new(ProcessId(1), 4, FdConfig::default())
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::millis(ms)
    }

    fn suspected_events(out: &[FdOutput<&'static str>]) -> Vec<ProcessSet> {
        out.iter()
            .filter_map(|o| match o {
                FdOutput::Suspected(s) => Some(*s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn delivery_without_expectation() {
        let mut fd = fd();
        let out = fd.on_receive(t(0), ProcessId(2), "hello");
        assert!(matches!(
            &out[..],
            [FdOutput::Deliver { from, msg }] if *from == ProcessId(2) && *msg == "hello"
        ));
        assert!(fd.suspected_set().is_empty());
    }

    #[test]
    fn expectation_met_in_time() {
        let mut fd = fd();
        fd.expect(t(0), ProcessId(2), "commit", |m| *m == "commit");
        assert_eq!(fd.pending_expectations(), 1);
        let out = fd.on_receive(t(0), ProcessId(2), "commit");
        assert_eq!(out.len(), 1); // just the delivery, no suspicion change
        assert_eq!(fd.pending_expectations(), 0);
        assert_eq!(fd.stats().expectations_met, 1);
        assert!(fd.poll(t(1000)).is_empty());
        assert!(fd.suspected_set().is_empty());
    }

    #[test]
    fn non_matching_message_does_not_fulfil() {
        let mut fd = fd();
        fd.expect(t(0), ProcessId(2), "commit", |m| *m == "commit");
        fd.on_receive(t(0), ProcessId(2), "gossip");
        assert_eq!(fd.pending_expectations(), 1);
        // Matching message from the wrong sender does not fulfil either:
        fd.on_receive(t(0), ProcessId(3), "commit");
        assert_eq!(fd.pending_expectations(), 1);
    }

    #[test]
    fn expectation_completeness_suspects_on_timeout() {
        let mut fd = fd();
        fd.expect(t(0), ProcessId(2), "commit", |m| *m == "commit");
        // Before the deadline: no suspicion.
        assert!(fd.poll(t(0)).is_empty());
        // After the deadline (default initial timeout 1ms):
        let out = fd.poll(t(2));
        let sets = suspected_events(&out);
        assert_eq!(sets.len(), 1);
        assert!(sets[0].contains(ProcessId(2)));
        assert_eq!(fd.stats().expectations_expired, 1);
        assert_eq!(fd.stats().suspicions_raised, 1);
    }

    #[test]
    fn late_message_cancels_suspicion_and_backs_off() {
        let mut fd = fd();
        let before = fd.current_timeout(ProcessId(2));
        fd.expect(t(0), ProcessId(2), "commit", |m| *m == "commit");
        fd.poll(t(2));
        assert!(fd.is_suspected(ProcessId(2)));
        let out = fd.on_receive(t(3), ProcessId(2), "commit");
        let sets = suspected_events(&out);
        assert_eq!(sets.len(), 1);
        assert!(sets[0].is_empty());
        assert!(fd.current_timeout(ProcessId(2)) > before, "timeout backed off");
        assert_eq!(fd.stats().suspicions_cancelled, 1);
    }

    #[test]
    fn eventual_detection_raise_cancel_cycle() {
        // A peer that is repeatedly late is suspected and un-suspected over
        // and over (eventual detection), with growing timeouts.
        let mut fd = fd();
        let mut raised = 0;
        let mut clock = t(0);
        for _ in 0..5 {
            fd.expect(clock, ProcessId(3), "hb", |m| *m == "hb");
            let deadline = fd.next_deadline().unwrap();
            clock = deadline + SimDuration::millis(1);
            let out = fd.poll(clock);
            raised += suspected_events(&out).len();
            fd.on_receive(clock, ProcessId(3), "hb");
        }
        assert_eq!(raised, 5);
        assert_eq!(fd.stats().suspicions_raised, 5);
        assert_eq!(fd.stats().suspicions_cancelled, 5);
        // Timeout doubled five times: 1ms → 32ms.
        assert_eq!(fd.current_timeout(ProcessId(3)), SimDuration::millis(32));
    }

    #[test]
    fn detection_is_permanent() {
        let mut fd = fd();
        let out = fd.detected(t(0), ProcessId(4));
        assert_eq!(suspected_events(&out).len(), 1);
        // Deliveries do not clear it; cancel does not clear it.
        fd.on_receive(t(1), ProcessId(4), "anything");
        fd.cancel_all(t(1));
        assert!(fd.is_suspected(ProcessId(4)));
        // Re-detection is idempotent.
        let out = fd.detected(t(2), ProcessId(4));
        assert!(out.is_empty());
        assert_eq!(fd.stats().detections, 1);
    }

    #[test]
    fn cancel_clears_expectations_and_suspicions() {
        let mut fd = fd();
        fd.expect(t(0), ProcessId(2), "a", |m| *m == "a");
        fd.expect(t(0), ProcessId(3), "b", |m| *m == "b");
        fd.poll(t(5));
        assert_eq!(fd.suspected_set().len(), 2);
        let out = fd.cancel_all(t(5));
        let sets = suspected_events(&out);
        assert_eq!(sets.len(), 1);
        assert!(sets[0].is_empty());
        assert_eq!(fd.pending_expectations(), 0);
        assert_eq!(fd.stats().expectations_cancelled, 2);
        // Cancel without proof of falseness must not back off timeouts.
        assert_eq!(fd.current_timeout(ProcessId(2)), SimDuration::millis(1));
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let mut fd = fd();
        assert_eq!(fd.next_deadline(), None);
        fd.expect(t(0), ProcessId(2), "a", |m| *m == "a");
        fd.expect(t(5), ProcessId(3), "b", |m| *m == "b");
        assert_eq!(fd.next_deadline(), Some(t(1)));
        fd.poll(t(2)); // first expires
        assert_eq!(fd.next_deadline(), Some(t(6)));
    }

    #[test]
    fn multiple_expectations_same_peer() {
        let mut fd = fd();
        fd.expect(t(0), ProcessId(2), "a", |m| *m == "a");
        fd.expect(t(0), ProcessId(2), "b", |m| *m == "b");
        fd.poll(t(2));
        assert!(fd.is_suspected(ProcessId(2)));
        // Meeting only one of the two keeps the suspicion (the other is
        // still outstanding and expired).
        let out = fd.on_receive(t(3), ProcessId(2), "a");
        assert!(suspected_events(&out).is_empty());
        assert!(fd.is_suspected(ProcessId(2)));
        // Meeting the second clears it.
        let out = fd.on_receive(t(3), ProcessId(2), "b");
        assert_eq!(suspected_events(&out).len(), 1);
        assert!(!fd.is_suspected(ProcessId(2)));
    }

    #[test]
    fn one_message_can_meet_multiple_expectations() {
        let mut fd = fd();
        fd.expect(t(0), ProcessId(2), "any", |_| true);
        fd.expect(t(0), ProcessId(2), "exact", |m| *m == "x");
        fd.on_receive(t(0), ProcessId(2), "x");
        assert_eq!(fd.pending_expectations(), 0);
        assert_eq!(fd.stats().expectations_met, 2);
    }

    #[test]
    fn debug_formatting_is_nonempty() {
        let mut fd = fd();
        fd.expect(t(0), ProcessId(2), "commit", |m| *m == "commit");
        let dbg = format!("{fd:?}");
        assert!(dbg.contains("commit"));
        assert!(dbg.contains("FailureDetector"));
    }
}
