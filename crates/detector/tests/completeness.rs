//! Property tests for the failure detector's §IV-B contracts, driven by
//! random operation sequences.

use proptest::prelude::*;
use qsel_detector::{FailureDetector, FdConfig};
use qsel_simnet::{SimDuration, SimTime};
use qsel_types::{ProcessId, ProcessSet};

#[derive(Clone, Debug)]
enum Op {
    /// Expect message `tag` from peer.
    Expect(u32, u8),
    /// Receive message `tag` from peer.
    Receive(u32, u8),
    /// Application-level detection of peer.
    Detected(u32),
    /// Cancel all expectations.
    Cancel,
    /// Advance time by millis and poll.
    Advance(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (2u32..=5, any::<u8>()).prop_map(|(p, t)| Op::Expect(p, t % 4)),
        (2u32..=5, any::<u8>()).prop_map(|(p, t)| Op::Receive(p, t % 4)),
        (2u32..=5u32).prop_map(Op::Detected),
        Just(Op::Cancel),
        (1u8..5).prop_map(Op::Advance),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Invariants maintained across arbitrary op sequences:
    /// * expectation completeness — an unmet, uncancelled expectation whose
    ///   deadline passed keeps its sender suspected;
    /// * detection completeness — detected processes stay suspected forever;
    /// * accuracy bookkeeping — suspected ⊆ detected ∪ {peers with expired
    ///   outstanding expectations}.
    #[test]
    fn detector_contracts(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut fd: FailureDetector<u8> =
            FailureDetector::new(ProcessId(1), 5, FdConfig::default());
        let mut now = SimTime::ZERO;
        let mut detected: ProcessSet = ProcessSet::new();
        // Outstanding expectations we injected: (peer, tag, deadline).
        let mut outstanding: Vec<(u32, u8, SimTime)> = Vec::new();

        for op in ops {
            match op {
                Op::Expect(p, t) => {
                    let deadline = now + fd.current_timeout(ProcessId(p));
                    fd.expect(now, ProcessId(p), "m", move |m| *m == t);
                    outstanding.push((p, t, deadline));
                }
                Op::Receive(p, t) => {
                    fd.on_receive(now, ProcessId(p), t);
                    outstanding.retain(|&(op_, ot, _)| !(op_ == p && ot == t));
                }
                Op::Detected(p) => {
                    fd.detected(now, ProcessId(p));
                    detected.insert(ProcessId(p));
                }
                Op::Cancel => {
                    fd.cancel_all(now);
                    outstanding.clear();
                }
                Op::Advance(ms) => {
                    now = now + SimDuration::millis(u64::from(ms));
                    fd.poll(now);
                }
            }

            let suspected = fd.suspected_set();
            // Detection completeness.
            for d in detected.iter() {
                prop_assert!(suspected.contains(d), "detected {d} not suspected");
            }
            // Expectation completeness (after the deadline has been polled).
            for &(p, _, deadline) in &outstanding {
                if deadline < now {
                    prop_assert!(
                        suspected.contains(ProcessId(p)),
                        "expired expectation on p{p} (deadline {deadline}, now {now}) not suspected"
                    );
                }
            }
            // Upper bound: no spurious members.
            for s in suspected.iter() {
                let justified = detected.contains(s)
                    || outstanding.iter().any(|&(p, _, d)| ProcessId(p) == s && d <= now);
                prop_assert!(justified, "suspicion of {s} has no cause");
            }
        }
    }

    /// The adaptive timeout is monotone non-decreasing and only grows via
    /// proven-false suspicions.
    #[test]
    fn timeouts_grow_monotonically(rounds in 1usize..10) {
        let mut fd: FailureDetector<u8> =
            FailureDetector::new(ProcessId(1), 3, FdConfig::default());
        let mut now = SimTime::ZERO;
        let mut last = fd.current_timeout(ProcessId(2));
        for _ in 0..rounds {
            fd.expect(now, ProcessId(2), "m", |m| *m == 1);
            now = now + last + SimDuration::millis(1);
            fd.poll(now);
            fd.on_receive(now, ProcessId(2), 1); // late → back off
            let cur = fd.current_timeout(ProcessId(2));
            prop_assert!(cur >= last);
            prop_assert!(cur <= last.saturating_mul(2));
            last = cur;
        }
    }
}
