//! Central quorum-threshold arithmetic.
//!
//! Every `f + 1` / `2f + 1` / `n − f` style comparison in the protocol
//! crates must go through these helpers. Hand-written threshold math is
//! the classic off-by-one quorum bug class (a quorum of `f` instead of
//! `f + 1` silently loses the intersection argument behind the paper's
//! Theorems 3 and 9), so the P2 lint in `qsel-lint` flags raw threshold
//! arithmetic everywhere *except* this module and tests.
//!
//! The helpers are deliberately tiny, total over their stated domains,
//! and named after the protocol obligation they encode rather than the
//! formula, so call sites read as the invariant they enforce:
//!
//! ```
//! use qsel_types::thresholds;
//! // n = 5, f = 2: a quorum is 3 processes and intersects every other
//! // quorum in at least one correct process.
//! assert_eq!(thresholds::quorum_size(5, 2), 3);
//! assert!(thresholds::has_correct_majority(5, 2));
//! // A client needs f + 1 matching replies before trusting a result.
//! assert!(!thresholds::reply_quorum_reached(2, 2));
//! assert!(thresholds::reply_quorum_reached(2, 3));
//! ```

/// Quorum size `q = n − f` (the paper's Algorithm 1 assumes `f + q = |Π|`).
#[inline]
pub fn quorum_size(n: u32, f: u32) -> u32 {
    debug_assert!(f < n, "quorum_size requires f < n");
    n - f
}

/// The paper's correct-majority assumption: `n − f > f`, i.e. any quorum
/// of `n − f` processes contains a majority of correct ones.
#[inline]
pub fn has_correct_majority(n: u32, f: u32) -> bool {
    f < n && n - f > f
}

/// Whether the fault bound even fits the cluster (`f < n`). Violations get
/// a dedicated configuration error before majority checking.
#[inline]
pub fn fault_bound_fits(n: u32, f: u32) -> bool {
    f < n
}

/// Whether the cluster satisfies the Follower Selection assumption
/// `|Π| > 3f` of the paper's Section VIII.
#[inline]
pub fn supports_follower_selection(n: u32, f: u32) -> bool {
    n > 3 * f
}

/// Whether a configuration tolerates at least one fault. Selection
/// algorithms that rotate suspects out of the quorum are vacuous (and
/// divide by zero conceptually) when `f = 0`.
#[inline]
pub fn tolerates_faults(f: u32) -> bool {
    f >= 1
}

/// Minimum number of matching client replies that guarantee at least one
/// *correct* replica executed the operation: `f + 1`.
#[inline]
pub fn reply_quorum(f: u32) -> usize {
    f as usize + 1
}

/// Whether `matching` distinct replicas reported the same result, enough
/// to commit on the client (`matching ≥ f + 1`).
#[inline]
pub fn reply_quorum_reached(f: u32, matching: usize) -> bool {
    matching >= reply_quorum(f)
}

/// Number of distinct signers that make a checkpoint certificate
/// self-certifying: `f + 1` signatures over the same digest pin at least
/// one correct replica behind the checkpoint.
#[inline]
pub fn checkpoint_quorum(f: u32) -> usize {
    f as usize + 1
}

/// Whether a checkpoint certificate with `signers` distinct signatures is
/// complete (`signers ≥ f + 1`).
#[inline]
pub fn checkpoint_cert_complete(f: u32, signers: usize) -> bool {
    signers >= checkpoint_quorum(f)
}

/// PBFT prepared threshold generalized to `m` participants: the replica
/// needs `m − f − 1` matching prepares from *others* (the pre-prepare
/// stands in for the primary's prepare). For the textbook `m = n = 3f+1`
/// this is the familiar `2f`.
#[inline]
pub fn pbft_prepare_quorum(participants: usize, f: u32) -> usize {
    debug_assert!(participants > f as usize, "prepare quorum requires m > f");
    participants - f as usize - 1
}

/// PBFT committed threshold generalized to `m` participants: `m − f`
/// matching commits (own commit included). For `m = n = 3f+1` this is the
/// familiar `2f + 1`.
#[inline]
pub fn pbft_commit_quorum(participants: usize, f: u32) -> usize {
    debug_assert!(participants > f as usize, "commit quorum requires m > f");
    participants - f as usize
}

/// Whether `answers` covers every peer of an `n`-process cluster, i.e.
/// all `n − 1` other processes responded. Used by the synchronization
/// read phase, which (unlike quorum collection) must hear from everyone
/// it asked before concluding a round.
#[inline]
pub fn all_peers_answered(n: u32, answers: u32) -> bool {
    answers == n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_arithmetic() {
        assert_eq!(quorum_size(5, 2), 3);
        assert_eq!(quorum_size(3, 1), 2);
        assert!(has_correct_majority(3, 1));
        assert!(!has_correct_majority(2, 1));
        assert!(!has_correct_majority(4, 2));
        assert!(!has_correct_majority(2, 3)); // f >= n is never a majority
        assert!(supports_follower_selection(7, 2));
        assert!(!supports_follower_selection(6, 2));
        assert!(tolerates_faults(1));
        assert!(!tolerates_faults(0));
        assert!(fault_bound_fits(3, 1));
        assert!(!fault_bound_fits(3, 3));
    }

    #[test]
    fn reply_and_checkpoint_quorums() {
        assert_eq!(reply_quorum(0), 1);
        assert_eq!(reply_quorum(2), 3);
        assert!(reply_quorum_reached(1, 2));
        assert!(!reply_quorum_reached(1, 1));
        assert_eq!(checkpoint_quorum(2), 3);
        assert!(checkpoint_cert_complete(2, 3));
        assert!(checkpoint_cert_complete(2, 4));
        assert!(!checkpoint_cert_complete(2, 2));
    }

    #[test]
    fn pbft_thresholds_match_textbook() {
        // n = 3f + 1 = 4, f = 1: 2f = 2 prepares, 2f + 1 = 3 commits.
        assert_eq!(pbft_prepare_quorum(4, 1), 2);
        assert_eq!(pbft_commit_quorum(4, 1), 3);
        // Reduced participation m = 3 of n = 4 still needs f-resilient counts.
        assert_eq!(pbft_prepare_quorum(3, 1), 1);
        assert_eq!(pbft_commit_quorum(3, 1), 2);
    }

    #[test]
    fn peer_coverage() {
        assert!(all_peers_answered(3, 2));
        assert!(!all_peers_answered(3, 1));
        assert!(!all_peers_answered(3, 3));
    }
}
