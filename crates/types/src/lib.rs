//! Shared vocabulary types for the Quorum Selection reproduction.
//!
//! This crate contains the types every other crate in the workspace speaks:
//!
//! * [`ProcessId`] — a process `p_i` from the paper's `Π = {p_1, …, p_n}`.
//! * [`ClusterConfig`] — the `(n, f, q)` triple with the paper's `n = f + q`
//!   invariant.
//! * [`Epoch`] — the epoch counter used by Algorithm 1 and Algorithm 2.
//! * [`Quorum`] / [`LeaderQuorum`] — outputs of the quorum-selection and
//!   follower-selection modules.
//! * [`crypto`] — a from-scratch SHA-256 and a *simulated* unforgeable
//!   signature scheme (the paper assumes "cryptographic primitives cannot be
//!   broken"; the simulation enforces that assumption by construction while
//!   still allowing Byzantine processes to equivocate).
//! * [`encode`] — a small deterministic binary encoding used as the input to
//!   signatures, so that equivocation (two different signed payloads for the
//!   same slot) is well defined.
//! * [`thresholds`] — the single home of quorum-threshold arithmetic
//!   (`f + 1`, `n − f`, …); the P2 lint rejects raw threshold math
//!   anywhere else.
//!
//! # Example
//!
//! ```
//! use qsel_types::{ClusterConfig, ProcessId, Quorum};
//!
//! let cfg = ClusterConfig::new(5, 2).unwrap(); // n = 5, f = 2, q = 3
//! assert_eq!(cfg.quorum_size(), 3);
//! let q = Quorum::of(&cfg, [ProcessId(1), ProcessId(2), ProcessId(3)]).unwrap();
//! assert!(q.contains(ProcessId(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
pub mod crypto;
pub mod encode;
mod epoch;
mod error;
mod id;
mod quorum;
pub mod thresholds;

pub use checkpoint::CheckpointPayload;
pub use crypto::Signed;
pub use epoch::Epoch;
pub use error::{ConfigError, QuorumError};
pub use id::{ClusterConfig, ProcessId, ProcessSet};
pub use quorum::{LeaderQuorum, Quorum};
