//! Checkpoint payloads: the protocol-agnostic content replicas sign when
//! they checkpoint their executed prefix.
//!
//! A checkpoint at slot `s` commits to three things: the number of
//! executed slots (`slot`, so the next slot to execute is `s`), the
//! state-machine fold over that prefix (`state`), and the Merkle mountain
//! range peaks over the executed batch digests (`peaks`). Distinct
//! protocol crates wrap this payload in their own signed wire messages; a
//! checkpoint is *stable* once `f + 1` replicas have signed byte-identical
//! payloads — at least one signer is correct, and correct replicas only
//! sign payloads they computed by executing the prefix themselves.

use crate::crypto::{sha256, Digest};
use crate::encode::{encode_to_vec, Decode, DecodeError, Encode, Reader};

/// The signed content of a checkpoint. See the [module docs](self).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointPayload {
    /// Executed-prefix length: slots `[0, slot)` are covered.
    pub slot: u64,
    /// The state-machine value after executing the prefix.
    pub state: u64,
    /// MMR peaks over the executed batch digests at size `slot`
    /// (`popcount(slot)` digests — enough to resume the MMR and to verify
    /// inclusion proofs for any covered slot).
    pub peaks: Vec<Digest>,
}

impl CheckpointPayload {
    /// Collision-resistant identity of this checkpoint — what trace
    /// events and cross-replica agreement checks compare.
    pub fn digest(&self) -> Digest {
        sha256(&encode_to_vec(self))
    }
}

impl Encode for CheckpointPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"CKPT");
        self.slot.encode(buf);
        self.state.encode(buf);
        self.peaks.encode(buf);
    }
}

impl Decode for CheckpointPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.take(4)?;
        if tag != b"CKPT" {
            return Err(DecodeError::BadTag(tag[0]));
        }
        Ok(CheckpointPayload {
            slot: u64::decode(r)?,
            state: u64::decode(r)?,
            peaks: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode_from_slice;

    #[test]
    fn roundtrip_and_digest_injectivity() {
        let a = CheckpointPayload {
            slot: 16,
            state: 0xfeed,
            peaks: vec![sha256(b"p1")],
        };
        let bytes = encode_to_vec(&a);
        assert_eq!(&bytes[..4], b"CKPT");
        assert_eq!(decode_from_slice::<CheckpointPayload>(&bytes), Ok(a.clone()));
        let b = CheckpointPayload { state: 0xbeef, ..a.clone() };
        assert_ne!(a.digest(), b.digest());
    }
}
