//! Process identifiers and cluster configuration.

use std::fmt;

use crate::error::ConfigError;
use crate::thresholds;

/// Identifier of a process `p_i` in the paper's `Π = {p_1, p_2, …, p_n}`.
///
/// Identifiers are 1-based to match the paper's notation: the first process
/// is `ProcessId(1)`. The paper assumes "processes can be ordered by unique
/// identifiers"; this ordering is the derived [`Ord`].
///
/// # Example
///
/// ```
/// use qsel_types::ProcessId;
/// let p1 = ProcessId(1);
/// let p2 = ProcessId(2);
/// assert!(p1 < p2);
/// assert_eq!(p1.to_string(), "p1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the zero-based index of this process, for array indexing.
    ///
    /// # Example
    ///
    /// ```
    /// use qsel_types::ProcessId;
    /// assert_eq!(ProcessId(1).index(), 0);
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(self.0 >= 1, "process ids are 1-based");
        (self.0 - 1) as usize
    }

    /// Builds a process id from a zero-based index.
    ///
    /// # Example
    ///
    /// ```
    /// use qsel_types::ProcessId;
    /// assert_eq!(ProcessId::from_index(0), ProcessId(1));
    /// ```
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ProcessId(index as u32 + 1)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<ProcessId> for u32 {
    fn from(id: ProcessId) -> u32 {
        id.0
    }
}

/// The `(n, f)` configuration of a cluster, with `q = n - f` as in the paper
/// (Algorithm 1 assumes `f + q = |Π|`).
///
/// The paper requires a correct majority (`n - f > f`), which this type
/// validates at construction.
///
/// # Example
///
/// ```
/// use qsel_types::ClusterConfig;
/// let cfg = ClusterConfig::new(7, 2).unwrap();
/// assert_eq!(cfg.quorum_size(), 5);
/// assert!(cfg.supports_follower_selection()); // 7 > 3·2
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClusterConfig {
    n: u32,
    f: u32,
}

impl ClusterConfig {
    /// Creates a configuration of `n` processes tolerating `f` faults.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `n == 0`, `f >= n`, or the correct-majority
    /// assumption `n - f > f` of the paper's system model is violated.
    pub fn new(n: u32, f: u32) -> Result<Self, ConfigError> {
        if n == 0 {
            return Err(ConfigError::EmptyCluster);
        }
        if !thresholds::fault_bound_fits(n, f) {
            return Err(ConfigError::TooManyFaults { n, f });
        }
        if !thresholds::has_correct_majority(n, f) {
            return Err(ConfigError::NoCorrectMajority { n, f });
        }
        Ok(ClusterConfig { n, f })
    }

    /// Number of processes `n = |Π|`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Maximum number of faulty processes `f`.
    #[inline]
    pub fn f(&self) -> u32 {
        self.f
    }

    /// Quorum size `q = n - f`.
    #[inline]
    pub fn quorum_size(&self) -> u32 {
        thresholds::quorum_size(self.n, self.f)
    }

    /// Whether the cluster satisfies the Follower Selection assumption
    /// `|Π| > 3f` of Section VIII.
    #[inline]
    pub fn supports_follower_selection(&self) -> bool {
        thresholds::supports_follower_selection(self.n, self.f)
    }

    /// Iterates over all process ids `p_1, …, p_n`.
    ///
    /// # Example
    ///
    /// ```
    /// use qsel_types::{ClusterConfig, ProcessId};
    /// let cfg = ClusterConfig::new(3, 1).unwrap();
    /// let all: Vec<ProcessId> = cfg.processes().collect();
    /// assert_eq!(all, vec![ProcessId(1), ProcessId(2), ProcessId(3)]);
    /// ```
    pub fn processes(&self) -> impl Iterator<Item = ProcessId> + Clone + use<> {
        (1..=self.n).map(ProcessId)
    }

    /// Returns `true` if `id` names a process of this cluster.
    #[inline]
    pub fn contains(&self, id: ProcessId) -> bool {
        (1..=self.n).contains(&id.0)
    }

    /// The paper's initial/default quorum `{p_1, …, p_q}` (Algorithm 1 line 7).
    pub fn default_quorum_members(&self) -> Vec<ProcessId> {
        (1..=self.quorum_size()).map(ProcessId).collect()
    }
}

/// A set of processes represented as a bitset, supporting up to 128 processes.
///
/// This is the small, copyable set used throughout the graph algorithms and
/// quorum bookkeeping. The paper targets consortium-scale clusters ("tenths
/// of nodes"), so 128 is plenty.
///
/// # Example
///
/// ```
/// use qsel_types::{ProcessId, ProcessSet};
/// let mut s = ProcessSet::new();
/// s.insert(ProcessId(3));
/// s.insert(ProcessId(7));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(ProcessId(3)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![ProcessId(3), ProcessId(7)]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessSet {
    bits: u128,
}

impl ProcessSet {
    /// Maximum number of processes representable.
    pub const MAX_PROCESSES: u32 = 128;

    /// Creates an empty set.
    pub fn new() -> Self {
        ProcessSet { bits: 0 }
    }

    /// Creates a set containing every process of `cfg`.
    pub fn full(cfg: &ClusterConfig) -> Self {
        let mut s = ProcessSet::new();
        for p in cfg.processes() {
            s.insert(p);
        }
        s
    }

    /// Inserts a process. Returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id.0` is 0 or exceeds [`Self::MAX_PROCESSES`].
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let mask = Self::mask(id);
        let fresh = self.bits & mask == 0;
        self.bits |= mask;
        fresh
    }

    /// Removes a process. Returns `true` if it was present.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let mask = Self::mask(id);
        let present = self.bits & mask != 0;
        self.bits &= !mask;
        present
    }

    /// Whether `id` is in the set.
    #[inline]
    pub fn contains(&self, id: ProcessId) -> bool {
        self.bits & Self::mask(id) != 0
    }

    /// Number of processes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> Iter {
        Iter { bits: self.bits }
    }

    /// Set union.
    #[must_use]
    pub fn union(&self, other: &ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & other.bits,
        }
    }

    /// Set difference (`self \ other`).
    #[must_use]
    pub fn difference(&self, other: &ProcessSet) -> ProcessSet {
        ProcessSet {
            bits: self.bits & !other.bits,
        }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &ProcessSet) -> bool {
        self.bits & !other.bits == 0
    }

    /// The smallest member, if any.
    ///
    /// Takes `self` by value (the set is `Copy`) so this inherent method
    /// outranks `Ord::min` during method resolution.
    pub fn min(self) -> Option<ProcessId> {
        if self.bits == 0 {
            None
        } else {
            Some(ProcessId(self.bits.trailing_zeros() + 1))
        }
    }

    #[inline]
    fn mask(id: ProcessId) -> u128 {
        assert!(
            id.0 >= 1 && id.0 <= Self::MAX_PROCESSES,
            "process id {} out of ProcessSet range 1..={}",
            id.0,
            Self::MAX_PROCESSES
        );
        1u128 << (id.0 - 1)
    }
}

impl fmt::Debug for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for ProcessSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<ProcessId> for ProcessSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut s = ProcessSet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<ProcessId> for ProcessSet {
    fn extend<I: IntoIterator<Item = ProcessId>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl IntoIterator for ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl IntoIterator for &ProcessSet {
    type Item = ProcessId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over the members of a [`ProcessSet`] in increasing id order.
#[derive(Clone, Debug)]
pub struct Iter {
    bits: u128,
}

impl Iterator for Iter {
    type Item = ProcessId;

    fn next(&mut self) -> Option<ProcessId> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros();
        self.bits &= self.bits - 1;
        Some(ProcessId(tz + 1))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates_majority() {
        assert!(ClusterConfig::new(3, 1).is_ok());
        assert!(ClusterConfig::new(2, 1).is_err()); // n - f = f
        assert!(ClusterConfig::new(0, 0).is_err());
        assert!(ClusterConfig::new(4, 4).is_err());
        assert!(ClusterConfig::new(5, 2).is_ok());
        assert!(ClusterConfig::new(4, 2).is_err());
    }

    #[test]
    fn config_accessors() {
        let cfg = ClusterConfig::new(7, 2).unwrap();
        assert_eq!(cfg.n(), 7);
        assert_eq!(cfg.f(), 2);
        assert_eq!(cfg.quorum_size(), 5);
        assert!(cfg.supports_follower_selection());
        let cfg = ClusterConfig::new(6, 2).unwrap();
        assert!(!cfg.supports_follower_selection());
    }

    #[test]
    fn default_quorum_is_prefix() {
        let cfg = ClusterConfig::new(5, 2).unwrap();
        assert_eq!(
            cfg.default_quorum_members(),
            vec![ProcessId(1), ProcessId(2), ProcessId(3)]
        );
    }

    #[test]
    fn id_roundtrip() {
        for i in 0..10 {
            assert_eq!(ProcessId::from_index(i).index(), i);
        }
    }

    #[test]
    fn set_basic_ops() {
        let mut s = ProcessSet::new();
        assert!(s.is_empty());
        assert!(s.insert(ProcessId(5)));
        assert!(!s.insert(ProcessId(5)));
        assert!(s.insert(ProcessId(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.min(), Some(ProcessId(1)));
        assert!(s.remove(ProcessId(1)));
        assert!(!s.remove(ProcessId(1)));
        assert_eq!(s.min(), Some(ProcessId(5)));
    }

    #[test]
    fn set_algebra() {
        let a: ProcessSet = [1, 2, 3].into_iter().map(ProcessId).collect();
        let b: ProcessSet = [3, 4].into_iter().map(ProcessId).collect();
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![ProcessId(3)]);
        assert_eq!(
            a.difference(&b).iter().collect::<Vec<_>>(),
            vec![ProcessId(1), ProcessId(2)]
        );
        assert!(a.intersection(&b).is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn set_iteration_sorted() {
        let s: ProcessSet = [9, 2, 128, 40].into_iter().map(ProcessId).collect();
        let v: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![2, 9, 40, 128]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of ProcessSet range")]
    fn set_rejects_zero_id() {
        let mut s = ProcessSet::new();
        s.insert(ProcessId(0));
    }

    #[test]
    fn full_set_matches_config() {
        let cfg = ClusterConfig::new(9, 4).unwrap();
        let s = ProcessSet::full(&cfg);
        assert_eq!(s.len(), 9);
        assert!(cfg.processes().all(|p| s.contains(p)));
    }
}
