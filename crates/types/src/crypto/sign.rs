//! Simulated unforgeable signatures.
//!
//! See the [module documentation](crate::crypto) for the threat model.

use std::error::Error;
use std::fmt;

use crate::encode::{encode_to_vec, Decode, DecodeError, Encode, Reader};
use crate::id::{ClusterConfig, ProcessId};

use super::sha256::{Digest, Sha256};

/// A signature tag over an encoded payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SigTag(Digest);

impl fmt::Debug for SigTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigTag({}…)", self.0.short())
    }
}

impl Encode for SigTag {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Decode for SigTag {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(SigTag(Digest::decode(r)?))
    }
}

/// A payload together with the identity of its signer and a signature tag.
///
/// Built by [`Signer::sign`], checked by [`Verifier::verify`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Signed<T> {
    /// The signed payload.
    pub payload: T,
    /// The claimed signer.
    pub signer: ProcessId,
    /// The signature tag.
    pub tag: SigTag,
}

impl<T: Encode> Encode for Signed<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.payload.encode(buf);
        self.signer.encode(buf);
        self.tag.encode(buf);
    }
}

impl<T: Decode> Decode for Signed<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Signed {
            payload: T::decode(r)?,
            signer: ProcessId::decode(r)?,
            tag: SigTag::decode(r)?,
        })
    }
}

/// Central key material for a cluster, derived from a seed.
///
/// Create one keychain per simulated cluster, hand each process (and the
/// adversary, for the faulty processes it plays) its [`Signer`], and share
/// the [`Verifier`] freely.
///
/// # Example
///
/// ```
/// use qsel_types::crypto::Keychain;
/// use qsel_types::{ClusterConfig, ProcessId};
///
/// let cfg = ClusterConfig::new(3, 1).unwrap();
/// let chain = Keychain::new(&cfg, 42);
/// let signer = chain.signer(ProcessId(1));
/// let verifier = chain.verifier();
/// let signed = signer.sign(7u32);
/// assert!(verifier.verify(&signed).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct Keychain {
    secrets: Vec<Digest>,
}

impl Keychain {
    /// Derives per-process secrets for every process of `cfg` from `seed`.
    pub fn new(cfg: &ClusterConfig, seed: u64) -> Self {
        let secrets = cfg
            .processes()
            .map(|p| {
                let mut h = Sha256::new();
                h.update(b"qsel-keychain");
                h.update(&seed.to_le_bytes());
                h.update(&p.0.to_le_bytes());
                h.finalize()
            })
            .collect();
        Keychain { secrets }
    }

    /// The signing handle for `id`.
    ///
    /// Handing a [`Signer`] to a component grants it the ability to
    /// authenticate as `id` — give the adversary only the signers of the
    /// faulty processes.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a process of the cluster the keychain was
    /// created for.
    pub fn signer(&self, id: ProcessId) -> Signer {
        Signer {
            id,
            secret: self.secrets[id.index()],
        }
    }

    /// A verifier for all processes' signatures.
    pub fn verifier(&self) -> Verifier {
        Verifier {
            secrets: self.secrets.clone(),
        }
    }
}

/// Capability to sign payloads as one specific process.
#[derive(Clone, Debug)]
pub struct Signer {
    id: ProcessId,
    secret: Digest,
}

impl Signer {
    /// The identity this signer authenticates as.
    pub fn id(&self) -> ProcessId {
        self.id
    }

    /// Signs `payload`.
    pub fn sign<T: Encode>(&self, payload: T) -> Signed<T> {
        let tag = self.tag_for(&payload);
        Signed {
            payload,
            signer: self.id,
            tag,
        }
    }

    fn tag_for<T: Encode + ?Sized>(&self, payload: &T) -> SigTag {
        let mut h = Sha256::new();
        h.update(b"qsel-sig");
        h.update(self.secret.as_bytes());
        h.update(&self.id.0.to_le_bytes());
        h.update(&encode_to_vec(payload));
        SigTag(h.finalize())
    }
}

/// Verifies signatures of any cluster process.
#[derive(Clone, Debug)]
pub struct Verifier {
    secrets: Vec<Digest>,
}

impl Verifier {
    /// Checks that `signed.tag` is a valid signature by `signed.signer` over
    /// `signed.payload`.
    ///
    /// # Errors
    ///
    /// Returns [`VerifyError::UnknownSigner`] for out-of-cluster ids and
    /// [`VerifyError::BadSignature`] for tag mismatches.
    pub fn verify<T: Encode>(&self, signed: &Signed<T>) -> Result<(), VerifyError> {
        let idx = signed.signer.index();
        let secret = self
            .secrets
            .get(idx)
            .ok_or(VerifyError::UnknownSigner(signed.signer))?;
        let expected = Signer {
            id: signed.signer,
            secret: *secret,
        }
        .tag_for(&signed.payload);
        if expected == signed.tag {
            Ok(())
        } else {
            Err(VerifyError::BadSignature(signed.signer))
        }
    }
}

/// Signature verification failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// The claimed signer is not a cluster process.
    UnknownSigner(ProcessId),
    /// The tag does not verify for the claimed signer and payload.
    BadSignature(ProcessId),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnknownSigner(p) => write!(f, "unknown signer {p}"),
            VerifyError::BadSignature(p) => write!(f, "signature does not verify for {p}"),
        }
    }
}

impl Error for VerifyError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Keychain, Verifier) {
        let cfg = ClusterConfig::new(5, 2).unwrap();
        let chain = Keychain::new(&cfg, 1);
        let v = chain.verifier();
        (chain, v)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (chain, v) = setup();
        let s = chain.signer(ProcessId(3)).sign(vec![1u32, 2, 3]);
        assert_eq!(s.signer, ProcessId(3));
        assert!(v.verify(&s).is_ok());
    }

    #[test]
    fn tampered_payload_fails() {
        let (chain, v) = setup();
        let mut s = chain.signer(ProcessId(3)).sign(vec![1u32, 2, 3]);
        s.payload[0] = 9;
        assert_eq!(v.verify(&s), Err(VerifyError::BadSignature(ProcessId(3))));
    }

    #[test]
    fn claimed_identity_must_match() {
        let (chain, v) = setup();
        let mut s = chain.signer(ProcessId(3)).sign(7u64);
        s.signer = ProcessId(2); // impersonation attempt
        assert_eq!(v.verify(&s), Err(VerifyError::BadSignature(ProcessId(2))));
    }

    #[test]
    fn unknown_signer_rejected() {
        let (chain, v) = setup();
        let mut s = chain.signer(ProcessId(1)).sign(7u64);
        s.signer = ProcessId(42);
        assert_eq!(v.verify(&s), Err(VerifyError::UnknownSigner(ProcessId(42))));
    }

    #[test]
    fn different_seeds_give_different_tags() {
        let cfg = ClusterConfig::new(3, 1).unwrap();
        let a = Keychain::new(&cfg, 1).signer(ProcessId(1)).sign(1u32);
        let b = Keychain::new(&cfg, 2).signer(ProcessId(1)).sign(1u32);
        assert_ne!(a.tag, b.tag);
    }

    #[test]
    fn equivocation_is_possible_but_distinct() {
        // A Byzantine signer may sign two conflicting payloads; both verify,
        // and the two signed messages are distinguishable evidence.
        let (chain, v) = setup();
        let signer = chain.signer(ProcessId(2));
        let a = signer.sign(1u32);
        let b = signer.sign(2u32);
        assert!(v.verify(&a).is_ok());
        assert!(v.verify(&b).is_ok());
        assert_ne!(a.tag, b.tag);
    }
}
