//! Cryptographic primitives for the simulation.
//!
//! The paper's system model assumes "cryptographic primitives cannot be
//! broken". This module provides:
//!
//! * [`sha256`] — a from-scratch SHA-256 used for message digests (XPaxos
//!   COMMIT messages carry request hashes, Section V-A).
//! * [`Keychain`] / [`Signer`] / [`Signed`] — a simulated signature scheme.
//!
//! # Signature model
//!
//! Signatures are MAC-like tags: `tag = SHA-256(secret_i ‖ payload)` where
//! `secret_i` is a per-process secret derived from a cluster seed. The
//! unbreakability assumption is enforced *by construction*: a process (or
//! the Byzantine adversary playing a set of faulty processes) can only
//! obtain [`Signer`] handles for the processes it was explicitly given at
//! setup, so it can never produce a tag that verifies for a correct
//! process's identity. Byzantine processes retain the misbehaviours the
//! paper's protocols must handle — equivocation (signing two conflicting
//! payloads) and malformed-but-authenticated messages — because signing any
//! payload of their own choosing is allowed.

mod sha256;
mod sign;

pub use sha256::{sha256, Digest, Sha256};
pub use sign::{Keychain, SigTag, Signed, Signer, VerifyError, Verifier};
