//! Epoch counters for Algorithm 1 and Algorithm 2.

use std::fmt;

/// An epoch of the quorum-selection protocol.
///
/// Suspicions are stamped with the epoch in which they were last raised
/// (Algorithm 1 line 14). The suspect graph of epoch `e` contains an edge
/// `(l, k)` iff `suspected[l][k] ≥ e` or `suspected[k][l] ≥ e` (Section VI-B).
/// Epochs start at 1; the value 0 is reserved to mean "never suspected" in
/// the `suspected` matrix.
///
/// # Example
///
/// ```
/// use qsel_types::Epoch;
/// let e = Epoch::initial();
/// assert_eq!(e.get(), 1);
/// assert_eq!(e.next().get(), 2);
/// assert!(Epoch::NEVER < e);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The sentinel stored in the `suspected` matrix for "never suspected"
    /// (the matrix is "initially all 0", Algorithm 1 line 6).
    pub const NEVER: Epoch = Epoch(0);

    /// The first epoch (`epoch = 1`, Algorithm 1 line 5).
    pub fn initial() -> Self {
        Epoch(1)
    }

    /// The numeric value of the epoch.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// The following epoch (`epoch + 1`, Algorithm 1 line 28).
    #[must_use]
    pub fn next(self) -> Self {
        Epoch(self.0 + 1)
    }

    /// Whether a suspicion stamped with `self` is visible in the suspect
    /// graph of epoch `at`: `self ≥ at` and `self` is not [`Self::NEVER`].
    #[inline]
    pub fn visible_at(self, at: Epoch) -> bool {
        self != Epoch::NEVER && self >= at
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl Default for Epoch {
    /// The default epoch is [`Epoch::initial`], matching Algorithm 1's
    /// initial state.
    fn default() -> Self {
        Epoch::initial()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_next() {
        assert!(Epoch(1) < Epoch(2));
        assert_eq!(Epoch(1).next(), Epoch(2));
        assert_eq!(Epoch::default(), Epoch::initial());
    }

    #[test]
    fn visibility() {
        assert!(Epoch(3).visible_at(Epoch(3)));
        assert!(Epoch(4).visible_at(Epoch(3)));
        assert!(!Epoch(2).visible_at(Epoch(3)));
        // NEVER is invisible even at epoch 0.
        assert!(!Epoch::NEVER.visible_at(Epoch(0)));
        assert!(!Epoch::NEVER.visible_at(Epoch(1)));
    }
}
