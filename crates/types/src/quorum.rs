//! Quorum types: the outputs of the quorum-selection and follower-selection
//! modules.

use std::fmt;

use crate::error::QuorumError;
use crate::id::{ClusterConfig, ProcessId, ProcessSet};

/// A quorum `Q ⊂ Π` with `|Q| = n - f`, as output by the quorum-selection
/// module in `⟨QUORUM, Q⟩` events (Section IV-A).
///
/// # Example
///
/// ```
/// use qsel_types::{ClusterConfig, ProcessId, Quorum};
/// let cfg = ClusterConfig::new(5, 2).unwrap();
/// let q = Quorum::of(&cfg, [ProcessId(1), ProcessId(3), ProcessId(4)]).unwrap();
/// assert_eq!(q.members().len(), 3);
/// assert_eq!(q.lowest(), ProcessId(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Quorum {
    members: ProcessSet,
}

impl Quorum {
    /// Builds a quorum from `members`, validating cardinality and membership
    /// against `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`QuorumError::WrongSize`] if `members` does not contain
    /// exactly `q = n - f` distinct processes, or
    /// [`QuorumError::UnknownProcess`] if a member is not in the cluster.
    pub fn of<I>(cfg: &ClusterConfig, members: I) -> Result<Self, QuorumError>
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let mut set = ProcessSet::new();
        let mut count = 0usize;
        for p in members {
            if !cfg.contains(p) {
                return Err(QuorumError::UnknownProcess(p));
            }
            set.insert(p);
            count += 1;
        }
        if set.len() != cfg.quorum_size() as usize || count != set.len() {
            return Err(QuorumError::WrongSize {
                expected: cfg.quorum_size(),
                got: count,
            });
        }
        Ok(Quorum { members: set })
    }

    /// The paper's initial quorum `{p_1, …, p_q}` (Algorithm 1 line 7).
    pub fn initial(cfg: &ClusterConfig) -> Self {
        Quorum {
            members: cfg.default_quorum_members().into_iter().collect(),
        }
    }

    /// Builds a quorum from an already-validated set.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `members` is empty; cardinality against a
    /// particular cluster is the caller's responsibility. Prefer
    /// [`Quorum::of`] at trust boundaries.
    pub fn from_set_unchecked(members: ProcessSet) -> Self {
        debug_assert!(!members.is_empty(), "quorum cannot be empty");
        Quorum { members }
    }

    /// The member set.
    #[inline]
    pub fn members(&self) -> &ProcessSet {
        &self.members
    }

    /// Whether `p` is a quorum member.
    #[inline]
    pub fn contains(&self, p: ProcessId) -> bool {
        self.members.contains(p)
    }

    /// The member with the lowest identifier. In XPaxos integration this is
    /// the leader of the quorum ("the process in the active quorum with
    /// lowest id, i.e. the leader", Section V-A).
    ///
    /// # Panics
    ///
    /// Never panics for quorums built through the public constructors, which
    /// guarantee non-emptiness.
    pub fn lowest(&self) -> ProcessId {
        self.members.min().expect("quorum is non-empty")
    }

    /// Iterates over members in increasing id order.
    pub fn iter(&self) -> crate::id::Iter {
        self.members.iter()
    }
}

impl fmt::Display for Quorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.members)
    }
}

/// A quorum with a designated leader, as output by Follower Selection in
/// `⟨QUORUM, l, Q⟩` events (Section VIII).
///
/// # Example
///
/// ```
/// use qsel_types::{ClusterConfig, LeaderQuorum, ProcessId};
/// let cfg = ClusterConfig::new(4, 1).unwrap();
/// let lq = LeaderQuorum::of(
///     &cfg,
///     ProcessId(2),
///     [ProcessId(2), ProcessId(3), ProcessId(4)],
/// ).unwrap();
/// assert_eq!(lq.leader(), ProcessId(2));
/// assert_eq!(lq.followers().len(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LeaderQuorum {
    leader: ProcessId,
    quorum: Quorum,
}

impl LeaderQuorum {
    /// Builds a leader quorum, validating that `leader ∈ Q`.
    ///
    /// # Errors
    ///
    /// Returns the [`Quorum::of`] errors, plus
    /// [`QuorumError::LeaderNotMember`] if `leader` is not among `members`.
    pub fn of<I>(cfg: &ClusterConfig, leader: ProcessId, members: I) -> Result<Self, QuorumError>
    where
        I: IntoIterator<Item = ProcessId>,
    {
        let quorum = Quorum::of(cfg, members)?;
        if !quorum.contains(leader) {
            return Err(QuorumError::LeaderNotMember(leader));
        }
        Ok(LeaderQuorum { leader, quorum })
    }

    /// The initial leader quorum: leader `p_1` with the default members
    /// `{p_1, …, p_q}` (Algorithm 2 lines 3 and 12–13).
    pub fn initial(cfg: &ClusterConfig) -> Self {
        LeaderQuorum {
            leader: ProcessId(1),
            quorum: Quorum::initial(cfg),
        }
    }

    /// The designated leader `l ∈ Q`.
    #[inline]
    pub fn leader(&self) -> ProcessId {
        self.leader
    }

    /// The full quorum including the leader.
    #[inline]
    pub fn quorum(&self) -> &Quorum {
        &self.quorum
    }

    /// The followers `Q \ {l}`.
    pub fn followers(&self) -> ProcessSet {
        let mut s = *self.quorum.members();
        s.remove(self.leader);
        s
    }
}

impl fmt::Display for LeaderQuorum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨leader {}, {}⟩", self.leader, self.quorum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg53() -> ClusterConfig {
        ClusterConfig::new(5, 2).unwrap()
    }

    #[test]
    fn of_validates_size() {
        let cfg = cfg53();
        let err = Quorum::of(&cfg, [ProcessId(1), ProcessId(2)]).unwrap_err();
        assert_eq!(err, QuorumError::WrongSize { expected: 3, got: 2 });
        // Duplicates are counted as provided, not deduplicated silently.
        let err = Quorum::of(&cfg, [ProcessId(1), ProcessId(1), ProcessId(2)]).unwrap_err();
        assert!(matches!(err, QuorumError::WrongSize { .. }));
    }

    #[test]
    fn of_validates_membership() {
        let cfg = cfg53();
        let err = Quorum::of(&cfg, [ProcessId(1), ProcessId(2), ProcessId(9)]).unwrap_err();
        assert_eq!(err, QuorumError::UnknownProcess(ProcessId(9)));
    }

    #[test]
    fn initial_quorum() {
        let cfg = cfg53();
        let q = Quorum::initial(&cfg);
        assert_eq!(
            q.iter().collect::<Vec<_>>(),
            vec![ProcessId(1), ProcessId(2), ProcessId(3)]
        );
        assert_eq!(q.lowest(), ProcessId(1));
    }

    #[test]
    fn leader_quorum_validation() {
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let err = LeaderQuorum::of(&cfg, ProcessId(1), [ProcessId(2), ProcessId(3), ProcessId(4)])
            .unwrap_err();
        assert_eq!(err, QuorumError::LeaderNotMember(ProcessId(1)));
        let lq =
            LeaderQuorum::of(&cfg, ProcessId(3), [ProcessId(2), ProcessId(3), ProcessId(4)])
                .unwrap();
        assert_eq!(
            lq.followers().iter().collect::<Vec<_>>(),
            vec![ProcessId(2), ProcessId(4)]
        );
        assert_eq!(lq.quorum().lowest(), ProcessId(2));
    }

    #[test]
    fn display() {
        let cfg = cfg53();
        let q = Quorum::initial(&cfg);
        assert_eq!(q.to_string(), "{p1, p2, p3}");
        let cfg4 = ClusterConfig::new(4, 1).unwrap();
        let lq = LeaderQuorum::initial(&cfg4);
        assert_eq!(lq.to_string(), "⟨leader p1, {p1, p2, p3}⟩");
    }
}
