//! Error types for cluster and quorum construction.

use std::error::Error;
use std::fmt;

/// Error constructing a [`ClusterConfig`](crate::ClusterConfig).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// `n` was zero.
    EmptyCluster,
    /// `f >= n`.
    TooManyFaults {
        /// Number of processes.
        n: u32,
        /// Requested fault tolerance.
        f: u32,
    },
    /// The paper's correct-majority assumption `n - f > f` does not hold.
    NoCorrectMajority {
        /// Number of processes.
        n: u32,
        /// Requested fault tolerance.
        f: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyCluster => write!(f, "cluster must contain at least one process"),
            ConfigError::TooManyFaults { n, f: faults } => {
                write!(f, "cannot tolerate {faults} faults with only {n} processes")
            }
            ConfigError::NoCorrectMajority { n, f: faults } => write!(
                f,
                "correct majority violated: n - f = {} is not greater than f = {faults}",
                crate::thresholds::quorum_size(*n, *faults)
            ),
        }
    }
}

impl Error for ConfigError {}

/// Error constructing a [`Quorum`](crate::Quorum) or
/// [`LeaderQuorum`](crate::LeaderQuorum).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum QuorumError {
    /// The member set has the wrong cardinality (must be `q = n - f`).
    WrongSize {
        /// Expected quorum size.
        expected: u32,
        /// Provided member count.
        got: usize,
    },
    /// A member id is outside the cluster.
    UnknownProcess(crate::ProcessId),
    /// The designated leader is not a quorum member.
    LeaderNotMember(crate::ProcessId),
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::WrongSize { expected, got } => {
                write!(f, "quorum must have exactly {expected} members, got {got}")
            }
            QuorumError::UnknownProcess(p) => write!(f, "process {p} is not in the cluster"),
            QuorumError::LeaderNotMember(p) => write!(f, "leader {p} is not a quorum member"),
        }
    }
}

impl Error for QuorumError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    #[test]
    fn display_messages() {
        assert_eq!(
            ConfigError::NoCorrectMajority { n: 2, f: 1 }.to_string(),
            "correct majority violated: n - f = 1 is not greater than f = 1"
        );
        assert_eq!(
            QuorumError::WrongSize { expected: 3, got: 2 }.to_string(),
            "quorum must have exactly 3 members, got 2"
        );
        assert_eq!(
            QuorumError::LeaderNotMember(ProcessId(4)).to_string(),
            "leader p4 is not a quorum member"
        );
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<QuorumError>();
    }
}
