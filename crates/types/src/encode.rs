//! Deterministic binary encoding for signed payloads.
//!
//! The protocols in this workspace sign message payloads (`⟨UPDATE, …⟩_σ`,
//! `⟨FOLLOWERS, …⟩_σ`, XPaxos `PREPARE`/`COMMIT`). Signatures are computed
//! over a canonical byte encoding so that "two different signed payloads"
//! (equivocation) is a well-defined notion. The encoding is intentionally
//! simple and hand-rolled: fixed-width little-endian integers with
//! length-prefixed sequences, written into a [`bytes::BufMut`].
//!
//! # Example
//!
//! ```
//! use qsel_types::encode::{Encode, encode_to_vec};
//!
//! #[derive(Debug)]
//! struct Pair(u32, u64);
//! impl Encode for Pair {
//!     fn encode(&self, buf: &mut Vec<u8>) {
//!         self.0.encode(buf);
//!         self.1.encode(buf);
//!     }
//! }
//!
//! let bytes = encode_to_vec(&Pair(1, 2));
//! assert_eq!(bytes.len(), 12);
//! ```

use bytes::BufMut;

use crate::{Epoch, ProcessId, ProcessSet};

/// A type with a canonical, deterministic byte encoding.
///
/// Implementations must be *injective* for the message space they are used
/// on: distinct values encode to distinct byte strings. All provided
/// implementations achieve this with fixed-width integers and explicit
/// length prefixes.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
}

/// Encodes `value` into a fresh vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    value.encode(&mut buf);
    buf
}

impl Encode for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(*self);
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(*self);
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(*self);
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }
}

impl Encode for ProcessId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Encode for Epoch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Encode for ProcessSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        let members: Vec<ProcessId> = self.iter().collect();
        members.as_slice().encode(buf);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_slice().encode(buf);
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_str().encode(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_fixed_width() {
        assert_eq!(encode_to_vec(&7u8).len(), 1);
        assert_eq!(encode_to_vec(&7u32).len(), 4);
        assert_eq!(encode_to_vec(&7u64).len(), 8);
    }

    #[test]
    fn sequences_are_length_prefixed() {
        let v = vec![1u32, 2, 3];
        let bytes = encode_to_vec(&v);
        assert_eq!(bytes.len(), 8 + 3 * 4);
        // Distinct splits encode differently: [1,2] vs [1],[2] concatenated.
        let a = encode_to_vec(&vec![1u32, 2]);
        let mut b = encode_to_vec(&vec![1u32]);
        b.extend(encode_to_vec(&vec![2u32]));
        assert_ne!(a, b);
    }

    #[test]
    fn process_set_encodes_sorted_members() {
        let s: ProcessSet = [3, 1].into_iter().map(ProcessId).collect();
        let t: ProcessSet = [1, 3].into_iter().map(ProcessId).collect();
        assert_eq!(encode_to_vec(&s), encode_to_vec(&t));
    }

    #[test]
    fn strings_roundtrip_distinctly() {
        assert_ne!(encode_to_vec("ab"), encode_to_vec("ba"));
        assert_ne!(encode_to_vec(""), encode_to_vec("a"));
    }

    #[test]
    fn tuples_concatenate() {
        let bytes = encode_to_vec(&(1u32, 2u64));
        assert_eq!(bytes.len(), 12);
    }
}
