//! Deterministic binary encoding for signed payloads.
//!
//! The protocols in this workspace sign message payloads (`⟨UPDATE, …⟩_σ`,
//! `⟨FOLLOWERS, …⟩_σ`, XPaxos `PREPARE`/`COMMIT`). Signatures are computed
//! over a canonical byte encoding so that "two different signed payloads"
//! (equivocation) is a well-defined notion. The encoding is intentionally
//! simple and hand-rolled: fixed-width little-endian integers with
//! length-prefixed sequences, written into a [`bytes::BufMut`].
//!
//! [`Decode`] is the inverse: it reads a value back out of a byte slice and
//! rejects malformed input — truncated integers, length prefixes that claim
//! more elements than the remaining bytes could hold, invalid UTF-8 —
//! instead of panicking or silently mis-framing. Every `Decode` impl is the
//! exact inverse of the matching `Encode` impl, a property the wire
//! round-trip tests in `qsel-xpaxos` exercise over arbitrary payloads.
//!
//! # Example
//!
//! ```
//! use qsel_types::encode::{Encode, encode_to_vec};
//!
//! #[derive(Debug)]
//! struct Pair(u32, u64);
//! impl Encode for Pair {
//!     fn encode(&self, buf: &mut Vec<u8>) {
//!         self.0.encode(buf);
//!         self.1.encode(buf);
//!     }
//! }
//!
//! let bytes = encode_to_vec(&Pair(1, 2));
//! assert_eq!(bytes.len(), 12);
//! ```

use bytes::BufMut;

use crate::{Epoch, ProcessId, ProcessSet};

/// A type with a canonical, deterministic byte encoding.
///
/// Implementations must be *injective* for the message space they are used
/// on: distinct values encode to distinct byte strings. All provided
/// implementations achieve this with fixed-width integers and explicit
/// length prefixes.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
}

/// Encodes `value` into a fresh vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    value.encode(&mut buf);
    buf
}

/// Decoding failure: the input is not a canonical encoding of the target
/// type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix claims more elements than the remaining input could
    /// possibly hold (each element takes at least one byte), so the frame
    /// is corrupt — rejected before any allocation proportional to the
    /// claimed length.
    BadLength {
        /// Elements (or bytes) the prefix claims.
        claimed: u64,
        /// Bytes actually remaining in the input.
        remaining: u64,
    },
    /// An enum discriminant byte is not a known variant.
    BadTag(u8),
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// The value decoded, but this many input bytes were left over
    /// (returned only by [`decode_from_slice`], which demands an exact
    /// frame).
    TrailingBytes(u64),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "input truncated"),
            DecodeError::BadLength { claimed, remaining } => write!(
                f,
                "length prefix claims {claimed} elements but only {remaining} bytes remain"
            ),
            DecodeError::BadTag(t) => write!(f, "unknown variant tag {t}"),
            DecodeError::BadBool(b) => write!(f, "invalid boolean byte {b}"),
            DecodeError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over an input byte slice, consumed left to right by [`Decode`]
/// implementations.
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u64` length prefix and checks it against the remaining
    /// input, given that each of the claimed elements occupies at least
    /// `min_elem_size` bytes. This is the guard that turns a corrupt
    /// length prefix into an error instead of a huge allocation or a
    /// mis-framed tail.
    pub fn length_prefix(&mut self, min_elem_size: usize) -> Result<usize, DecodeError> {
        let claimed = u64::decode(self)?;
        let remaining = self.remaining() as u64;
        let need = claimed.checked_mul(min_elem_size.max(1) as u64);
        match need {
            Some(n) if n <= remaining => Ok(claimed as usize),
            _ => Err(DecodeError::BadLength { claimed, remaining }),
        }
    }
}

/// A type that can be read back out of its canonical [`Encode`] form.
///
/// `decode` must be the exact inverse of `encode`: for every value `v`,
/// `decode(encode(v)) == v`, and `decode` consumes exactly the bytes
/// `encode` produced.
pub trait Decode: Sized {
    /// Reads one value from `r`, consuming exactly its encoding.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Decodes a value that must occupy the whole of `bytes`.
///
/// # Errors
///
/// Propagates the inner [`DecodeError`], or returns
/// [`DecodeError::TrailingBytes`] if input remains after the value.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let value = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(DecodeError::TrailingBytes(r.remaining() as u64));
    }
    Ok(value)
}

impl Encode for u8 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(*self);
    }
}

impl Encode for u32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u32_le(*self);
    }
}

impl Encode for u64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u64_le(*self);
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.put_u8(u8::from(*self));
    }
}

impl Encode for ProcessId {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Encode for Epoch {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
}

impl Encode for ProcessSet {
    fn encode(&self, buf: &mut Vec<u8>) {
        let members: Vec<ProcessId> = self.iter().collect();
        members.as_slice().encode(buf);
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_slice().encode(buf);
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.as_str().encode(buf);
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take(1)?[0])
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let b = r.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let b = r.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }
}

impl Decode for ProcessId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ProcessId(u32::decode(r)?))
    }
}

impl Decode for Epoch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Epoch(u64::decode(r)?))
    }
}

impl Decode for ProcessSet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let members = Vec::<ProcessId>::decode(r)?;
        Ok(members.into_iter().collect())
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // Every element encoding is at least one byte, which is enough to
        // bound the claimed length by the remaining input.
        let len = r.length_prefix(1)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = r.length_prefix(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_are_fixed_width() {
        assert_eq!(encode_to_vec(&7u8).len(), 1);
        assert_eq!(encode_to_vec(&7u32).len(), 4);
        assert_eq!(encode_to_vec(&7u64).len(), 8);
    }

    #[test]
    fn sequences_are_length_prefixed() {
        let v = vec![1u32, 2, 3];
        let bytes = encode_to_vec(&v);
        assert_eq!(bytes.len(), 8 + 3 * 4);
        // Distinct splits encode differently: [1,2] vs [1],[2] concatenated.
        let a = encode_to_vec(&vec![1u32, 2]);
        let mut b = encode_to_vec(&vec![1u32]);
        b.extend(encode_to_vec(&vec![2u32]));
        assert_ne!(a, b);
    }

    #[test]
    fn process_set_encodes_sorted_members() {
        let s: ProcessSet = [3, 1].into_iter().map(ProcessId).collect();
        let t: ProcessSet = [1, 3].into_iter().map(ProcessId).collect();
        assert_eq!(encode_to_vec(&s), encode_to_vec(&t));
    }

    #[test]
    fn strings_roundtrip_distinctly() {
        assert_ne!(encode_to_vec("ab"), encode_to_vec("ba"));
        assert_ne!(encode_to_vec(""), encode_to_vec("a"));
    }

    #[test]
    fn tuples_concatenate() {
        let bytes = encode_to_vec(&(1u32, 2u64));
        assert_eq!(bytes.len(), 12);
    }

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        assert_eq!(decode_from_slice::<T>(&bytes), Ok(value));
    }

    #[test]
    fn decode_inverts_encode() {
        roundtrip(0u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(true);
        roundtrip(ProcessId(7));
        roundtrip(Epoch(9));
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip((ProcessId(1), 99u64));
        roundtrip("héllo".to_string());
        let s: ProcessSet = [3, 1, 4].into_iter().map(ProcessId).collect();
        roundtrip(s);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode_to_vec(&vec![1u32, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(
                decode_from_slice::<Vec<u32>>(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        // A prefix claiming u64::MAX elements must fail fast on the length
        // check, not attempt a huge Vec::with_capacity.
        let mut bytes = Vec::new();
        u64::MAX.encode(&mut bytes);
        assert!(matches!(
            decode_from_slice::<Vec<u64>>(&bytes),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        assert_eq!(
            decode_from_slice::<u32>(&bytes),
            Err(DecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn invalid_bool_and_utf8_are_rejected() {
        assert_eq!(decode_from_slice::<bool>(&[2]), Err(DecodeError::BadBool(2)));
        let mut bytes = Vec::new();
        2u64.encode(&mut bytes);
        bytes.extend([0xff, 0xfe]);
        assert_eq!(decode_from_slice::<String>(&bytes), Err(DecodeError::BadUtf8));
    }
}
