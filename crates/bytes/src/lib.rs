//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace provides the minimal [`BufMut`] surface that
//! `qsel-types::encode` actually uses: appending fixed-width little-endian
//! integers and raw slices to a growable buffer. The method names and
//! semantics match the real crate so the shim can be swapped back out.

#![forbid(unsafe_code)]

/// A buffer that bytes can be appended to.
///
/// Matches the subset of `bytes::BufMut` used for canonical message
/// encoding: unsigned little-endian integers and raw slices.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a raw byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        (**self).put_u16_le(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        (**self).put_u32_le(v);
    }

    fn put_u64_le(&mut self, v: u64) {
        (**self).put_u64_le(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0x0102_0304);
        buf.put_u64_le(1);
        buf.put_slice(b"xy");
        assert_eq!(
            buf,
            [0xAB, 0x04, 0x03, 0x02, 0x01, 1, 0, 0, 0, 0, 0, 0, 0, b'x', b'y']
        );
    }

    #[test]
    fn works_through_mut_reference() {
        let mut buf = Vec::new();
        fn write(b: &mut impl BufMut) {
            b.put_u16_le(0x0201);
        }
        write(&mut buf);
        assert_eq!(buf, [0x01, 0x02]);
    }
}
