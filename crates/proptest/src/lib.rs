//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate implements
//! the subset of proptest that the workspace's property tests use:
//!
//! - the [`proptest!`] macro with `#![proptest_config(...)]`, multiple
//!   `#[test]` functions per block, and `pattern in strategy` arguments;
//! - [`strategy::Strategy`] with `prop_map` and `boxed`, integer range
//!   strategies, tuple strategies, [`strategy::Just`], [`prop_oneof!`],
//!   [`collection::vec`], and [`arbitrary::any`];
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`] with global reject accounting;
//! - [`test_runner::ProptestConfig`] (`cases`, `max_global_rejects`,
//!   `with_cases`, struct-update from `default()`).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the per-case seed instead of
//!   a minimized input. Cases are a pure function of the test's module path
//!   and name, so failures reproduce exactly by re-running the test.
//! - **Fixed derivation.** There is no `PROPTEST_CASES` env handling or
//!   failure persistence file; every run executes the same case sequence.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests over strategy-drawn inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                &($cfg),
                concat!(module_path!(), "::", stringify!($name)),
                |__case_rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __case_rng);
                    )+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("{}", concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), __l, __r
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left != right`\n  both: {:?}", __l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("{}\n  both: {:?}", ::std::format!($($fmt)+), __l),
            ));
        }
    }};
}

/// Rejects the current case (retried without counting) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).into(),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}
