//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length falls in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.range_inclusive(self.size.lo as u64, self.size.hi as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_band_is_respected() {
        let mut rng = TestRng::from_seed(8);
        let s = vec(0u32..5, 2..7);
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::from_seed(9);
        let s = vec(0u64..10, 36usize);
        assert_eq!(s.generate(&mut rng).len(), 36);
    }
}
