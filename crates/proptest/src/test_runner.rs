//! Deterministic case runner and configuration.

/// Configuration accepted by `#![proptest_config(...)]`.
///
/// Only the knobs this workspace uses are present; both support struct
/// update syntax from [`ProptestConfig::default`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum total `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// A default configuration with `cases` overridden.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a test case did not succeed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's assumptions were not met; retry with fresh inputs.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure, mirroring real proptest's lowercase helper.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// Constructs a rejection, mirroring real proptest's lowercase helper.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic generator driving strategy sampling (SplitMix64).
///
/// Every case's inputs are a pure function of `(test name, case index)`, so
/// failures reproduce exactly by re-running the same test binary.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw from `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }
}

/// FNV-1a hash used to derive a per-test base seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Executes `case` until `config.cases` successes, with reject accounting.
///
/// Called by the expansion of `proptest!`; not intended for direct use.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut seeder = TestRng::from_seed(fnv1a(name));
    let mut cases_run = 0u32;
    let mut rejects = 0u32;
    while cases_run < config.cases {
        let case_seed = seeder.next_u64();
        let mut rng = TestRng::from_seed(case_seed);
        match case(&mut rng) {
            Ok(()) => cases_run += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest '{name}': exceeded {} global rejects ({reason})",
                        config.max_global_rejects
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed on case {} (case seed {case_seed:#018x}):\n{msg}",
                    cases_run + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(5);
        let mut b = TestRng::from_seed(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut rng = TestRng::from_seed(1);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            let v = rng.range_inclusive(2, 4);
            assert!((2..=4).contains(&v));
            lo_seen |= v == 2;
            hi_seen |= v == 4;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn run_cases_counts_successes() {
        let mut calls = 0u32;
        run_cases(&ProptestConfig::with_cases(10), "t", |_| {
            calls += 1;
            Ok(())
        });
        assert_eq!(calls, 10);
    }

    #[test]
    fn run_cases_retries_rejects() {
        let mut calls = 0u32;
        run_cases(&ProptestConfig::with_cases(3), "t", |_| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::reject("odd only"))
            } else {
                Ok(())
            }
        });
        assert!(calls > 3);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn run_cases_aborts_on_reject_storm() {
        let cfg = ProptestConfig {
            cases: 1,
            max_global_rejects: 4,
        };
        run_cases(&cfg, "t", |_| Err(TestCaseError::reject("always")));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn run_cases_panics_on_failure() {
        run_cases(&ProptestConfig::with_cases(5), "t", |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
