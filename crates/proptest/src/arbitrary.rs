//! The `any::<T>()` entry point for full-domain strategies.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical full-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type.
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

macro_rules! any_impls {
    ($($t:ty => $draw:expr;)*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let draw: fn(&mut TestRng) -> $t = $draw;
                draw(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: PhantomData }
            }
        }
    )*};
}

any_impls! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| (rng.next_u64() >> 56) as u8;
    u16 => |rng| (rng.next_u64() >> 48) as u16;
    u32 => |rng| (rng.next_u64() >> 32) as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_domain_corners() {
        let mut rng = TestRng::from_seed(3);
        let s = any::<u8>();
        let mut seen_high = false;
        let mut seen_low = false;
        for _ in 0..2_000 {
            let v = s.generate(&mut rng);
            seen_high |= v >= 192;
            seen_low |= v < 64;
        }
        assert!(seen_high && seen_low);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = TestRng::from_seed(4);
        let s = any::<bool>();
        let mut t = false;
        let mut f = false;
        for _ in 0..64 {
            if s.generate(&mut rng) {
                t = true;
            } else {
                f = true;
            }
        }
        assert!(t && f);
    }
}
