//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree: `generate` draws a value
/// directly and failures are reported by case seed instead of shrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Erases the strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among boxed strategies (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start
                    + rng.below((self.end - self.start) as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_inclusive(*self.start() as u64, *self.end() as u64) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+);)*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0xDEAD_BEEF)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let a = (3u32..9).generate(&mut r);
            assert!((3..9).contains(&a));
            let b = (1u8..=5).generate(&mut r);
            assert!((1..=5).contains(&b));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
        assert_eq!(Just(41).generate(&mut r), 41);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b) = (1u32..=3, 10u64..20).generate(&mut r);
        assert!((1..=3).contains(&a));
        assert!((10..20).contains(&b));
    }
}
