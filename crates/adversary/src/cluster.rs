//! In-memory clusters of real selection modules with instant propagation.
//!
//! These harnesses run one *real* [`QuorumSelection`] / [`FollowerSelection`]
//! instance per process and deliver every broadcast to every process
//! immediately and reliably — the "favorable system conditions" under which
//! the paper states its interruption bounds. The adversary drives the
//! cluster by puppeteering the faulty processes: feeding fabricated
//! `⟨SUSPECTED⟩` events into their modules (a faulty process may claim any
//! suspicion) and triggering genuine suspicions at correct processes (a
//! faulty process can always make a correct one suspect it, e.g. by
//! omitting an expected message).

use qsel::{FollowerSelection, FsOutput, QsOutput, QuorumSelection};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, Epoch, LeaderQuorum, ProcessId, ProcessSet, Quorum};

use crate::game::QuorumAlgorithm;

/// A cluster of Algorithm 1 modules with instant reliable propagation.
///
/// # Example
///
/// ```
/// use qsel_adversary::cluster::QsCluster;
/// use qsel_types::{ClusterConfig, ProcessId};
///
/// let cfg = ClusterConfig::new(4, 1).unwrap();
/// let mut cluster = QsCluster::new(cfg, 1);
/// // p2 (faulty) forces p1 to suspect it by omitting a message:
/// cluster.cause_suspicion(ProcessId(1), ProcessId(2));
/// let agreed = cluster.agreed_quorum().unwrap();
/// assert!(!agreed.contains(ProcessId(2)));
/// ```
pub struct QsCluster {
    cfg: ClusterConfig,
    modules: Vec<QuorumSelection>,
    issued: Vec<Vec<Quorum>>,
}

impl QsCluster {
    /// Creates a cluster of `n` Algorithm 1 modules sharing a keychain.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        let chain = Keychain::new(&cfg, seed);
        let modules = cfg
            .processes()
            .map(|p| QuorumSelection::new(cfg, p, chain.signer(p), chain.verifier()))
            .collect();
        QsCluster {
            cfg,
            modules,
            issued: vec![Vec::new(); cfg.n() as usize],
        }
    }

    /// Makes `suspecter`'s failure detector momentarily suspect `target`
    /// (raise then cancel — the one-shot suspicion of the Theorem 4 game),
    /// then propagates to quiescence.
    pub fn cause_suspicion(&mut self, suspecter: ProcessId, target: ProcessId) {
        let mut set = ProcessSet::new();
        set.insert(target);
        let out = self.modules[suspecter.index()].on_suspected(set);
        self.record(suspecter, &out);
        let mut pending = Self::updates_of(suspecter, &out);
        // Cancel: the suspicion is one-shot (its stamp persists).
        let out = self.modules[suspecter.index()].on_suspected(ProcessSet::new());
        self.record(suspecter, &out);
        pending.extend(Self::updates_of(suspecter, &out));
        self.propagate(pending);
    }

    fn updates_of(
        from: ProcessId,
        out: &[QsOutput],
    ) -> Vec<(ProcessId, qsel::messages::SignedUpdate)> {
        out.iter()
            .filter_map(|o| match o {
                QsOutput::Broadcast(u) => Some((from, u.clone())),
                _ => None,
            })
            .collect()
    }

    fn record(&mut self, at: ProcessId, out: &[QsOutput]) {
        for o in out {
            if let QsOutput::Quorum(q) = o {
                self.issued[at.index()].push(*q);
            }
        }
    }

    fn propagate(&mut self, mut pending: Vec<(ProcessId, qsel::messages::SignedUpdate)>) {
        while let Some((from, u)) = pending.pop() {
            for p in self.cfg.processes() {
                if p == from {
                    continue;
                }
                let out = self.modules[p.index()].on_update(u.clone());
                self.record(p, &out);
                pending.extend(Self::updates_of(p, &out));
            }
        }
    }

    /// The quorum all processes agree on, or `None` if they differ (they
    /// never should after propagation).
    pub fn agreed_quorum(&self) -> Option<Quorum> {
        let first = self.modules[0].current_quorum();
        self.modules
            .iter()
            .all(|m| m.current_quorum() == first)
            .then_some(first)
    }

    /// The epoch all processes agree on, or `None`.
    pub fn agreed_epoch(&self) -> Option<Epoch> {
        let first = self.modules[0].epoch();
        self.modules.iter().all(|m| m.epoch() == first).then_some(first)
    }

    /// Quorums issued by process `p` so far.
    pub fn issued_by(&self, p: ProcessId) -> &[Quorum] {
        &self.issued[p.index()]
    }

    /// Direct access to a module (for stats).
    pub fn module(&self, p: ProcessId) -> &QuorumSelection {
        &self.modules[p.index()]
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }
}

/// Adapter: a [`QsCluster`] observed from `p_n`'s perspective plays the
/// abstract interruption game, so the *full protocol* (not just the
/// single-epoch graph rule) can face the optimal adversary.
pub struct ClusterUnderAttack {
    cluster: QsCluster,
    observer: ProcessId,
}

impl ClusterUnderAttack {
    /// Wraps a fresh cluster.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        let observer = ProcessId(cfg.n());
        ClusterUnderAttack {
            cluster: QsCluster::new(cfg, seed),
            observer,
        }
    }

    /// Total quorums issued by the observer.
    pub fn observer_issued(&self) -> usize {
        self.cluster.issued_by(self.observer).len()
    }

    /// The observer's per-epoch maximum (Theorem 3's bounded quantity).
    pub fn observer_max_per_epoch(&self) -> u64 {
        self.cluster
            .module(self.observer)
            .stats()
            .max_quorums_in_one_epoch()
    }
}

impl QuorumAlgorithm for ClusterUnderAttack {
    fn quorum(&self) -> ProcessSet {
        *self
            .cluster
            .agreed_quorum()
            .expect("instant propagation keeps the cluster agreed")
            .members()
    }

    fn on_suspicion(&mut self, a: ProcessId, b: ProcessId) -> bool {
        let before = self.cluster.agreed_quorum();
        self.cluster.cause_suspicion(a, b);
        let after = self.cluster.agreed_quorum();
        before != after
    }

    fn fork(&self) -> Box<dyn QuorumAlgorithm> {
        unimplemented!("cluster games use the greedy adversary, which never forks")
    }
}

/// A cluster of Algorithm 2 modules with instant reliable propagation.
pub struct FsCluster {
    cfg: ClusterConfig,
    modules: Vec<FollowerSelection>,
    issued: Vec<Vec<LeaderQuorum>>,
}

enum FsWire {
    Update(ProcessId, qsel::messages::SignedUpdate),
    Followers(ProcessId, qsel::messages::SignedFollowers),
}

impl FsCluster {
    /// Creates a cluster of `n` Algorithm 2 modules (requires `n > 3f`).
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        let chain = Keychain::new(&cfg, seed);
        let modules = cfg
            .processes()
            .map(|p| FollowerSelection::new(cfg, p, chain.signer(p), chain.verifier()))
            .collect();
        FsCluster {
            cfg,
            modules,
            issued: vec![Vec::new(); cfg.n() as usize],
        }
    }

    /// One-shot suspicion of `target` at `suspecter`, propagated to
    /// quiescence (including any FOLLOWERS exchanges it triggers).
    pub fn cause_suspicion(&mut self, suspecter: ProcessId, target: ProcessId) {
        let mut set = ProcessSet::new();
        set.insert(target);
        let out = self.modules[suspecter.index()].on_suspected(set);
        let mut pending = self.collect(suspecter, out);
        let out = self.modules[suspecter.index()].on_suspected(ProcessSet::new());
        pending.extend(self.collect(suspecter, out));
        self.propagate(pending);
    }

    fn collect(&mut self, from: ProcessId, out: Vec<FsOutput>) -> Vec<FsWire> {
        let mut wires = Vec::new();
        for o in out {
            match o {
                FsOutput::BroadcastUpdate(u) => wires.push(FsWire::Update(from, u)),
                FsOutput::BroadcastFollowers(f) => wires.push(FsWire::Followers(from, f)),
                FsOutput::Quorum(lq) => self.issued[from.index()].push(lq),
                // Cancel/Expect/Detected are failure-detector directives;
                // the instant-propagation harness has no detector. A
                // correct leader always answers an Expect, which we emulate
                // by the leader module broadcasting FOLLOWERS itself when
                // it observes its own leadership (built into Algorithm 2).
                FsOutput::Cancel | FsOutput::Expect { .. } | FsOutput::Detected(_) => {}
            }
        }
        wires
    }

    fn propagate(&mut self, pending: Vec<FsWire>) {
        // FIFO to respect the Section VIII assumption.
        let mut queue: std::collections::VecDeque<FsWire> = pending.into();
        while let Some(wire) = queue.pop_front() {
            match wire {
                FsWire::Update(from, u) => {
                    for p in self.cfg.processes() {
                        if p == from {
                            continue;
                        }
                        let out = self.modules[p.index()].on_update(u.clone());
                        queue.extend(self.collect(p, out));
                    }
                }
                FsWire::Followers(from, f) => {
                    for p in self.cfg.processes() {
                        if p == from {
                            continue;
                        }
                        let out = self.modules[p.index()].on_followers(f.clone());
                        queue.extend(self.collect(p, out));
                    }
                }
            }
        }
    }

    /// The leader quorum all processes agree on, or `None`.
    pub fn agreed_quorum(&self) -> Option<LeaderQuorum> {
        let mk = |m: &FollowerSelection| {
            LeaderQuorum::of(&self.cfg, m.leader(), m.current_members().iter()).ok()
        };
        let first = mk(&self.modules[0])?;
        self.modules
            .iter()
            .all(|m| mk(m) == Some(first))
            .then_some(first)
    }

    /// The epoch all processes agree on, or `None`.
    pub fn agreed_epoch(&self) -> Option<Epoch> {
        let first = self.modules[0].epoch();
        self.modules.iter().all(|m| m.epoch() == first).then_some(first)
    }

    /// Leader quorums issued by `p` so far.
    pub fn issued_by(&self, p: ProcessId) -> &[LeaderQuorum] {
        &self.issued[p.index()]
    }

    /// Direct access to a module (for stats).
    pub fn module(&self, p: ProcessId) -> &FollowerSelection {
        &self.modules[p.index()]
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::greedy_adversary;

    #[test]
    fn qs_cluster_agreement_after_suspicion() {
        let cfg = ClusterConfig::new(5, 2).unwrap();
        let mut c = QsCluster::new(cfg, 3);
        c.cause_suspicion(ProcessId(2), ProcessId(1));
        let q = c.agreed_quorum().expect("agreement");
        assert!(!(q.contains(ProcessId(1)) && q.contains(ProcessId(2))));
        assert_eq!(c.agreed_epoch(), Some(Epoch(1)));
    }

    #[test]
    fn qs_cluster_all_issue_same_quorums() {
        let cfg = ClusterConfig::new(5, 2).unwrap();
        let mut c = QsCluster::new(cfg, 3);
        c.cause_suspicion(ProcessId(2), ProcessId(1));
        c.cause_suspicion(ProcessId(3), ProcessId(1));
        c.cause_suspicion(ProcessId(2), ProcessId(3));
        for p in cfg.processes() {
            assert_eq!(
                c.issued_by(p),
                c.issued_by(ProcessId(1)),
                "process {p} issued a different quorum sequence"
            );
        }
    }

    #[test]
    fn full_cluster_respects_theorem3_bound() {
        // The greedy adversary drives the *full protocol*; per-epoch issue
        // counts must respect f(f+1).
        for f in 1..=2u32 {
            let n = 3 * f + 1;
            let cfg = ClusterConfig::new(n, f).unwrap();
            let mut target = ClusterUnderAttack::new(cfg, 5);
            let _ = greedy_adversary(&mut target, n, f);
            assert!(
                target.observer_max_per_epoch() <= (f * (f + 1)) as u64,
                "f={f}"
            );
        }
    }

    #[test]
    fn fs_cluster_leader_attack() {
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let mut c = FsCluster::new(cfg, 9);
        // p2 suspects leader p1.
        c.cause_suspicion(ProcessId(2), ProcessId(1));
        let lq = c.agreed_quorum().expect("agreement");
        assert_eq!(lq.leader(), ProcessId(3));
        assert_eq!(c.agreed_epoch(), Some(Epoch(1)));
    }

    #[test]
    fn fs_cluster_sequential_leader_attacks_bounded() {
        // Keep attacking whoever is leader; Theorem 9: ≤ 3f+1 quorums per
        // epoch at each correct process.
        let f = 2u32;
        let n = 3 * f + 1;
        let cfg = ClusterConfig::new(n, f).unwrap();
        let mut c = FsCluster::new(cfg, 11);
        for _ in 0..20 {
            let Some(lq) = c.agreed_quorum() else { break };
            let leader = lq.leader();
            // A follower of the current quorum suspects the leader.
            let Some(suspecter) = lq.followers().iter().next() else { break };
            c.cause_suspicion(suspecter, leader);
        }
        for p in cfg.processes() {
            let max = c.module(p).stats().max_quorums_in_one_epoch();
            assert!(max <= (3 * f + 1) as u64, "at {p}: {max} > 3f+1");
        }
    }
}
