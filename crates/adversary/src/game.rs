//! The abstract interruption game of Theorem 4.
//!
//! A run is a sequence `Q_1, s_1, Q_2, s_2, …, s_{k-1}, Q_k` where each
//! `s_l` is a suspicion between two members of the then-current quorum
//! `Q_l` (rule 1) and the algorithm must never again put a suspicion's two
//! endpoints in a quorum together (rule 2 — the *no suspicion* property).
//! The adversary's power is bounded by accuracy: every suspicion involves a
//! faulty process, so the set of suspicion pairs must admit a vertex cover
//! of at most `f` nodes.
//!
//! [`max_interruptions`] computes, by exact dynamic programming over pair
//! subsets, the maximum number of quorum *changes* an optimal adversary
//! extracts from a given algorithm in one epoch; Theorem 4 predicts
//! `C(f+2, 2) − 1` changes (i.e. `C(f+2, 2)` proposed quorums counting the
//! initial one) and Theorem 3 bounds Algorithm 1 by `f(f+1)`.

use std::collections::HashMap;

use qsel_graph::SuspectGraph;
use qsel_types::{ProcessId, ProcessSet};

/// A quorum-maintenance algorithm under attack: it exposes its current
/// quorum and reacts to a suspicion between two processes.
pub trait QuorumAlgorithm {
    /// The active quorum before any suspicion (the algorithm's initial
    /// output `Q_1`).
    fn quorum(&self) -> ProcessSet;

    /// Applies a suspicion between `a` and `b`. Returns `true` if the
    /// algorithm issued a new quorum in response.
    fn on_suspicion(&mut self, a: ProcessId, b: ProcessId) -> bool;

    /// Forks the algorithm state (the DP search explores branches).
    fn fork(&self) -> Box<dyn QuorumAlgorithm>;
}

/// Algorithm 1's quorum rule in a single epoch: the quorum is the
/// lexicographically first independent set of size `q` in the accumulated
/// suspect graph.
#[derive(Clone, Debug)]
pub struct LexFirstIs {
    graph: SuspectGraph,
    q: u32,
    current: ProcessSet,
}

impl LexFirstIs {
    /// Creates the single-epoch view of Algorithm 1 on `n` processes with
    /// quorum size `q`.
    ///
    /// # Panics
    ///
    /// Panics if an empty graph on `n` nodes has no independent set of
    /// size `q` (i.e. `q > n`).
    pub fn new(n: u32, q: u32) -> Self {
        let graph = SuspectGraph::new(n);
        let current = graph
            .first_independent_set(q)
            .expect("empty graph must admit the initial quorum");
        LexFirstIs { graph, q, current }
    }

    /// The accumulated suspect graph.
    pub fn graph(&self) -> &SuspectGraph {
        &self.graph
    }
}

impl QuorumAlgorithm for LexFirstIs {
    fn quorum(&self) -> ProcessSet {
        self.current
    }

    fn on_suspicion(&mut self, a: ProcessId, b: ProcessId) -> bool {
        self.graph.add_edge(a, b);
        match self.graph.first_independent_set(self.q) {
            Some(q) => {
                let changed = q != self.current;
                self.current = q;
                changed
            }
            // No independent set: in the full protocol this triggers an
            // epoch change; within the single-epoch game it ends the run.
            // (Under the vertex-cover ≤ f constraint this cannot happen.)
            None => false,
        }
    }

    fn fork(&self) -> Box<dyn QuorumAlgorithm> {
        Box::new(self.clone())
    }
}

/// The XPaxos baseline (paper §V-B): quorums are enumerated in
/// lexicographic order; any suspicion inside the active quorum moves to the
/// next enumerated quorum, round-robin.
#[derive(Clone, Debug)]
pub struct RoundRobinEnumeration {
    n: u32,
    q: u32,
    /// Current combination as sorted zero-based indices.
    indices: Vec<usize>,
}

impl RoundRobinEnumeration {
    /// Creates the enumeration starting at the first combination
    /// `{p_1, …, p_q}`.
    pub fn new(n: u32, q: u32) -> Self {
        assert!(q >= 1 && q <= n);
        RoundRobinEnumeration {
            n,
            q,
            indices: (0..q as usize).collect(),
        }
    }

    fn advance(&mut self) {
        let n = self.n as usize;
        let k = self.q as usize;
        // Next k-combination in lexicographic order, wrapping around.
        let mut i = k;
        loop {
            if i == 0 {
                self.indices = (0..k).collect(); // wrapped (round robin)
                return;
            }
            i -= 1;
            if self.indices[i] != i + n - k {
                break;
            }
            if i == 0 {
                self.indices = (0..k).collect();
                return;
            }
        }
        self.indices[i] += 1;
        for j in i + 1..k {
            self.indices[j] = self.indices[j - 1] + 1;
        }
    }

    /// How many quorum changes a single always-misbehaving faulty process
    /// `culprit` causes before the enumeration reaches a quorum excluding
    /// it (the paper's complaint: "an attacker may cause the quorum to
    /// change repeatedly over a long period").
    pub fn changes_until_excluding(n: u32, q: u32, culprit: ProcessId) -> u64 {
        let mut algo = RoundRobinEnumeration::new(n, q);
        let mut changes = 0;
        while algo.quorum().contains(culprit) {
            // The culprit misbehaves toward some other quorum member.
            let other = algo
                .quorum()
                .iter()
                .find(|p| *p != culprit)
                .expect("quorum has at least two members");
            algo.on_suspicion(culprit, other);
            changes += 1;
            assert!(changes < 1 << 40, "enumeration failed to exclude culprit");
        }
        changes
    }
}

impl QuorumAlgorithm for RoundRobinEnumeration {
    fn quorum(&self) -> ProcessSet {
        self.indices
            .iter()
            .map(|&i| ProcessId::from_index(i))
            .collect()
    }

    fn on_suspicion(&mut self, a: ProcessId, b: ProcessId) -> bool {
        let q = self.quorum();
        if q.contains(a) && q.contains(b) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn fork(&self) -> Box<dyn QuorumAlgorithm> {
        Box::new(self.clone())
    }
}

/// All unordered pairs within the adversary's `f + 2`-node attack window
/// `{p_1, …, p_{f+2}}` (the Theorem 4 proof confines suspicions to such a
/// set: `f` eventual faulty nodes plus 2 sacrificial correct ones).
fn window_pairs(f: u32) -> Vec<(ProcessId, ProcessId)> {
    let w = f + 2;
    let mut pairs = Vec::new();
    for a in 1..=w {
        for b in a + 1..=w {
            pairs.push((ProcessId(a), ProcessId(b)));
        }
    }
    pairs
}

/// Whether the pairs selected by `mask` (indices into `pairs`) admit a
/// vertex cover of at most `f` nodes — i.e. whether an adversary
/// controlling `f` faulty processes can have caused exactly those
/// suspicions under an accurate failure detector.
fn explainable(pairs: &[(ProcessId, ProcessId)], mask: u64, n: u32, f: u32) -> bool {
    let mut g = SuspectGraph::new(n);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        if mask & (1 << i) != 0 {
            g.add_edge(a, b);
        }
    }
    g.has_vertex_cover(f)
}

/// Result of an interruption-game search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GameResult {
    /// Maximum quorum *changes* the adversary achieved.
    pub changes: u64,
    /// One optimal suspicion sequence.
    pub schedule: Vec<(ProcessId, ProcessId)>,
}

/// Exact optimal adversary against `algo` on `n` processes tolerating `f`
/// faults, with suspicions confined to the window `{p_1, …, p_{f+2}}`.
///
/// Dynamic programming over subsets of the `C(f+2, 2)` window pairs —
/// feasible for `f ≤ 5` (≤ 2²¹ states). The paper's conjecture (text below
/// Theorem 3) is that the result for Algorithm 1 ([`LexFirstIs`]) is
/// `C(f+2, 2) − 1` changes, i.e. `C(f+2, 2)` proposed quorums.
///
/// # Panics
///
/// Panics if `f > 5` (use [`greedy_adversary`] instead).
pub fn max_interruptions(algo: &dyn QuorumAlgorithm, n: u32, f: u32) -> GameResult {
    assert!(f <= 5, "exact search is exponential; use greedy_adversary for f > 5");
    let pairs = window_pairs(f);
    assert!(pairs.len() <= 60);
    let mut memo: HashMap<u64, (u64, Option<usize>)> = HashMap::new();
    let best = search(algo, n, f, &pairs, 0, &mut memo);
    // Reconstruct one optimal schedule from the memo.
    let mut schedule = Vec::new();
    let mut mask = 0u64;
    let mut state = algo.fork();
    while let Some(&(_, Some(next))) = memo.get(&mask) {
        let (a, b) = pairs[next];
        schedule.push((a, b));
        state.on_suspicion(a, b);
        mask |= 1 << next;
    }
    GameResult { changes: best, schedule }
}

fn search(
    algo: &dyn QuorumAlgorithm,
    n: u32,
    f: u32,
    pairs: &[(ProcessId, ProcessId)],
    mask: u64,
    memo: &mut HashMap<u64, (u64, Option<usize>)>,
) -> u64 {
    if let Some(&(v, _)) = memo.get(&mask) {
        return v;
    }
    let quorum = algo.quorum();
    let mut best = 0u64;
    let mut best_move = None;
    for (i, &(a, b)) in pairs.iter().enumerate() {
        if mask & (1 << i) != 0 {
            continue;
        }
        if !(quorum.contains(a) && quorum.contains(b)) {
            continue; // rule 1: suspicion must be inside the current quorum
        }
        let next_mask = mask | (1 << i);
        if !explainable(pairs, next_mask, n, f) {
            continue; // accuracy: must stay attributable to f faulty nodes
        }
        let mut forked = algo.fork();
        let changed = forked.on_suspicion(a, b);
        let sub = search(forked.as_ref(), n, f, pairs, next_mask, memo);
        let total = sub + u64::from(changed);
        if total > best {
            best = total;
            best_move = Some(i);
        }
    }
    memo.insert(mask, (best, best_move));
    best
}

/// Greedy adversary for larger `f`: at each step pick the first window pair
/// inside the current quorum that keeps the suspicion set explainable.
/// Returns the achieved changes (a lower bound on the optimum).
pub fn greedy_adversary(algo: &mut dyn QuorumAlgorithm, n: u32, f: u32) -> GameResult {
    let pairs = window_pairs(f);
    let mut mask = 0u64;
    let mut changes = 0;
    let mut schedule = Vec::new();
    loop {
        let quorum = algo.quorum();
        let candidate = pairs.iter().enumerate().find(|(i, (a, b))| {
            mask & (1 << i) == 0
                && quorum.contains(*a)
                && quorum.contains(*b)
                && explainable(&pairs, mask | (1 << i), n, f)
        });
        let Some((i, &(a, b))) = candidate else {
            return GameResult { changes, schedule };
        };
        mask |= 1 << i;
        if algo.on_suspicion(a, b) {
            changes += 1;
        }
        schedule.push((a, b));
        assert!(schedule.len() <= pairs.len(), "game cannot outlast the pair supply");
    }
}

/// The binomial coefficient `C(n, k)` (u128 to survive `C(60, 30)`-scale
/// baseline counts).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(10, 3), 120);
    }

    #[test]
    fn lex_first_initial_quorum() {
        let algo = LexFirstIs::new(4, 3);
        assert_eq!(
            algo.quorum().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn lex_first_reacts_to_in_quorum_suspicion() {
        let mut algo = LexFirstIs::new(4, 3);
        assert!(algo.on_suspicion(ProcessId(1), ProcessId(2)));
        assert_eq!(
            algo.quorum().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
        // Suspicion outside the quorum (p2 no longer a member):
        assert!(!algo.on_suspicion(ProcessId(2), ProcessId(4)));
    }

    #[test]
    fn enumeration_advances_on_any_in_quorum_suspicion() {
        let mut algo = RoundRobinEnumeration::new(4, 3);
        assert_eq!(
            algo.quorum().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(algo.on_suspicion(ProcessId(1), ProcessId(2)));
        assert_eq!(
            algo.quorum().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        // p1 and p2 still together! The enumeration does not learn.
        assert!(algo.on_suspicion(ProcessId(1), ProcessId(2)));
        assert_eq!(
            algo.quorum().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 3, 4]
        );
    }

    #[test]
    fn enumeration_wraps_round_robin() {
        let mut algo = RoundRobinEnumeration::new(3, 2);
        // Combinations of size 2 from 3: {1,2}, {1,3}, {2,3}, wrap to {1,2}.
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(algo.quorum().iter().map(|p| p.0).collect::<Vec<_>>());
            algo.advance();
        }
        assert_eq!(seen, vec![vec![1, 2], vec![1, 3], vec![2, 3], vec![1, 2]]);
    }

    #[test]
    fn enumeration_exclusion_cost_is_binomial() {
        // With the culprit being p1 and lexicographic enumeration, every
        // combination containing p1 comes first: C(n-1, q-1) changes.
        for (n, f) in [(4u32, 1u32), (5, 1), (7, 2)] {
            let q = n - f;
            let changes =
                RoundRobinEnumeration::changes_until_excluding(n, q, ProcessId(1));
            assert_eq!(
                changes as u128,
                binomial((n - 1) as u64, (q - 1) as u64),
                "n={n} q={q}"
            );
        }
    }

    #[test]
    fn explainability_is_vertex_cover() {
        let pairs = window_pairs(1); // pairs on {1,2,3}
        // A star at p1: edges (1,2), (1,3) → cover {p1}, f = 1 OK.
        let star = 0b011; // (1,2), (1,3) — window_pairs order: (1,2),(1,3),(2,3)
        assert!(explainable(&pairs, star, 4, 1));
        // The triangle needs cover 2 > 1.
        assert!(!explainable(&pairs, 0b111, 4, 1));
    }

    #[test]
    fn optimal_adversary_f1_matches_paper() {
        // f = 1: Theorem 4 predicts C(3,2) = 3 proposed quorums, i.e. 2
        // changes; Theorem 3 bounds Algorithm 1 by f(f+1) = 2 changes.
        let algo = LexFirstIs::new(4, 3);
        let result = max_interruptions(&algo, 4, 1);
        assert_eq!(result.changes, 2);
        assert_eq!(result.schedule.len(), 2);
    }

    #[test]
    fn optimal_adversary_f2_matches_conjecture() {
        // f = 2: conjectured max = C(4,2) − 1 = 5 changes (< f(f+1) = 6).
        let algo = LexFirstIs::new(7, 5);
        let result = max_interruptions(&algo, 7, 2);
        assert_eq!(result.changes, 5);
    }

    #[test]
    fn optimal_schedule_replays_to_same_count() {
        let algo = LexFirstIs::new(7, 5);
        let result = max_interruptions(&algo, 7, 2);
        let mut replay = LexFirstIs::new(7, 5);
        let mut changes = 0;
        for (a, b) in &result.schedule {
            // Rule 1 must hold at replay time.
            assert!(replay.quorum().contains(*a) && replay.quorum().contains(*b));
            if replay.on_suspicion(*a, *b) {
                changes += 1;
            }
        }
        assert_eq!(changes, result.changes);
    }

    #[test]
    fn greedy_never_beats_optimal() {
        for f in 1..=3u32 {
            let n = 3 * f + 1;
            let q = n - f;
            let optimal = max_interruptions(&LexFirstIs::new(n, q), n, f);
            let mut algo = LexFirstIs::new(n, q);
            let greedy = greedy_adversary(&mut algo, n, f);
            assert!(greedy.changes <= optimal.changes, "f={f}");
        }
    }

    #[test]
    fn theorem3_upper_bound_never_exceeded() {
        for f in 1..=3u32 {
            for n in [2 * f + 1, 3 * f + 1, 3 * f + 3] {
                let q = n - f;
                let result = max_interruptions(&LexFirstIs::new(n, q), n, f);
                assert!(
                    result.changes <= (f * (f + 1)) as u64,
                    "f={f} n={n}: {} > f(f+1)",
                    result.changes
                );
            }
        }
    }
}
