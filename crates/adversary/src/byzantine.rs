//! Network-level Byzantine actors for `qsel-simnet` clusters.
//!
//! Omission and timing failures on individual links are injected with
//! [`qsel_simnet::LinkState`] (dropping or delaying a correct process's
//! traffic is observationally identical to the sender omitting/delaying
//! it). The actors here cover the misbehaviours that are *not* expressible
//! as link faults:
//!
//! * [`MuteProcess`] — sends nothing at all (the "mute"/"quiet" processes
//!   of the related work discussed in Section III).
//! * [`FalseAccuser`] — runs the honest protocol but additionally
//!   broadcasts correctly-signed `UPDATE` rows containing fabricated
//!   suspicions against chosen victims. Note that a signed row can only
//!   fabricate suspicions *by the accuser*, so every fabricated edge is
//!   incident to a faulty process — exactly the power the paper's
//!   adversary model grants.
//!
//! [`ClusterActor`] is the dispatch enum used to mix honest and Byzantine
//! behaviour in one simulation.

use qsel::messages::UpdateRow;
use qsel::node::{NodeConfig, SelectorNode, ServiceMsg};
use qsel_simnet::{Actor, Context, SimDuration, TimerId};
use qsel_types::crypto::{Keychain, Signer};
use qsel_types::{ClusterConfig, Epoch, ProcessId};

/// A process that never sends anything (repeated omission of everything).
#[derive(Debug, Default)]
pub struct MuteProcess;

impl Actor<ServiceMsg> for MuteProcess {
    fn on_start(&mut self, _ctx: &mut Context<'_, ServiceMsg>) {}
    fn on_message(&mut self, _ctx: &mut Context<'_, ServiceMsg>, _from: ProcessId, _msg: ServiceMsg) {}
    fn on_timer(&mut self, _ctx: &mut Context<'_, ServiceMsg>, _timer: TimerId) {}
}

const TIMER_ACCUSE: TimerId = TimerId(100);

/// Runs the honest node, plus periodic fabricated suspicions against the
/// configured victims.
#[derive(Debug)]
pub struct FalseAccuser {
    inner: SelectorNode,
    signer: Signer,
    cfg: ClusterConfig,
    victims: Vec<ProcessId>,
    period: SimDuration,
    row: Vec<Epoch>,
    /// Number of forged UPDATE broadcasts sent.
    pub accusations_sent: u64,
}

impl FalseAccuser {
    /// A false accuser at `me` targeting `victims`, forging an accusation
    /// every `period`.
    pub fn new(
        cfg: ClusterConfig,
        me: ProcessId,
        chain: &Keychain,
        node_cfg: NodeConfig,
        victims: Vec<ProcessId>,
        period: SimDuration,
    ) -> Self {
        FalseAccuser {
            inner: SelectorNode::new_quorum(cfg, me, chain, node_cfg),
            signer: chain.signer(me),
            cfg,
            victims,
            period,
            row: vec![Epoch::NEVER; cfg.n() as usize],
            accusations_sent: 0,
        }
    }

    /// The wrapped (honestly-behaving) node, for inspection.
    pub fn inner(&self) -> &SelectorNode {
        &self.inner
    }

    fn accuse(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        // Stamp every victim at our current epoch so the fabricated
        // suspicions are visible in the current suspect graph.
        let epoch = self.inner.epoch();
        for v in &self.victims {
            let cell = &mut self.row[v.index()];
            if epoch > *cell {
                *cell = epoch;
            }
        }
        let forged = self.signer.sign(UpdateRow { row: self.row.clone() });
        let me = self.signer.id();
        let peers: Vec<ProcessId> = self.cfg.processes().filter(|p| *p != me).collect();
        ctx.send_all(peers, ServiceMsg::Update(forged));
        self.accusations_sent += 1;
        ctx.set_timer(self.period, TIMER_ACCUSE);
    }
}

impl Actor<ServiceMsg> for FalseAccuser {
    fn on_start(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        self.inner.on_start(ctx);
        self.accuse(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ServiceMsg>, from: ProcessId, msg: ServiceMsg) {
        self.inner.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ServiceMsg>, timer: TimerId) {
        if timer == TIMER_ACCUSE {
            self.accuse(ctx);
        } else {
            self.inner.on_timer(ctx, timer);
        }
    }
}

/// A simulation participant: honest or one of the Byzantine behaviours.
#[derive(Debug)]
pub enum ClusterActor {
    /// A correct process.
    Honest(SelectorNode),
    /// A mute process.
    Mute(MuteProcess),
    /// A false accuser.
    Accuser(FalseAccuser),
}

impl ClusterActor {
    /// The honest node inside, if this actor has one.
    pub fn node(&self) -> Option<&SelectorNode> {
        match self {
            ClusterActor::Honest(n) => Some(n),
            ClusterActor::Accuser(a) => Some(a.inner()),
            ClusterActor::Mute(_) => None,
        }
    }
}

impl Actor<ServiceMsg> for ClusterActor {
    fn on_start(&mut self, ctx: &mut Context<'_, ServiceMsg>) {
        match self {
            ClusterActor::Honest(n) => n.on_start(ctx),
            ClusterActor::Mute(m) => m.on_start(ctx),
            ClusterActor::Accuser(a) => a.on_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ServiceMsg>, from: ProcessId, msg: ServiceMsg) {
        match self {
            ClusterActor::Honest(n) => n.on_message(ctx, from, msg),
            ClusterActor::Mute(m) => m.on_message(ctx, from, msg),
            ClusterActor::Accuser(a) => a.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ServiceMsg>, timer: TimerId) {
        match self {
            ClusterActor::Honest(n) => n.on_timer(ctx, timer),
            ClusterActor::Mute(m) => m.on_timer(ctx, timer),
            ClusterActor::Accuser(a) => a.on_timer(ctx, timer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsel_simnet::{SimConfig, SimTime, Simulation};

    fn honest(cfg: ClusterConfig, p: ProcessId, chain: &Keychain) -> ClusterActor {
        ClusterActor::Honest(SelectorNode::new_quorum(cfg, p, chain, NodeConfig::default()))
    }

    #[test]
    fn mute_process_gets_excluded() {
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let chain = Keychain::new(&cfg, 17);
        let actors: Vec<ClusterActor> = cfg
            .processes()
            .map(|p| {
                if p == ProcessId(3) {
                    ClusterActor::Mute(MuteProcess)
                } else {
                    honest(cfg, p, &chain)
                }
            })
            .collect();
        let mut sim = Simulation::new(SimConfig::new(4, 17), actors);
        sim.run_until(SimTime::from_micros(200_000));
        for p in [1, 2, 4].map(ProcessId) {
            let q = sim.actor(p).node().unwrap().current_plain_quorum().unwrap();
            assert!(!q.contains(ProcessId(3)), "at {p}: {q}");
        }
    }

    #[test]
    fn false_accuser_can_push_a_correct_victim_out() {
        // p1 fabricates suspicions against p2. The suspicion edge (1,2)
        // keeps them from sharing a quorum; the lexicographically first
        // independent set is {1,3,4} — the *correct* victim is excluded.
        // The paper explicitly allows this: quorums need not contain only
        // correct processes, they only need to be suspicion-free.
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let chain = Keychain::new(&cfg, 23);
        let actors: Vec<ClusterActor> = cfg
            .processes()
            .map(|p| {
                if p == ProcessId(1) {
                    ClusterActor::Accuser(FalseAccuser::new(
                        cfg,
                        p,
                        &chain,
                        NodeConfig::default(),
                        vec![ProcessId(2)],
                        SimDuration::millis(10),
                    ))
                } else {
                    honest(cfg, p, &chain)
                }
            })
            .collect();
        let mut sim = Simulation::new(SimConfig::new(4, 23), actors);
        sim.run_until(SimTime::from_micros(100_000));
        for p in [2, 3, 4].map(ProcessId) {
            let q = sim.actor(p).node().unwrap().current_plain_quorum().unwrap();
            assert!(
                !(q.contains(ProcessId(1)) && q.contains(ProcessId(2))),
                "suspicion edge inside quorum at {p}: {q}"
            );
        }
    }

    #[test]
    fn accuser_counts_forgeries() {
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let chain = Keychain::new(&cfg, 29);
        let mut acc = FalseAccuser::new(
            cfg,
            ProcessId(1),
            &chain,
            NodeConfig::default(),
            vec![ProcessId(2)],
            SimDuration::millis(1),
        );
        assert_eq!(acc.accusations_sent, 0);
        let actors = vec![
            ClusterActor::Accuser(std::mem::replace(
                &mut acc,
                FalseAccuser::new(
                    cfg,
                    ProcessId(1),
                    &chain,
                    NodeConfig::default(),
                    vec![],
                    SimDuration::millis(1),
                ),
            )),
            honest(cfg, ProcessId(2), &chain),
            honest(cfg, ProcessId(3), &chain),
            honest(cfg, ProcessId(4), &chain),
        ];
        let mut sim = Simulation::new(SimConfig::new(4, 29), actors);
        sim.run_until(SimTime::from_micros(20_000));
        let ClusterActor::Accuser(a) = sim.actor(ProcessId(1)) else {
            panic!("actor 1 is the accuser");
        };
        assert!(a.accusations_sent >= 10);
    }
}
