//! Adversary strategies and measurement harnesses for Quorum Selection.
//!
//! The paper's evaluation is a set of bounds on how often faulty processes
//! can interrupt the system once the failure detector is accurate:
//!
//! * **Theorem 3** — Algorithm 1 issues at most `f(f+1)` quorums per epoch.
//! * below Theorem 3 — "Our simulations suggest that Algorithm 1 actually
//!   allows at most `C(f+2, 2)` quorums in one epoch."
//! * **Theorem 4** — no deterministic algorithm can avoid `C(f+2, 2)`
//!   proposed quorums.
//! * **Theorem 9 / Corollary 10** — Follower Selection needs at most
//!   `3f + 1` quorums per epoch, `6f + 2` after stabilization.
//!
//! This crate makes those bounds executable:
//!
//! * [`game`] — the abstract single-epoch interruption game of Theorem 4:
//!   an adversary causes suspicions inside the current quorum, constrained
//!   to be *explainable* by `f` faulty processes (the suspicion pairs must
//!   admit a vertex cover of size ≤ f). Includes an exact
//!   dynamic-programming search for the optimal adversary and a greedy
//!   strategy for larger `f`, plus the XPaxos round-robin enumeration
//!   baseline.
//! * [`cluster`] — in-memory clusters of *real* `QuorumSelection` /
//!   `FollowerSelection` modules with instant reliable propagation, which
//!   the adversary drives by puppeteering the faulty processes' failure
//!   detectors and signing keys.
//! * [`byzantine`] — network-level Byzantine actors for `qsel-simnet`
//!   runs: mute processes, false accusers, and selectively-omitting or
//!   delaying variants of the honest node.
//! * [`registry`] — the by-name strategy registry the declarative
//!   scenario layer (`qsel-scenario`) resolves adversary configuration
//!   through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
pub mod cluster;
pub mod game;
pub mod registry;
