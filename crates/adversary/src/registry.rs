//! A by-name registry of adversary strategies.
//!
//! The scenario layer (`qsel-scenario`) configures Byzantine behaviour
//! declaratively: a scenario file names a strategy and the runner
//! instantiates the matching actor. This module owns the naming so every
//! stack that mixes adversaries into a simulation — the XPaxos harness,
//! the selector-cluster harness, future runtimes — agrees on what
//! `"gray"` or `"equivocate"` means.
//!
//! A [`Strategy`] is a pure descriptor: strategy kind plus the parameters
//! the kind needs. It deliberately does *not* construct actors, because
//! actor types differ per protocol stack (an equivocating XPaxos leader
//! sends conflicting `PREPARE`s; an equivocating selector node would forge
//! `UPDATE` rows). Runners match on the descriptor and build the actor for
//! their own message type.

use std::fmt;

/// A named, parameterized adversary strategy controlling one process.
///
/// The process under adversary control is configured alongside the
/// strategy (scenario files carry a `process` key); the descriptor itself
/// is placement-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// No adversary: every process runs the honest protocol.
    None,
    /// The controlled process sends nothing at all (a repeated omission
    /// failure of everything — the "mute" processes of Section III).
    Mute,
    /// The controlled process equivocates once (conflicting proposals to
    /// different followers), then goes quiet. Models the commission
    /// failure the detector's `⟨DETECTED⟩` path must catch.
    Equivocate,
    /// Gray failure: the controlled process runs the honest protocol but
    /// handles every incoming message `delay_us` microseconds late. It is
    /// slow but not silent — its timer-driven traffic (heartbeats) stays
    /// prompt, so naive liveness detectors see a healthy peer while
    /// request processing crawls.
    Gray {
        /// Added processing delay per incoming message, in microseconds.
        delay_us: u64,
    },
    /// The controlled process runs the honest protocol but tampers with
    /// every state-transfer chunk it serves (flipping batch contents while
    /// keeping the claimed slots and proofs). A recovering replica must
    /// reject the chunks by MMR verification and fail over to another
    /// donor (qsel-lint S1: verify before use).
    CorruptTransfer,
}

impl Strategy {
    /// Every registered strategy name, for error messages and docs.
    pub const NAMES: [&'static str; 5] = ["none", "mute", "equivocate", "gray", "corrupt-transfer"];

    /// The registry name of this strategy.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::None => "none",
            Strategy::Mute => "mute",
            Strategy::Equivocate => "equivocate",
            Strategy::Gray { .. } => "gray",
            Strategy::CorruptTransfer => "corrupt-transfer",
        }
    }

    /// Looks up a strategy by registry name. `delay_us` is required by
    /// `"gray"` and must be absent for every other name.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown names or mismatched
    /// parameters (the scenario parser attaches line numbers to it).
    pub fn from_name(name: &str, delay_us: Option<u64>) -> Result<Strategy, String> {
        match (name, delay_us) {
            ("none", None) => Ok(Strategy::None),
            ("mute", None) => Ok(Strategy::Mute),
            ("equivocate", None) => Ok(Strategy::Equivocate),
            ("gray", Some(delay_us)) => Ok(Strategy::Gray { delay_us }),
            ("gray", None) => Err("strategy \"gray\" requires delay_us".to_string()),
            ("corrupt-transfer", None) => Ok(Strategy::CorruptTransfer),
            ("none" | "mute" | "equivocate" | "corrupt-transfer", Some(_)) => {
                Err(format!("strategy \"{name}\" takes no delay_us"))
            }
            (other, _) => Err(format!(
                "unknown adversary strategy \"{other}\" (known: {})",
                Strategy::NAMES.join(", ")
            )),
        }
    }

    /// Whether this strategy replaces an honest process with an
    /// adversarial actor (i.e. a `process` placement is required).
    pub fn controls_a_process(&self) -> bool {
        !matches!(self, Strategy::None)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Gray { delay_us } => write!(f, "gray(delay_us={delay_us})"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_lookup() {
        assert_eq!(Strategy::from_name("none", None), Ok(Strategy::None));
        assert_eq!(Strategy::from_name("mute", None), Ok(Strategy::Mute));
        assert_eq!(
            Strategy::from_name("equivocate", None),
            Ok(Strategy::Equivocate)
        );
        assert_eq!(
            Strategy::from_name("gray", Some(2_000)),
            Ok(Strategy::Gray { delay_us: 2_000 })
        );
        assert_eq!(
            Strategy::from_name("corrupt-transfer", None),
            Ok(Strategy::CorruptTransfer)
        );
        for s in [
            Strategy::None,
            Strategy::Mute,
            Strategy::Equivocate,
            Strategy::Gray { delay_us: 1 },
            Strategy::CorruptTransfer,
        ] {
            assert!(Strategy::NAMES.contains(&s.name()));
        }
    }

    #[test]
    fn unknown_name_is_rejected_with_known_list() {
        let err = Strategy::from_name("warp", None).unwrap_err();
        assert!(err.contains("unknown adversary strategy"), "{err}");
        assert!(err.contains("equivocate"), "{err}");
    }

    #[test]
    fn parameter_mismatches_are_rejected() {
        assert!(Strategy::from_name("gray", None).is_err());
        assert!(Strategy::from_name("mute", Some(5)).is_err());
        assert!(Strategy::from_name("corrupt-transfer", Some(5)).is_err());
    }

    #[test]
    fn only_none_controls_no_process() {
        assert!(!Strategy::None.controls_a_process());
        assert!(Strategy::Mute.controls_a_process());
        assert!(Strategy::Equivocate.controls_a_process());
        assert!(Strategy::Gray { delay_us: 1 }.controls_a_process());
        assert!(Strategy::CorruptTransfer.controls_a_process());
    }
}
