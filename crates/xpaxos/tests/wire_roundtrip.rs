//! Wire round-trip property tests for [`XpMsg`]: every message variant
//! must decode back to itself from its canonical encoding, over arbitrary
//! batched payloads — including the empty batch and the max-size batch the
//! batching tentpole allows — so length-prefix bugs in `qsel-types::encode`
//! surface here rather than in a live cluster.

use proptest::prelude::*;
use qsel::messages::UpdateRow;
use qsel_mmr::{leaf_hash, Mmr};
use qsel_types::CheckpointPayload;
use qsel_types::crypto::Keychain;
use qsel_types::encode::{decode_from_slice, encode_to_vec};
use qsel_types::{ClusterConfig, Epoch, ProcessId};
use qsel_xpaxos::messages::{
    Batch, CheckpointCert, CommitPayload, CompactEntry, DecidedEntry, HeartbeatPayload,
    NewViewPayload, PreparePayload, Reply, Request, ViewChangePayload, XpMsg,
};

/// Builds one of every `XpMsg` variant from the given batch contents.
fn all_variants(view: u64, slot: u64, reqs: Vec<Request>) -> Vec<XpMsg> {
    let cfg = ClusterConfig::new(4, 1).unwrap();
    let chain = Keychain::new(&cfg, 42);
    let leader = chain.signer(ProcessId(1));
    let follower = chain.signer(ProcessId(2));
    let batch = Batch::new(reqs.clone());
    let prepare = leader.sign(PreparePayload {
        view,
        slot,
        batch: batch.clone(),
    });
    let commit = follower.sign(CommitPayload {
        view,
        slot,
        digest: batch.digest(),
        prepare: prepare.clone(),
    });
    let (ckpt_votes, compact_entries) = mmr_fixture(&chain, view, &batch);
    vec![
        XpMsg::Request(reqs.first().cloned().unwrap_or(Request {
            client: ProcessId(9),
            op: 0,
            payload: 0,
        })),
        XpMsg::Prepare(prepare.clone()),
        XpMsg::Commit(commit.clone()),
        XpMsg::Reply(Reply {
            view,
            op: slot,
            result: slot.wrapping_mul(3),
        }),
        XpMsg::ViewChange(follower.sign(ViewChangePayload {
            target_view: view + 1,
            watermark: slot,
            prepared: vec![prepare.clone()],
        })),
        XpMsg::NewView(leader.sign(NewViewPayload {
            view: view + 1,
            base: slot,
            reproposals: vec![prepare.clone()],
        })),
        XpMsg::Update(leader.sign(UpdateRow {
            row: vec![Epoch(0), Epoch(view), Epoch(1), Epoch(slot)],
        })),
        XpMsg::Heartbeat(leader.sign(HeartbeatPayload { seq: slot })),
        XpMsg::LazyUpdate {
            entries: vec![DecidedEntry {
                prepare: prepare.clone(),
                commits: vec![commit],
            }],
        },
        XpMsg::StateFetch {
            from_slot: slot,
            to_slot: slot + 7,
        },
        XpMsg::StateBatch {
            entries: vec![DecidedEntry {
                prepare,
                commits: vec![],
            }],
        },
        XpMsg::Checkpoint(ckpt_votes[0].clone()),
        XpMsg::SyncQuery { watermark: slot },
        XpMsg::SyncInfo {
            checkpoint: Some(CheckpointCert { sigs: ckpt_votes }),
            archive_from: slot / 2,
            frontier: slot + 3,
        },
        XpMsg::SyncInfo {
            checkpoint: None,
            archive_from: 0,
            frontier: slot,
        },
        XpMsg::SyncFetch {
            from_slot: slot,
            to_slot: slot + 5,
            proof_slot: slot + 9,
        },
        XpMsg::SyncChunk {
            entries: compact_entries,
            proof_slot: slot + 9,
        },
    ]
}

/// A real 3-leaf MMR over the batch digest: genuine inclusion proofs and
/// peaks, so the checkpoint/sync variants round-trip production-shaped
/// payloads rather than hand-rolled placeholder bytes.
fn mmr_fixture(
    chain: &Keychain,
    view: u64,
    batch: &Batch,
) -> (Vec<qsel_xpaxos::messages::SignedCheckpoint>, Vec<CompactEntry>) {
    let mut mmr = Mmr::new();
    for leaf_slot in 0..3u64 {
        mmr.push(leaf_hash(leaf_slot, &batch.digest()));
    }
    let payload = CheckpointPayload {
        slot: 3,
        state: view.wrapping_mul(7),
        peaks: mmr.peaks().unwrap(),
    };
    let votes = vec![
        chain.signer(ProcessId(1)).sign(payload.clone()),
        chain.signer(ProcessId(2)).sign(payload),
    ];
    let entries = (0..3u64)
        .map(|leaf_slot| CompactEntry {
            slot: leaf_slot,
            batch: batch.clone(),
            proof: mmr.proof_at(leaf_slot, 3).unwrap(),
        })
        .collect();
    (votes, entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary batched payloads (sizes 0..=32) round-trip through every
    /// message variant.
    #[test]
    fn every_variant_roundtrips_over_arbitrary_batches(
        view in 0u64..1_000,
        slot in 0u64..1_000_000,
        raw in proptest::collection::vec(
            (1u32..100, 0u64..10_000, 0u64..u64::MAX),
            0..33
        ),
    ) {
        let reqs: Vec<Request> = raw
            .into_iter()
            .map(|(client, op, payload)| Request {
                client: ProcessId(client),
                op,
                payload,
            })
            .collect();
        for msg in all_variants(view, slot, reqs) {
            let bytes = encode_to_vec(&msg);
            let back: XpMsg = decode_from_slice(&bytes)
                .unwrap_or_else(|e| panic!("decode failed for {msg:?}: {e}"));
            prop_assert_eq!(back, msg);
        }
    }

    /// Truncating an encoded message at any byte is rejected, never a
    /// panic or a bogus success.
    #[test]
    fn truncation_is_always_rejected(
        cut_denominator in 1u64..=97,
        raw in proptest::collection::vec(
            (1u32..100, 0u64..10_000, 0u64..u64::MAX),
            0..9
        ),
    ) {
        let reqs: Vec<Request> = raw
            .into_iter()
            .map(|(client, op, payload)| Request {
                client: ProcessId(client),
                op,
                payload,
            })
            .collect();
        for msg in all_variants(3, 17, reqs) {
            let bytes = encode_to_vec(&msg);
            // A deterministic sample of cut points per case keeps runtime
            // sane; the explicit edge cuts always run.
            let mut cuts = vec![0, bytes.len() / 2, bytes.len() - 1];
            cuts.push((bytes.len() as u64 % cut_denominator) as usize);
            cuts.retain(|c| *c < bytes.len());
            for cut in cuts {
                let r: Result<XpMsg, _> = decode_from_slice(&bytes[..cut]);
                prop_assert!(r.is_err(), "truncation to {cut} bytes accepted");
            }
        }
    }
}

/// The two batch-size extremes the tentpole allows, explicitly.
#[test]
fn empty_and_max_batches_roundtrip() {
    let empty: Vec<Request> = vec![];
    let max: Vec<Request> = (0..32)
        .map(|i| Request {
            client: ProcessId(100 + i),
            op: u64::from(i),
            payload: u64::MAX - u64::from(i),
        })
        .collect();
    for reqs in [empty, max] {
        for msg in all_variants(0, 0, reqs) {
            let bytes = encode_to_vec(&msg);
            let back: XpMsg = decode_from_slice(&bytes).expect("roundtrip");
            assert_eq!(back, msg);
        }
    }
}

/// A forged length prefix claiming a giant batch must fail fast (the
/// reader's length-sanity check), not attempt the allocation.
#[test]
fn forged_batch_length_is_rejected_without_allocating() {
    let batch = Batch::new(vec![]);
    let mut bytes = encode_to_vec(&batch);
    // Layout: 4-byte "BTCH" tag, then the u64 request count.
    assert_eq!(&bytes[..4], b"BTCH");
    bytes[4..12].copy_from_slice(&u64::MAX.to_le_bytes());
    let r: Result<Batch, _> = decode_from_slice(&bytes);
    assert!(r.is_err(), "forged length accepted");
}
