//! Fault-injection tests for the XPaxos substrate: the system must stay
//! safe under every fault class of the paper's Section II and stay live
//! (commit client operations) whenever a correct quorum can be selected.

use qsel_simnet::{LinkState, SimDuration, SimTime};
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{assert_safety, total_committed, ClusterBuilder, Equivocator, XpActor};
use qsel_xpaxos::replica::{QuorumPolicy, ReplicaConfig};

fn cfg(n: u32, f: u32) -> ClusterConfig {
    ClusterConfig::new(n, f).unwrap()
}

fn selection() -> ReplicaConfig {
    ReplicaConfig {
        policy: QuorumPolicy::Selection,
        ..Default::default()
    }
}

fn enumeration() -> ReplicaConfig {
    ReplicaConfig {
        policy: QuorumPolicy::Enumeration,
        ..Default::default()
    }
}

#[test]
fn happy_path_commits_everything() {
    for seed in [1u64, 2, 3] {
        let mut sim = ClusterBuilder::new(cfg(4, 1), seed).clients(2, 8).build();
        sim.run_until(SimTime::from_micros(1_000_000));
        assert_eq!(total_committed(&sim), 16, "seed {seed}");
        assert_safety(&sim);
        // No failures: the initial quorum survives.
        for p in [1, 2, 3].map(ProcessId) {
            let r = sim.actor(p).replica().unwrap();
            assert_eq!(r.view(), 0, "seed {seed} at {p}");
            assert_eq!(r.stats().view_changes, 0);
        }
    }
}

#[test]
fn happy_path_larger_cluster() {
    let mut sim = ClusterBuilder::new(cfg(7, 2), 5).clients(3, 5).build();
    sim.run_until(SimTime::from_micros(1_000_000));
    assert_eq!(total_committed(&sim), 15);
    assert_safety(&sim);
}

#[test]
fn passive_replicas_receive_no_agreement_traffic() {
    // n = 4, f = 1: the active quorum is {1,2,3}; p4 participates in no
    // PREPARE/COMMIT exchange at all — the whole point of active quorums.
    // It still tracks the frontier through the leader's background lazy
    // replication (certified decided entries).
    let ops = 10u64;
    let mut sim = ClusterBuilder::new(cfg(4, 1), 11).clients(1, ops).build();
    sim.run_until(SimTime::from_micros(1_000_000));
    assert_eq!(total_committed(&sim), ops);
    // Agreement traffic involves exactly the quorum: q−1 prepares and
    // (q−1)² commits per op — nothing to or from p4.
    let stats = sim.stats();
    let q = 3u64;
    assert_eq!(stats.by_kind["prepare"], ops * (q - 1));
    let commits = stats.by_kind["commit"];
    let formula = ops * (q - 1) * (q - 1);
    assert!((formula..=formula + ops * (q - 1)).contains(&commits));
    // The passive replica converged through lazy replication alone.
    let passive = sim.actor(ProcessId(4)).replica().unwrap();
    assert_eq!(passive.log().decided_count(), ops as usize);
    assert_eq!(passive.log().watermark(), ops);
}

#[test]
fn crashed_follower_triggers_quorum_change_and_recovers() {
    let mut sim = ClusterBuilder::new(cfg(4, 1), 21)
        .replica_config(selection())
        .clients(1, 12)
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(50_000));
    sim.crash(ProcessId(2)); // follower in the active quorum
    sim.run_until(SimTime::from_micros(2_000_000));
    assert_eq!(total_committed(&sim), 12, "client finished despite the crash");
    assert_safety(&sim);
    for p in [1, 3, 4].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        assert!(!r.active_quorum().contains(ProcessId(2)), "at {p}");
        assert!(r.is_normal(), "at {p}");
    }
}

#[test]
fn crashed_leader_triggers_quorum_change_and_recovers() {
    let mut sim = ClusterBuilder::new(cfg(4, 1), 33)
        .replica_config(selection())
        .clients(1, 12)
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(50_000));
    sim.crash(ProcessId(1)); // the leader
    sim.run_until(SimTime::from_micros(2_000_000));
    assert_eq!(total_committed(&sim), 12);
    assert_safety(&sim);
    for p in [2, 3, 4].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        assert!(!r.active_quorum().contains(ProcessId(1)), "at {p}");
        assert_ne!(r.leader(), ProcessId(1), "at {p}");
    }
}

#[test]
fn restarted_replica_rejoins_and_catches_up() {
    // Crash a quorum member mid-run, let the survivors change quorum and
    // keep committing, then restart it: the recovery hook re-fetches the
    // decided suffix, so the rejoined replica converges to the frontier
    // without waiting for lazy replication.
    let mut sim = ClusterBuilder::new(cfg(4, 1), 211)
        .replica_config(selection())
        .clients(1, 16)
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(50_000));
    sim.crash(ProcessId(2));
    sim.run_until(SimTime::from_micros(800_000));
    let frontier_before = sim.actor(ProcessId(1)).replica().unwrap().log().watermark();
    assert!(frontier_before > 0, "survivors made progress while p2 was down");
    sim.restart(ProcessId(2));
    sim.run_until(SimTime::from_micros(3_000_000));
    assert_eq!(total_committed(&sim), 16);
    assert_safety(&sim);
    let r2 = sim.actor(ProcessId(2)).replica().unwrap();
    assert_eq!(r2.stats().recoveries, 1);
    assert!(
        r2.log().watermark() >= frontier_before,
        "rejoined replica stuck at watermark {} < {}",
        r2.log().watermark(),
        frontier_before
    );
    assert_eq!(sim.stats().restarts, 1);
}

#[test]
fn partition_blocks_commits_and_heal_restores_liveness() {
    // Split the cluster {1,2} vs {3,4} mid-epoch: neither side holds a
    // full quorum (size n−f = 3), so commits must stall — but nothing may
    // diverge. Healing with an empty partition restores liveness.
    let mut sim = ClusterBuilder::new(cfg(4, 1), 222)
        .replica_config(selection())
        .clients(1, 20)
        .retry(SimDuration::millis(40))
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(100_000));
    let before = total_committed(&sim);
    assert!(before > 0, "no commits before the partition");
    sim.partition(&[ProcessId(1), ProcessId(2)]);
    sim.run_until(SimTime::from_micros(1_100_000));
    let during = total_committed(&sim);
    // At most one op already decided by the full quorum may complete from
    // in-flight replies; nothing new can commit without a full quorum.
    assert!(
        during <= before + 1,
        "a minority partition committed operations: {before} -> {during}"
    );
    assert_safety(&sim);
    sim.partition(&[]); // heal
    sim.run_until(SimTime::from_micros(6_000_000));
    assert_eq!(total_committed(&sim), 20, "commits did not resume after heal");
    assert_safety(&sim);
}

#[test]
fn enumeration_policy_also_recovers() {
    let mut sim = ClusterBuilder::new(cfg(4, 1), 44)
        .replica_config(enumeration())
        .clients(1, 10)
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(50_000));
    sim.crash(ProcessId(2));
    sim.run_until(SimTime::from_micros(3_000_000));
    assert_eq!(total_committed(&sim), 10);
    assert_safety(&sim);
    let r = sim.actor(ProcessId(1)).replica().unwrap();
    assert!(!r.active_quorum().contains(ProcessId(2)));
}

#[test]
fn omission_link_inside_quorum_heals_via_quorum_change() {
    // p2 stops delivering to p3 (both in the active quorum): p3's commit
    // expectations on p2 expire, the suspicion propagates, and quorum
    // selection picks a quorum avoiding the suspicion edge.
    let mut sim = ClusterBuilder::new(cfg(4, 1), 55)
        .replica_config(selection())
        .clients(1, 12)
        .build();
    sim.start();
    sim.run_until(SimTime::from_micros(30_000));
    sim.set_link(
        ProcessId(2),
        ProcessId(3),
        LinkState {
            drop_all: true,
            ..Default::default()
        },
    );
    sim.run_until(SimTime::from_micros(3_000_000));
    assert_eq!(total_committed(&sim), 12);
    assert_safety(&sim);
    for p in [1, 2, 3, 4].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        let q = r.active_quorum();
        assert!(
            !(q.contains(ProcessId(2)) && q.contains(ProcessId(3))),
            "suspicion edge inside active quorum at {p}: {q}"
        );
    }
}

#[test]
fn timing_fault_inside_quorum_eventually_tolerated_or_excluded() {
    // p2's messages to everyone are delayed by 50ms (≫ the initial 1ms
    // detector timeout). Either the adaptive timeouts grow to tolerate it
    // or the quorum moves away from it; both ways, the client must finish.
    let mut sim = ClusterBuilder::new(cfg(4, 1), 66)
        .replica_config(selection())
        .clients(1, 8)
        .retry(SimDuration::millis(100))
        .build();
    sim.start();
    for victim in [1u32, 3, 4].map(ProcessId) {
        sim.set_link(
            ProcessId(2),
            victim,
            LinkState {
                extra_delay: SimDuration::millis(50),
                ..Default::default()
            },
        );
    }
    sim.run_until(SimTime::from_micros(8_000_000));
    assert_eq!(total_committed(&sim), 8);
    assert_safety(&sim);
}

#[test]
fn equivocating_leader_detected_and_replaced() {
    let builder = ClusterBuilder::new(cfg(4, 1), 77)
        .replica_config(selection())
        .clients(1, 10);
    let mut sim = builder.build_with(|p, chain| {
        (p == ProcessId(1)).then(|| XpActor::Equivocator(Equivocator::new(cfg(4, 1), chain, p)))
    });
    sim.run_until(SimTime::from_micros(3_000_000));
    // The equivocator sent conflicting PREPAREs; followers exchanged
    // COMMITs embedding them, proving equivocation → DETECTED(p1) →
    // permanent suspicion → quorum without p1.
    assert_eq!(total_committed(&sim), 10);
    assert_safety(&sim);
    for p in [2, 3, 4].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        assert!(!r.active_quorum().contains(ProcessId(1)), "at {p}");
    }
    // At least one replica raised a detection.
    let detections: u64 = [2, 3, 4]
        .map(ProcessId)
        .iter()
        .map(|p| sim.actor(*p).replica().unwrap().stats().detections)
        .sum();
    assert!(detections >= 1);
}

#[test]
fn mute_leader_detected_and_replaced() {
    let builder = ClusterBuilder::new(cfg(4, 1), 88)
        .replica_config(selection())
        .clients(1, 10);
    let mut sim = builder.build_with(|p, _| (p == ProcessId(1)).then_some(XpActor::Mute));
    sim.run_until(SimTime::from_micros(3_000_000));
    assert_eq!(total_committed(&sim), 10);
    assert_safety(&sim);
    for p in [2, 3, 4].map(ProcessId) {
        let r = sim.actor(p).replica().unwrap();
        assert!(!r.active_quorum().contains(ProcessId(1)), "at {p}");
    }
}

#[test]
fn selection_beats_enumeration_on_view_changes() {
    // Same fault (crash of p2 early); compare how many view changes the
    // survivors performed under each policy. Selection should need no more
    // than enumeration — typically strictly fewer on larger clusters where
    // enumeration wades through every quorum containing the culprit.
    let run = |rcfg: ReplicaConfig| {
        let mut sim = ClusterBuilder::new(cfg(5, 2), 99)
            .replica_config(rcfg)
            .clients(1, 10)
            .build();
        sim.start();
        sim.run_until(SimTime::from_micros(20_000));
        sim.crash(ProcessId(1));
        sim.crash(ProcessId(2));
        sim.run_until(SimTime::from_micros(5_000_000));
        assert_eq!(total_committed(&sim), 10);
        assert_safety(&sim);
        let changes: u64 = [3, 4, 5]
            .map(ProcessId)
            .iter()
            .map(|p| sim.actor(*p).replica().unwrap().stats().views_installed)
            .max()
            .unwrap();
        changes
    };
    let sel = run(selection());
    let en = run(enumeration());
    assert!(
        sel <= en,
        "selection installed {sel} views, enumeration {en}"
    );
}
