//! Ready-made simulation harness: replicas + clients + Byzantine variants.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use qsel_obs::{TraceEvent, TraceSink};
use qsel_simnet::{Actor, Context, DelayModel, SimConfig, SimDuration, SimTime, Simulation, TimerId};
use qsel_types::crypto::{Keychain, Signer};
use qsel_types::{thresholds, ClusterConfig, ProcessId};

use crate::client::Client;
use crate::messages::{Batch, CompactEntry, PreparePayload, Reply, Request, XpMsg};
use crate::replica::{Replica, ReplicaConfig};

/// A participant of an XPaxos simulation.
///
/// The `Replica` variant dwarfs the others, but actors are stored once
/// per process in the simulator's actor table and never moved, so the
/// size skew costs nothing; boxing would only add indirection.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum XpActor {
    /// A correct replica.
    Replica(Replica),
    /// A client.
    Client(Client),
    /// An open-loop client that issues requests on a fixed cadence.
    OpenClient(OpenLoopClient),
    /// A replica that never sends anything.
    Mute,
    /// A Byzantine leader that equivocates on the first request it sees
    /// (sends conflicting PREPAREs to different followers), then goes
    /// quiet.
    Equivocator(Equivocator),
    /// A gray-failed replica: honest protocol, but every incoming message
    /// is processed late ([`GrayReplica`]).
    Gray(GrayReplica),
    /// A Byzantine state-transfer donor: honest protocol, but every chunk
    /// it serves is tampered with ([`CorruptTransferPeer`]).
    CorruptTransfer(CorruptTransferPeer),
}

impl XpActor {
    /// The wrapped replica, if any. A [`GrayReplica`] exposes its inner
    /// honest replica: it runs the unmodified protocol (merely late), so
    /// its log participates in safety cross-checks.
    pub fn replica(&self) -> Option<&Replica> {
        match self {
            XpActor::Replica(r) => Some(r),
            XpActor::Gray(g) => Some(&g.inner),
            // Its local log runs the honest protocol (only the chunks it
            // serves are forged on the way out), so it participates in
            // safety cross-checks too.
            XpActor::CorruptTransfer(c) => Some(&c.inner),
            _ => None,
        }
    }

    /// The wrapped closed-loop client, if any.
    pub fn client(&self) -> Option<&Client> {
        match self {
            XpActor::Client(c) => Some(c),
            _ => None,
        }
    }

    /// The wrapped open-loop client, if any.
    pub fn open_client(&self) -> Option<&OpenLoopClient> {
        match self {
            XpActor::OpenClient(c) => Some(c),
            _ => None,
        }
    }

    /// Operations this actor has committed, if it is any kind of client.
    pub fn committed_ops(&self) -> Option<u64> {
        match self {
            XpActor::Client(c) => Some(c.committed_ops()),
            XpActor::OpenClient(c) => Some(c.committed_ops()),
            _ => None,
        }
    }
}

impl Actor<XpMsg> for XpActor {
    fn on_start(&mut self, ctx: &mut Context<'_, XpMsg>) {
        match self {
            XpActor::Replica(r) => r.handle_start(ctx),
            XpActor::Client(c) => c.on_start(ctx),
            XpActor::OpenClient(c) => c.on_start(ctx),
            XpActor::Mute => {}
            XpActor::Equivocator(_) => {}
            XpActor::Gray(g) => g.on_start(ctx),
            XpActor::CorruptTransfer(c) => c.inner.handle_start(ctx),
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, msg: XpMsg) {
        match self {
            XpActor::Replica(r) => r.handle_message(ctx, from, msg),
            XpActor::Client(c) => c.on_message(ctx, from, msg),
            XpActor::OpenClient(c) => c.on_message(ctx, from, msg),
            XpActor::Mute => {}
            XpActor::Equivocator(e) => e.on_message(ctx, msg),
            XpActor::Gray(g) => g.on_message(ctx, from, msg),
            XpActor::CorruptTransfer(c) => c.on_message(ctx, from, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, XpMsg>, timer: TimerId) {
        match self {
            XpActor::Replica(r) => r.handle_timer(ctx, timer),
            XpActor::Client(c) => c.on_timer(ctx, timer),
            XpActor::OpenClient(c) => c.on_timer(ctx, timer),
            XpActor::Mute => {}
            XpActor::Equivocator(_) => {}
            XpActor::Gray(g) => g.on_timer(ctx, timer),
            XpActor::CorruptTransfer(c) => c.inner.handle_timer(ctx, timer),
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, XpMsg>) {
        match self {
            XpActor::Replica(r) => r.handle_recover(ctx),
            XpActor::Client(c) => c.on_recover(ctx),
            XpActor::OpenClient(c) => c.on_recover(ctx),
            XpActor::Mute => {}
            XpActor::Equivocator(_) => {}
            XpActor::Gray(g) => g.on_recover(ctx),
            XpActor::CorruptTransfer(c) => c.inner.handle_recover(ctx),
        }
    }
}

/// Deferred-delivery timer used by [`GrayReplica`]. The inner replica's
/// own timers are `TimerId(1..=4)` and `TimerId(1000..)` (view-change
/// generation tags), so 900 is free.
const TIMER_GRAY: TimerId = TimerId(900);

/// A gray-failed replica: it runs the honest protocol on unmodified state,
/// but every incoming message is buffered and handled `delay` after
/// arrival. Timer-driven behaviour (heartbeats, detector polls) stays
/// prompt — the process looks alive to naive liveness probes while its
/// request processing crawls. This is the "slow but not silent" leader of
/// the gray-failure literature, and the misbehaviour is *not* expressible
/// as a link fault: outbound traffic the replica originates on timers is
/// unaffected, only its reaction to peers lags.
#[derive(Debug)]
pub struct GrayReplica {
    inner: Replica,
    delay: SimDuration,
    buf: VecDeque<(ProcessId, XpMsg)>,
}

impl GrayReplica {
    /// Wraps `inner`, delaying each incoming message by `delay`.
    pub fn new(inner: Replica, delay: SimDuration) -> Self {
        GrayReplica {
            inner,
            delay,
            buf: VecDeque::new(),
        }
    }

    /// The wrapped honest replica.
    pub fn inner(&self) -> &Replica {
        &self.inner
    }

    fn on_start(&mut self, ctx: &mut Context<'_, XpMsg>) {
        self.inner.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, msg: XpMsg) {
        self.buf.push_back((from, msg));
        ctx.set_timer(self.delay, TIMER_GRAY);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, XpMsg>, timer: TimerId) {
        if timer == TIMER_GRAY {
            if let Some((from, msg)) = self.buf.pop_front() {
                self.inner.handle_message(ctx, from, msg);
            }
        } else {
            self.inner.handle_timer(ctx, timer);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, XpMsg>) {
        // Deferred messages and their timers died with the crash.
        self.buf.clear();
        self.inner.handle_recover(ctx);
    }
}

/// A Byzantine state-transfer donor. It runs the honest protocol on
/// unmodified state — so it builds a complete log and advertises an
/// attractive frontier to recovering peers — but answers every
/// `SyncFetch` itself with *tampered* chunks: the claimed slots and MMR
/// proofs are genuine while the batch contents are flipped. A correct
/// recoverer must detect the mismatch when it verifies each entry against
/// the certified MMR root (the leaf hash no longer matches the proof),
/// reject the chunk without applying anything, and fail over to another
/// donor.
#[derive(Debug)]
pub struct CorruptTransferPeer {
    inner: Replica,
}

impl CorruptTransferPeer {
    /// Wraps `inner`, forging every state-transfer chunk it serves.
    pub fn new(inner: Replica) -> Self {
        CorruptTransferPeer { inner }
    }

    /// The wrapped (locally honest) replica.
    pub fn inner(&self) -> &Replica {
        &self.inner
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, msg: XpMsg) {
        let XpMsg::SyncFetch {
            from_slot,
            to_slot,
            proof_slot,
        } = msg
        else {
            self.inner.handle_message(ctx, from, msg);
            return;
        };
        // Serve the requested range like an honest donor would, but with
        // the first request of every batch flipped. Proofs stay genuine:
        // the forgery must be caught by content verification, not by a
        // malformed-proof shortcut.
        let log = self.inner.log();
        let to = to_slot.min(proof_slot).min(log.watermark());
        let mut entries = Vec::new();
        for slot in from_slot..to {
            let Some(batch) = log.batch_at(slot) else { break };
            let Ok(proof) = log.mmr().proof_at(slot, proof_slot) else {
                break;
            };
            let mut reqs = batch.reqs.clone();
            if let Some(r) = reqs.first_mut() {
                r.payload ^= 0xBAD;
            }
            entries.push(CompactEntry {
                slot,
                batch: Batch::new(reqs),
                proof,
            });
        }
        ctx.send(
            from,
            XpMsg::SyncChunk {
                entries,
                proof_slot,
            },
        );
    }
}

/// Pacing timer of [`OpenLoopClient`]; its only other timers never exist.
const TIMER_PACE: TimerId = TimerId(1);

/// An open-loop client: issues one request every `interarrival` regardless
/// of whether earlier requests completed, up to `max_ops` total. There are
/// no retransmissions — a request lost to faults simply never commits —
/// so sustained overload or partitions show up as a commit-fraction drop
/// rather than a latency explosion, which is what open-loop workloads
/// (flash crowds) are for.
#[derive(Debug)]
pub struct OpenLoopClient {
    me: ProcessId,
    cluster: ClusterConfig,
    interarrival: SimDuration,
    max_ops: u64,
    issued: u64,
    sent_at: BTreeMap<u64, SimTime>,
    /// Matching replies per in-flight op: op → result → replicas.
    tally: BTreeMap<u64, BTreeMap<u64, Vec<ProcessId>>>,
    done: BTreeSet<u64>,
    /// (op, result, latency) for every completed operation.
    pub completed: Vec<(u64, u64, SimDuration)>,
    trace: TraceSink,
}

impl OpenLoopClient {
    /// An open-loop client with id `me` (outside the replica id range)
    /// issuing `max_ops` operations one `interarrival` apart.
    pub fn new(
        me: ProcessId,
        cluster: ClusterConfig,
        interarrival: SimDuration,
        max_ops: u64,
    ) -> Self {
        assert!(
            me.0 > cluster.n(),
            "client ids must lie above the replica range"
        );
        OpenLoopClient {
            me,
            cluster,
            interarrival,
            max_ops,
            issued: 0,
            sent_at: BTreeMap::new(),
            tally: BTreeMap::new(),
            done: BTreeSet::new(),
            completed: Vec::new(),
            trace: TraceSink::disabled(),
        }
    }

    /// Installs a trace sink (typically a clone of the simulation's).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Completed operation count.
    pub fn committed_ops(&self) -> u64 {
        self.completed.len() as u64
    }

    /// Operations issued so far.
    pub fn issued_ops(&self) -> u64 {
        self.issued
    }

    fn issue_next(&mut self, ctx: &mut Context<'_, XpMsg>) {
        let op = self.issued;
        self.issued += 1;
        self.sent_at.insert(op, ctx.now());
        let req = Request {
            client: self.me,
            op,
            payload: op * 31 + u64::from(self.me.0),
        };
        for r in self.cluster.processes() {
            ctx.send(r, XpMsg::Request(req.clone()));
        }
        if self.issued < self.max_ops {
            ctx.set_timer(self.interarrival, TIMER_PACE);
        }
    }

    fn on_reply(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, reply: Reply) {
        if reply.op >= self.issued || self.done.contains(&reply.op) {
            return; // unknown or already completed
        }
        let entry = self
            .tally
            .entry(reply.op)
            .or_default()
            .entry(reply.result)
            .or_default();
        if !entry.contains(&from) {
            entry.push(from);
        }
        if thresholds::reply_quorum_reached(self.cluster.f(), entry.len()) {
            let sent = self.sent_at.remove(&reply.op).unwrap_or(ctx.now());
            let latency = ctx.now() - sent;
            self.tally.remove(&reply.op);
            self.done.insert(reply.op);
            self.completed.push((reply.op, reply.result, latency));
            self.trace.emit(|| TraceEvent::ClientCommit {
                client: self.me.0,
                op: reply.op,
                latency_us: latency.as_micros(),
            });
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, XpMsg>) {
        if self.max_ops > 0 {
            self.issue_next(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, msg: XpMsg) {
        if let XpMsg::Reply(r) = msg {
            self.on_reply(ctx, from, r);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, XpMsg>, timer: TimerId) {
        if timer == TIMER_PACE && self.issued < self.max_ops {
            self.issue_next(ctx);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, XpMsg>) {
        // The pacing timer died with the process; resume the cadence.
        if self.issued < self.max_ops {
            ctx.set_timer(self.interarrival, TIMER_PACE);
        }
    }
}

/// Byzantine leader: equivocates once (conflicting PREPAREs for slot 0 in
/// view 0), providing the commission-failure evidence the failure
/// detector's `⟨DETECTED⟩` path needs.
#[derive(Debug)]
pub struct Equivocator {
    cfg: ClusterConfig,
    signer: Signer,
    fired: bool,
}

impl Equivocator {
    /// An equivocator that must be placed at the view-0 leader (`p_1`).
    pub fn new(cfg: ClusterConfig, chain: &Keychain, me: ProcessId) -> Self {
        Equivocator {
            cfg,
            signer: chain.signer(me),
            fired: false,
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, msg: XpMsg) {
        let XpMsg::Request(req) = msg else { return };
        if self.fired {
            return;
        }
        self.fired = true;
        let me = self.signer.id();
        let make = |payload: u64| -> PreparePayload {
            PreparePayload {
                view: 0,
                slot: 0,
                batch: Batch::single(Request {
                    client: req.client,
                    op: req.op,
                    payload,
                }),
            }
        };
        let members: Vec<ProcessId> = self
            .cfg
            .default_quorum_members()
            .into_iter()
            .filter(|p| *p != me)
            .collect();
        for (i, k) in members.iter().enumerate() {
            // Half the followers see payload A, the rest payload B.
            let payload = if i % 2 == 0 { 1 } else { 2 };
            ctx.send(*k, XpMsg::Prepare(self.signer.sign(make(payload))));
        }
    }
}

/// Builder for an XPaxos simulation: `n` replicas (ids `1..=n`) and
/// `clients` client actors (ids `n+1..`).
pub struct ClusterBuilder {
    cfg: ClusterConfig,
    rcfg: ReplicaConfig,
    clients: u32,
    ops_per_client: u64,
    seed: u64,
    retry: SimDuration,
    tx_cost: SimDuration,
    delay: Option<DelayModel>,
    open_interarrival: Option<SimDuration>,
    trace: TraceSink,
}

impl ClusterBuilder {
    /// A builder with the given cluster shape.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        ClusterBuilder {
            cfg,
            rcfg: ReplicaConfig::default(),
            clients: 1,
            ops_per_client: 10,
            seed,
            retry: SimDuration::millis(20),
            tx_cost: SimDuration::ZERO,
            delay: None,
            open_interarrival: None,
            trace: TraceSink::disabled(),
        }
    }

    /// Sets the replica configuration.
    #[must_use]
    pub fn replica_config(mut self, rcfg: ReplicaConfig) -> Self {
        self.rcfg = rcfg;
        self
    }

    /// Sets the client count and per-client operation budget.
    #[must_use]
    pub fn clients(mut self, clients: u32, ops_per_client: u64) -> Self {
        self.clients = clients;
        self.ops_per_client = ops_per_client;
        self
    }

    /// Sets the client retry interval.
    #[must_use]
    pub fn retry(mut self, retry: SimDuration) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the network's per-message egress serialization cost
    /// ([`qsel_simnet::SimConfig::tx_cost`]); the `ZERO` default leaves
    /// the network a pure-delay model.
    #[must_use]
    pub fn tx_cost(mut self, tx_cost: SimDuration) -> Self {
        self.tx_cost = tx_cost;
        self
    }

    /// Sets the network's base delay model (default: the simulator's
    /// uniform 50–150µs). Per-link overrides installed later via
    /// [`Simulation::set_link`] still take precedence.
    #[must_use]
    pub fn delay_model(mut self, delay: DelayModel) -> Self {
        self.delay = Some(delay);
        self
    }

    /// Switches the built clients from closed-loop (retrying) [`Client`]s
    /// to open-loop [`OpenLoopClient`]s issuing one request every
    /// `interarrival`; the per-client operation budget from
    /// [`ClusterBuilder::clients`] still applies.
    #[must_use]
    pub fn open_loop(mut self, interarrival: SimDuration) -> Self {
        self.open_interarrival = Some(interarrival);
        self
    }

    /// Installs a trace sink: the simulation and every built replica
    /// (including its failure detector and quorum-selection module) and
    /// client get clones sharing one buffer and ambient clock. Custom
    /// actors from `build_with` are wired too. The default (disabled)
    /// sink records nothing at zero cost.
    #[must_use]
    pub fn trace_sink(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// The keychain the built cluster will use (for crafting Byzantine
    /// actors that must share it).
    pub fn keychain(&self) -> Keychain {
        Keychain::new(&self.cfg, self.seed)
    }

    /// Builds the simulation, customizing individual replica actors via
    /// `make_replica` (return `None` for the default correct replica).
    pub fn build_with(
        self,
        mut make_replica: impl FnMut(ProcessId, &Keychain) -> Option<XpActor>,
    ) -> Simulation<XpMsg, XpActor> {
        let chain = self.keychain();
        let total = self.cfg.n() + self.clients;
        let mut actors: Vec<XpActor> = Vec::new();
        for p in self.cfg.processes() {
            let mut actor = make_replica(p, &chain).unwrap_or_else(|| {
                XpActor::Replica(Replica::new(self.cfg, p, &chain, self.rcfg.clone()))
            });
            match &mut actor {
                XpActor::Replica(r) => r.set_trace_sink(self.trace.clone()),
                XpActor::Gray(g) => g.inner.set_trace_sink(self.trace.clone()),
                XpActor::CorruptTransfer(c) => c.inner.set_trace_sink(self.trace.clone()),
                _ => {}
            }
            actors.push(actor);
        }
        for c in 0..self.clients {
            let id = ProcessId(self.cfg.n() + c + 1);
            match self.open_interarrival {
                Some(interarrival) => {
                    let mut client =
                        OpenLoopClient::new(id, self.cfg, interarrival, self.ops_per_client);
                    client.set_trace_sink(self.trace.clone());
                    actors.push(XpActor::OpenClient(client));
                }
                None => {
                    let mut client = Client::new(id, self.cfg, self.retry, self.ops_per_client);
                    client.set_trace_sink(self.trace.clone());
                    actors.push(XpActor::Client(client));
                }
            }
        }
        let mut scfg = SimConfig::new(total, self.seed).with_tx_cost(self.tx_cost);
        if let Some(delay) = self.delay {
            scfg = scfg.with_delay(delay);
        }
        let mut sim = Simulation::new(scfg, actors);
        sim.set_classifier(|m: &XpMsg| m.kind());
        sim.set_trace_sink(self.trace);
        sim
    }

    /// Builds an all-correct cluster.
    pub fn build(self) -> Simulation<XpMsg, XpActor> {
        self.build_with(|_, _| None)
    }
}

/// Asserts the fundamental safety property across all correct replicas:
/// no two replicas executed a different request *sequence* at the same
/// slot (a batched slot executes several requests, in batch order).
///
/// # Panics
///
/// Panics with a description of the violation, if any.
pub fn assert_safety(sim: &Simulation<XpMsg, XpActor>) {
    let mut reference: std::collections::BTreeMap<u64, Vec<&Request>> =
        std::collections::BTreeMap::new();
    for id in sim.ids().collect::<Vec<_>>() {
        if let Some(r) = sim.actor(id).replica() {
            // Group this replica's executions by slot, preserving order.
            let mut per_slot: std::collections::BTreeMap<u64, Vec<&Request>> =
                std::collections::BTreeMap::new();
            for (slot, req) in &r.log().executed {
                per_slot.entry(*slot).or_default().push(req);
            }
            for (slot, reqs) in per_slot {
                match reference.get(&slot) {
                    None => {
                        reference.insert(slot, reqs);
                    }
                    Some(existing) => assert_eq!(
                        *existing, reqs,
                        "safety violation at slot {slot}: {existing:?} vs {reqs:?} (replica {id})"
                    ),
                }
            }
        }
    }
}

/// Total operations committed across all clients (both loop modes).
pub fn total_committed(sim: &Simulation<XpMsg, XpActor>) -> u64 {
    sim.ids()
        .collect::<Vec<_>>()
        .into_iter()
        .filter_map(|id| sim.actor(id).committed_ops())
        .sum()
}
