//! Ready-made simulation harness: replicas + clients + Byzantine variants.

use qsel_obs::TraceSink;
use qsel_simnet::{Actor, Context, SimConfig, SimDuration, Simulation, TimerId};
use qsel_types::crypto::{Keychain, Signer};
use qsel_types::{ClusterConfig, ProcessId};

use crate::client::Client;
use crate::messages::{Batch, PreparePayload, Request, XpMsg};
use crate::replica::{Replica, ReplicaConfig};

/// A participant of an XPaxos simulation.
///
/// The `Replica` variant dwarfs the others, but actors are stored once
/// per process in the simulator's actor table and never moved, so the
/// size skew costs nothing; boxing would only add indirection.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum XpActor {
    /// A correct replica.
    Replica(Replica),
    /// A client.
    Client(Client),
    /// A replica that never sends anything.
    Mute,
    /// A Byzantine leader that equivocates on the first request it sees
    /// (sends conflicting PREPAREs to different followers), then goes
    /// quiet.
    Equivocator(Equivocator),
}

impl XpActor {
    /// The wrapped replica, if any.
    pub fn replica(&self) -> Option<&Replica> {
        match self {
            XpActor::Replica(r) => Some(r),
            _ => None,
        }
    }

    /// The wrapped client, if any.
    pub fn client(&self) -> Option<&Client> {
        match self {
            XpActor::Client(c) => Some(c),
            _ => None,
        }
    }
}

impl Actor<XpMsg> for XpActor {
    fn on_start(&mut self, ctx: &mut Context<'_, XpMsg>) {
        match self {
            XpActor::Replica(r) => r.handle_start(ctx),
            XpActor::Client(c) => c.on_start(ctx),
            XpActor::Mute => {}
            XpActor::Equivocator(_) => {}
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, msg: XpMsg) {
        match self {
            XpActor::Replica(r) => r.handle_message(ctx, from, msg),
            XpActor::Client(c) => c.on_message(ctx, from, msg),
            XpActor::Mute => {}
            XpActor::Equivocator(e) => e.on_message(ctx, msg),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, XpMsg>, timer: TimerId) {
        match self {
            XpActor::Replica(r) => r.handle_timer(ctx, timer),
            XpActor::Client(c) => c.on_timer(ctx, timer),
            XpActor::Mute => {}
            XpActor::Equivocator(_) => {}
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, XpMsg>) {
        match self {
            XpActor::Replica(r) => r.handle_recover(ctx),
            XpActor::Client(c) => c.on_recover(ctx),
            XpActor::Mute => {}
            XpActor::Equivocator(_) => {}
        }
    }
}

/// Byzantine leader: equivocates once (conflicting PREPAREs for slot 0 in
/// view 0), providing the commission-failure evidence the failure
/// detector's `⟨DETECTED⟩` path needs.
#[derive(Debug)]
pub struct Equivocator {
    cfg: ClusterConfig,
    signer: Signer,
    fired: bool,
}

impl Equivocator {
    /// An equivocator that must be placed at the view-0 leader (`p_1`).
    pub fn new(cfg: ClusterConfig, chain: &Keychain, me: ProcessId) -> Self {
        Equivocator {
            cfg,
            signer: chain.signer(me),
            fired: false,
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, msg: XpMsg) {
        let XpMsg::Request(req) = msg else { return };
        if self.fired {
            return;
        }
        self.fired = true;
        let me = self.signer.id();
        let make = |payload: u64| -> PreparePayload {
            PreparePayload {
                view: 0,
                slot: 0,
                batch: Batch::single(Request {
                    client: req.client,
                    op: req.op,
                    payload,
                }),
            }
        };
        let members: Vec<ProcessId> = self
            .cfg
            .default_quorum_members()
            .into_iter()
            .filter(|p| *p != me)
            .collect();
        for (i, k) in members.iter().enumerate() {
            // Half the followers see payload A, the rest payload B.
            let payload = if i % 2 == 0 { 1 } else { 2 };
            ctx.send(*k, XpMsg::Prepare(self.signer.sign(make(payload))));
        }
    }
}

/// Builder for an XPaxos simulation: `n` replicas (ids `1..=n`) and
/// `clients` client actors (ids `n+1..`).
pub struct ClusterBuilder {
    cfg: ClusterConfig,
    rcfg: ReplicaConfig,
    clients: u32,
    ops_per_client: u64,
    seed: u64,
    retry: SimDuration,
    tx_cost: SimDuration,
    trace: TraceSink,
}

impl ClusterBuilder {
    /// A builder with the given cluster shape.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        ClusterBuilder {
            cfg,
            rcfg: ReplicaConfig::default(),
            clients: 1,
            ops_per_client: 10,
            seed,
            retry: SimDuration::millis(20),
            tx_cost: SimDuration::ZERO,
            trace: TraceSink::disabled(),
        }
    }

    /// Sets the replica configuration.
    #[must_use]
    pub fn replica_config(mut self, rcfg: ReplicaConfig) -> Self {
        self.rcfg = rcfg;
        self
    }

    /// Sets the client count and per-client operation budget.
    #[must_use]
    pub fn clients(mut self, clients: u32, ops_per_client: u64) -> Self {
        self.clients = clients;
        self.ops_per_client = ops_per_client;
        self
    }

    /// Sets the client retry interval.
    #[must_use]
    pub fn retry(mut self, retry: SimDuration) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the network's per-message egress serialization cost
    /// ([`qsel_simnet::SimConfig::tx_cost`]); the `ZERO` default leaves
    /// the network a pure-delay model.
    #[must_use]
    pub fn tx_cost(mut self, tx_cost: SimDuration) -> Self {
        self.tx_cost = tx_cost;
        self
    }

    /// Installs a trace sink: the simulation and every built replica
    /// (including its failure detector and quorum-selection module) and
    /// client get clones sharing one buffer and ambient clock. Custom
    /// actors from `build_with` are wired too. The default (disabled)
    /// sink records nothing at zero cost.
    #[must_use]
    pub fn trace_sink(mut self, sink: TraceSink) -> Self {
        self.trace = sink;
        self
    }

    /// The keychain the built cluster will use (for crafting Byzantine
    /// actors that must share it).
    pub fn keychain(&self) -> Keychain {
        Keychain::new(&self.cfg, self.seed)
    }

    /// Builds the simulation, customizing individual replica actors via
    /// `make_replica` (return `None` for the default correct replica).
    pub fn build_with(
        self,
        mut make_replica: impl FnMut(ProcessId, &Keychain) -> Option<XpActor>,
    ) -> Simulation<XpMsg, XpActor> {
        let chain = self.keychain();
        let total = self.cfg.n() + self.clients;
        let mut actors: Vec<XpActor> = Vec::new();
        for p in self.cfg.processes() {
            let mut actor = make_replica(p, &chain).unwrap_or_else(|| {
                XpActor::Replica(Replica::new(self.cfg, p, &chain, self.rcfg.clone()))
            });
            if let XpActor::Replica(r) = &mut actor {
                r.set_trace_sink(self.trace.clone());
            }
            actors.push(actor);
        }
        for c in 0..self.clients {
            let id = ProcessId(self.cfg.n() + c + 1);
            let mut client = Client::new(id, self.cfg, self.retry, self.ops_per_client);
            client.set_trace_sink(self.trace.clone());
            actors.push(XpActor::Client(client));
        }
        let mut sim = Simulation::new(
            SimConfig::new(total, self.seed).with_tx_cost(self.tx_cost),
            actors,
        );
        sim.set_classifier(|m: &XpMsg| m.kind());
        sim.set_trace_sink(self.trace);
        sim
    }

    /// Builds an all-correct cluster.
    pub fn build(self) -> Simulation<XpMsg, XpActor> {
        self.build_with(|_, _| None)
    }
}

/// Asserts the fundamental safety property across all correct replicas:
/// no two replicas executed a different request *sequence* at the same
/// slot (a batched slot executes several requests, in batch order).
///
/// # Panics
///
/// Panics with a description of the violation, if any.
pub fn assert_safety(sim: &Simulation<XpMsg, XpActor>) {
    let mut reference: std::collections::BTreeMap<u64, Vec<&Request>> =
        std::collections::BTreeMap::new();
    for id in sim.ids().collect::<Vec<_>>() {
        if let Some(r) = sim.actor(id).replica() {
            // Group this replica's executions by slot, preserving order.
            let mut per_slot: std::collections::BTreeMap<u64, Vec<&Request>> =
                std::collections::BTreeMap::new();
            for (slot, req) in &r.log().executed {
                per_slot.entry(*slot).or_default().push(req);
            }
            for (slot, reqs) in per_slot {
                match reference.get(&slot) {
                    None => {
                        reference.insert(slot, reqs);
                    }
                    Some(existing) => assert_eq!(
                        *existing, reqs,
                        "safety violation at slot {slot}: {existing:?} vs {reqs:?} (replica {id})"
                    ),
                }
            }
        }
    }
}

/// Total operations committed across all clients.
pub fn total_committed(sim: &Simulation<XpMsg, XpActor>) -> u64 {
    sim.ids()
        .collect::<Vec<_>>()
        .into_iter()
        .filter_map(|id| sim.actor(id).client().map(|c| c.committed_ops()))
        .sum()
}
