//! The replicated log: slots, prepare/commit certificates, in-order
//! execution, checkpoint-driven compaction, and the MMR that
//! authenticates compacted history.

use std::collections::{BTreeMap, HashMap, HashSet};

use qsel_mmr::{leaf_hash, Mmr, MmrError};
use qsel_types::{CheckpointPayload, ProcessId, ProcessSet};

use crate::messages::{Batch, Request, SignedCommit, SignedPrepare};

/// Inserts the dedup assignment of every request in `prepare`'s batch.
// lint: allow(D1, lookup-only dedup index; never iterated) lint: allow(S1, σ_l checked at the replica boundary before log admission)
fn assign_batch(assigned: &mut HashMap<(ProcessId, u64), u64>, prepare: &SignedPrepare) {
    for req in &prepare.payload.batch.reqs {
        assigned.insert((req.client, req.op), prepare.payload.slot);
    }
}

/// Per-slot state.
#[derive(Clone, Debug)]
pub struct Slot {
    /// The accepted PREPARE (ours or embedded in a COMMIT that overtook
    /// it).
    pub prepare: SignedPrepare,
    /// Signed COMMITs received, by sender (kept whole so decided slots
    /// carry a transferable certificate). Ordered so `certificate()`
    /// emits commits in signer order — certificates cross the network
    /// and must not leak iteration order into message bytes.
    pub commits: BTreeMap<ProcessId, SignedCommit>,
    /// Whether we broadcast our own COMMIT for this slot.
    pub committed_by_us: bool,
    /// Whether the commit certificate is complete.
    pub decided: bool,
}

impl Slot {
    fn new(prepare: SignedPrepare) -> Self {
        Slot {
            prepare,
            commits: BTreeMap::new(),
            committed_by_us: false,
            decided: false,
        }
    }
}

/// The replica's log and execution state.
#[derive(Clone, Debug, Default)]
pub struct Log {
    slots: BTreeMap<u64, Slot>,
    /// First slot not yet executed.
    pub exec_cursor: u64,
    /// Executed (slot, request) pairs, in execution order.
    pub executed: Vec<(u64, Request)>,
    /// State-machine state: a running digest-free fold of payloads.
    pub state: u64,
    /// Request dedup: (client, op) → slot.
    // lint: allow(D1, lookup-only dedup index; never iterated)
    assigned: HashMap<(ProcessId, u64), u64>,
    /// Execution dedup: a request re-proposed at a second slot after a
    /// view change must not be applied twice.
    // lint: allow(D1, membership-only dedup set; never iterated)
    executed_ops: HashSet<(ProcessId, u64)>,
    /// Merkle mountain range over executed batch digests: leaf `i` is
    /// `leaf_hash(i, batch_i.digest())`, appended as the cursor passes
    /// slot `i`, so `mmr.leaf_count() == exec_cursor` always.
    mmr: Mmr,
    /// Batches of garbage-collected slots kept for serving incremental
    /// state transfer, bounded by the GC policy's `archive_retain`.
    archive: BTreeMap<u64, Batch>,
    /// First slot whose batch content this replica can still serve
    /// (everything below was pruned from both `slots` and `archive`).
    serve_floor: u64,
    /// Slots strictly below this have been compacted away (GC or a
    /// checkpoint jump): their agreement records are gone, so late
    /// PREPARE/COMMIT traffic for them must be dropped rather than
    /// re-admitted as fresh slots. 0 until the first compaction.
    gc_floor: u64,
    /// Checkpoint period in slots (0 disables capture).
    ckpt_interval: u64,
    /// Payloads captured as the cursor crossed interval multiples,
    /// awaiting the replica's signature and broadcast.
    pending_ckpts: Vec<CheckpointPayload>,
}

impl Log {
    /// Creates an empty log starting execution at slot 0.
    pub fn new() -> Self {
        Log::default()
    }

    /// The slot a request was assigned to, if any (leader-side dedup).
    pub fn slot_of(&self, req: &Request) -> Option<u64> {
        self.assigned.get(&(req.client, req.op)).copied()
    }

    /// Records a PREPARE for its slot. Returns `false` (and changes
    /// nothing) if the slot already holds a *different* prepare — the
    /// caller decides whether that means equivocation (same view) or a
    /// legitimate re-proposal (higher view, which replaces the entry).
    // lint: allow(S1, σ_l checked by replica authenticate/verify_certificate before log admission)
    pub fn accept_prepare(&mut self, prepare: SignedPrepare) -> bool {
        let slot_no = prepare.payload.slot;
        match self.slots.get_mut(&slot_no) {
            None => {
                assign_batch(&mut self.assigned, &prepare);
                self.slots.insert(slot_no, Slot::new(prepare));
                true
            }
            Some(existing) => {
                if existing.prepare == prepare {
                    true
                } else if prepare.payload.view > existing.prepare.payload.view
                    && !existing.decided
                {
                    // Re-proposal in a later view supersedes.
                    assign_batch(&mut self.assigned, &prepare);
                    *existing = Slot::new(prepare);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether `slot` currently holds a prepare.
    pub fn prepare_at(&self, slot: u64) -> Option<&SignedPrepare> {
        self.slots.get(&slot).map(|s| &s.prepare)
    }

    /// Access a slot.
    pub fn slot(&self, slot: u64) -> Option<&Slot> {
        self.slots.get(&slot)
    }

    /// Marks that we broadcast our own COMMIT for `slot`.
    pub fn mark_committed_by_us(&mut self, slot: u64) {
        if let Some(s) = self.slots.get_mut(&slot) {
            s.committed_by_us = true;
        }
    }

    /// Records a signed COMMIT. Returns `true` if its digest matches the
    /// accepted prepare's batch digest.
    // lint: allow(S1, σ_l checked by replica authenticate/verify_certificate before log admission)
    pub fn record_commit(&mut self, slot: u64, commit: SignedCommit) -> bool {
        let Some(s) = self.slots.get_mut(&slot) else {
            return false;
        };
        let matches = s.prepare.payload.batch.digest() == commit.payload.digest;
        s.commits.insert(commit.signer, commit);
        matches
    }

    /// Checks the commit rule: PREPARE present and matching COMMITs from
    /// every non-leader quorum member (`me`'s own commit counts via
    /// `committed_by_us`). Marks and returns newly decided slots.
    pub fn try_decide(
        &mut self,
        slot: u64,
        quorum: &ProcessSet,
        leader: ProcessId,
        me: ProcessId,
    ) -> bool {
        let Some(s) = self.slots.get_mut(&slot) else {
            return false;
        };
        if s.decided {
            return false;
        }
        let want = s.prepare.payload.batch.digest();
        let all_in = quorum.iter().filter(|p| *p != leader).all(|p| {
            if p == me {
                s.committed_by_us
            } else {
                s.commits.get(&p).is_some_and(|c| c.payload.digest == want)
            }
        });
        if all_in {
            s.decided = true;
            true
        } else {
            false
        }
    }

    /// Executes decided slots in order from the cursor; returns the
    /// executed (slot, request) pairs. A decided slot's batch executes
    /// request by request in batch order; a request already executed at an
    /// earlier slot (or earlier in the same batch) is skipped as a no-op.
    /// The slot advances the cursor either way.
    pub fn execute_ready(&mut self) -> Vec<(u64, Request)> {
        let mut out = Vec::new();
        while let Some(s) = self.slots.get(&self.exec_cursor) {
            if !s.decided {
                break;
            }
            let batch_digest = s.prepare.payload.batch.digest();
            for req in s.prepare.payload.batch.reqs.clone() {
                if self.executed_ops.insert((req.client, req.op)) {
                    self.state = self
                        .state
                        .wrapping_mul(1099511628211)
                        .wrapping_add(req.payload);
                    out.push((self.exec_cursor, req.clone()));
                    self.executed.push((self.exec_cursor, req));
                }
            }
            self.mmr.push(leaf_hash(self.exec_cursor, &batch_digest));
            self.exec_cursor += 1;
            self.maybe_capture_checkpoint();
        }
        out
    }

    /// Slots at or above `from` that hold a prepare but are not yet
    /// decided — the leader's in-flight pipeline occupancy.
    pub fn undecided_from(&self, from: u64) -> usize {
        self.slots
            .range(from..)
            .filter(|(_, s)| !s.decided)
            .count()
    }

    /// Prepared entries at or above `from_slot` (for VIEW-CHANGE
    /// messages): slots where we sent a COMMIT, plus decided ones.
    /// Slots below the watermark are covered by certificates / state
    /// transfer and need not be re-proposed.
    pub fn prepared_entries_from(&self, from_slot: u64) -> Vec<SignedPrepare> {
        self.slots
            .range(from_slot..)
            .map(|(_, s)| s)
            .filter(|s| s.committed_by_us || s.decided)
            .map(|s| s.prepare.clone())
            .collect()
    }

    /// The watermark: every slot below it is decided and executed.
    pub fn watermark(&self) -> u64 {
        self.exec_cursor
    }

    /// The transferable certificate of a decided slot: the accepted
    /// PREPARE plus every recorded signed COMMIT.
    pub fn certificate(&self, slot: u64) -> Option<(SignedPrepare, Vec<SignedCommit>)> {
        let s = self.slots.get(&slot)?;
        if !s.decided {
            return None;
        }
        Some((s.prepare.clone(), s.commits.values().cloned().collect()))
    }

    /// Adopts a verified decided entry (state transfer / lazy
    /// replication): stores the prepare with its commit certificate and
    /// marks the slot decided. A conflicting *decided* entry is never
    /// overwritten; returns `false` in that case.
    pub fn adopt_decided(&mut self, prepare: SignedPrepare, commits: Vec<SignedCommit>) -> bool {
        let slot_no = prepare.payload.slot;
        match self.slots.get_mut(&slot_no) {
            Some(existing) if existing.decided => {
                existing.prepare.payload.batch == prepare.payload.batch
            }
            existing => {
                assign_batch(&mut self.assigned, &prepare);
                let mut slot = Slot::new(prepare);
                slot.decided = true;
                slot.commits = commits.into_iter().map(|c| (c.signer, c)).collect();
                match existing {
                    Some(e) => *e = slot,
                    None => {
                        self.slots.insert(slot_no, slot);
                    }
                }
                true
            }
        }
    }

    /// Highest slot number that holds a prepare.
    pub fn max_slot(&self) -> Option<u64> {
        self.slots.keys().next_back().copied()
    }

    /// Number of decided slots.
    pub fn decided_count(&self) -> usize {
        self.slots.values().filter(|s| s.decided).count()
    }

    // ------------------------------------------------------------------
    // Checkpointing, compaction, and transfer serving
    // ------------------------------------------------------------------

    /// Sets the checkpoint period: whenever the execution cursor crosses
    /// a multiple of `interval`, the log captures a [`CheckpointPayload`]
    /// at exactly that boundary (every correct replica executing the same
    /// prefix captures a byte-identical payload, which is what makes
    /// `f + 1` matching signatures achievable). Zero disables capture.
    pub fn set_checkpoint_interval(&mut self, interval: u64) {
        self.ckpt_interval = interval;
    }

    /// Captures a checkpoint payload if the cursor sits exactly on a
    /// non-zero interval boundary. Called after every single-slot cursor
    /// advance, so no boundary is ever skipped or approximated.
    fn maybe_capture_checkpoint(&mut self) {
        if self.ckpt_interval == 0 || self.exec_cursor == 0 {
            return;
        }
        if !self.exec_cursor.is_multiple_of(self.ckpt_interval) {
            return;
        }
        // Infallible by the `mmr.leaf_count() == exec_cursor` invariant;
        // if it ever failed we would rather skip a checkpoint than panic.
        if let Ok(peaks) = self.mmr.peaks() {
            self.pending_ckpts.push(CheckpointPayload {
                slot: self.exec_cursor,
                state: self.state,
                peaks,
            });
        }
    }

    /// Drains the checkpoint payloads captured since the last call (the
    /// replica signs and broadcasts them).
    pub fn take_pending_checkpoints(&mut self) -> Vec<CheckpointPayload> {
        std::mem::take(&mut self.pending_ckpts)
    }

    /// Applies an MMR-verified compact entry at the cursor: executes the
    /// batch exactly as [`Log::execute_ready`] would have, advances the
    /// cursor, and parks the batch in the archive so this replica can in
    /// turn serve it. Returns the executed requests, or `None` if `slot`
    /// is not the cursor (out-of-order chunks are a protocol error the
    /// caller handles). The caller MUST have verified the entry's
    /// inclusion proof against a trusted checkpoint root first.
    pub fn apply_compact(&mut self, slot: u64, batch: &Batch) -> Option<Vec<(u64, Request)>> {
        if slot != self.exec_cursor {
            return None;
        }
        let mut out = Vec::new();
        let batch_digest = batch.digest();
        for req in &batch.reqs {
            self.assigned.insert((req.client, req.op), slot);
            if self.executed_ops.insert((req.client, req.op)) {
                self.state = self
                    .state
                    .wrapping_mul(1099511628211)
                    .wrapping_add(req.payload);
                out.push((slot, req.clone()));
                self.executed.push((slot, req.clone()));
            }
        }
        self.mmr.push(leaf_hash(slot, &batch_digest));
        self.exec_cursor += 1;
        self.archive.insert(slot, batch.clone());
        self.maybe_capture_checkpoint();
        Some(out)
    }

    /// The MMR over the executed prefix (read access for proof serving).
    pub fn mmr(&self) -> &Mmr {
        &self.mmr
    }

    /// Slots currently resident in the live map — the quantity the GC
    /// invariant bounds (soak tests assert it stays O(checkpoint
    /// interval + in-flight pipeline)).
    pub fn log_len(&self) -> usize {
        self.slots.len()
    }

    /// Batches resident in the transfer archive (bounded by
    /// `archive_retain`).
    pub fn archive_len(&self) -> usize {
        self.archive.len()
    }

    /// Lowest slot still resident in the live map.
    pub fn min_slot(&self) -> Option<u64> {
        self.slots.keys().next().copied()
    }

    /// First slot whose batch content this replica can still serve to a
    /// recovering peer.
    pub fn serve_floor(&self) -> u64 {
        self.serve_floor
    }

    /// Slots strictly below this have had their agreement records
    /// compacted away: late PREPARE/COMMIT traffic for them is old news
    /// (the slot is covered by a stable checkpoint) and must be ignored,
    /// not re-admitted as a fresh slot.
    pub fn gc_floor(&self) -> u64 {
        self.gc_floor
    }

    /// The checkpoint content at the current watermark: the executed
    /// prefix length, the state fold, and the MMR peaks.
    ///
    /// # Errors
    ///
    /// Propagates [`MmrError`] — only reachable if the forest somehow
    /// lacks its own current peaks, which the `mmr.leaf_count() ==
    /// exec_cursor` invariant rules out.
    pub fn checkpoint_payload(&self) -> Result<CheckpointPayload, MmrError> {
        Ok(CheckpointPayload {
            slot: self.exec_cursor,
            state: self.state,
            peaks: self.mmr.peaks()?,
        })
    }

    /// Garbage-collects executed slots below `stable_slot` from the live
    /// map, parking their batches in the transfer archive, which is in
    /// turn pruned to the last `archive_retain` slots below the stable
    /// point. Never touches unexecuted slots (the bound is clamped to the
    /// cursor). Returns the number of slots compacted.
    pub fn gc_below(&mut self, stable_slot: u64, archive_retain: u64) -> usize {
        let bound = stable_slot.min(self.exec_cursor);
        self.gc_floor = self.gc_floor.max(bound);
        let keep = self.slots.split_off(&bound);
        let dropped = std::mem::replace(&mut self.slots, keep);
        let n = dropped.len();
        for (slot, s) in dropped {
            self.archive.insert(slot, s.prepare.payload.batch);
        }
        let floor = bound.saturating_sub(archive_retain);
        self.archive = self.archive.split_off(&floor);
        self.serve_floor = self.serve_floor.max(floor);
        n
    }

    /// The executed batch at `slot`, from the live map or the archive —
    /// what a donor serves in a transfer chunk.
    pub fn batch_at(&self, slot: u64) -> Option<&Batch> {
        if slot >= self.exec_cursor {
            return None;
        }
        self.archive
            .get(&slot)
            .or_else(|| self.slots.get(&slot).map(|s| &s.prepare.payload.batch))
    }

    /// Jumps the log forward to a verified stable checkpoint: the cursor
    /// and state adopt the certified values and the MMR resumes from the
    /// certified peaks. Decided slots at or above the checkpoint are kept
    /// and will execute normally. A checkpoint at or behind the cursor is
    /// a no-op (we are already past it).
    ///
    /// # Errors
    ///
    /// [`MmrError::PeakCountMismatch`] if the payload's peaks do not
    /// match its slot's bit pattern (a malformed certificate — nothing is
    /// modified in that case).
    pub fn install_checkpoint(&mut self, ckpt: &CheckpointPayload) -> Result<(), MmrError> {
        if ckpt.slot <= self.exec_cursor {
            return Ok(());
        }
        let mmr = Mmr::from_peaks(ckpt.slot, &ckpt.peaks)?;
        self.mmr = mmr;
        self.slots = self.slots.split_off(&ckpt.slot);
        self.archive.clear();
        self.gc_floor = self.gc_floor.max(ckpt.slot);
        self.serve_floor = ckpt.slot;
        self.exec_cursor = ckpt.slot;
        self.state = ckpt.state;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsel_types::crypto::Keychain;
    use qsel_types::ClusterConfig;

    use crate::messages::{Batch, PreparePayload};

    fn chain() -> Keychain {
        Keychain::new(&ClusterConfig::new(4, 1).unwrap(), 1)
    }

    fn prep(chain: &Keychain, leader: u32, view: u64, slot: u64, payload: u64) -> SignedPrepare {
        chain.signer(ProcessId(leader)).sign(PreparePayload {
            view,
            slot,
            batch: Batch::single(Request {
                client: ProcessId(9),
                op: slot + 1,
                payload,
            }),
        })
    }

    fn prep_batch(
        chain: &Keychain,
        leader: u32,
        view: u64,
        slot: u64,
        reqs: Vec<Request>,
    ) -> SignedPrepare {
        chain.signer(ProcessId(leader)).sign(PreparePayload {
            view,
            slot,
            batch: Batch::new(reqs),
        })
    }

    /// A signed COMMIT from `signer` for `prepare`, with an optionally
    /// mismatched digest.
    fn commit_for(
        chain: &Keychain,
        signer: u32,
        prepare: &SignedPrepare,
        digest: qsel_types::crypto::Digest,
    ) -> crate::messages::SignedCommit {
        chain.signer(ProcessId(signer)).sign(crate::messages::CommitPayload {
            view: prepare.payload.view,
            slot: prepare.payload.slot,
            digest,
            prepare: prepare.clone(),
        })
    }

    #[test]
    fn accept_and_dedup() {
        let c = chain();
        let mut log = Log::new();
        let p = prep(&c, 1, 0, 0, 5);
        assert!(log.accept_prepare(p.clone()));
        assert!(log.accept_prepare(p.clone())); // idempotent
        assert_eq!(log.slot_of(&p.payload.batch.reqs[0]), Some(0));
        // Conflicting prepare in the same view is rejected.
        let conflicting = prep(&c, 1, 0, 0, 6);
        assert!(!log.accept_prepare(conflicting));
    }

    #[test]
    fn higher_view_supersedes_undecided() {
        let c = chain();
        let mut log = Log::new();
        log.accept_prepare(prep(&c, 1, 0, 0, 5));
        let newer = prep(&c, 2, 3, 0, 7);
        assert!(log.accept_prepare(newer.clone()));
        assert_eq!(log.prepare_at(0), Some(&newer));
    }

    #[test]
    fn commit_rule_requires_all_nonleader_members() {
        let c = chain();
        let mut log = Log::new();
        let p = prep(&c, 1, 0, 0, 5);
        let digest = p.payload.batch.digest();
        log.accept_prepare(p);
        let quorum: ProcessSet = [1, 2, 3].into_iter().map(ProcessId).collect();
        let me = ProcessId(2);
        let leader = ProcessId(1);
        // Own commit not yet sent: not decided.
        let p0 = log.prepare_at(0).unwrap().clone();
        log.record_commit(0, commit_for(&c, 3, &p0, digest));
        assert!(!log.try_decide(0, &quorum, leader, me));
        log.mark_committed_by_us(0);
        assert!(log.try_decide(0, &quorum, leader, me));
        // Second decide attempt returns false (already decided).
        assert!(!log.try_decide(0, &quorum, leader, me));
    }

    #[test]
    fn mismatched_digest_blocks_decision() {
        let c = chain();
        let mut log = Log::new();
        let p = prep(&c, 1, 0, 0, 5);
        let wrong = prep(&c, 1, 0, 1, 6).payload.batch.digest();
        log.accept_prepare(p);
        log.mark_committed_by_us(0);
        let p0 = log.prepare_at(0).unwrap().clone();
        assert!(!log.record_commit(0, commit_for(&c, 3, &p0, wrong)));
        let quorum: ProcessSet = [1, 2, 3].into_iter().map(ProcessId).collect();
        assert!(!log.try_decide(0, &quorum, ProcessId(1), ProcessId(2)));
    }

    #[test]
    fn execution_in_order_with_gaps() {
        let c = chain();
        let mut log = Log::new();
        for slot in [0u64, 1, 2] {
            log.accept_prepare(prep(&c, 1, 0, slot, slot + 10));
            log.mark_committed_by_us(slot);
        }
        let quorum: ProcessSet = [1, 2, 3].into_iter().map(ProcessId).collect();
        let digest_of = |log: &Log, s: u64| log.prepare_at(s).unwrap().payload.batch.digest();
        // Decide slots 0 and 2 (gap at 1).
        for s in [0u64, 2] {
            let d = digest_of(&log, s);
            let pr = log.prepare_at(s).unwrap().clone();
            log.record_commit(s, commit_for(&c, 3, &pr, d));
            assert!(log.try_decide(s, &quorum, ProcessId(1), ProcessId(2)));
        }
        let executed = log.execute_ready();
        assert_eq!(executed.len(), 1, "gap at slot 1 blocks slot 2");
        assert_eq!(executed[0].0, 0);
        // Fill the gap: slot 1 decided → 1 and 2 execute.
        let d = digest_of(&log, 1);
        let pr = log.prepare_at(1).unwrap().clone();
        log.record_commit(1, commit_for(&c, 3, &pr, d));
        assert!(log.try_decide(1, &quorum, ProcessId(1), ProcessId(2)));
        let executed = log.execute_ready();
        assert_eq!(executed.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(log.exec_cursor, 3);
    }

    #[test]
    fn prepared_entries_for_view_change() {
        let c = chain();
        let mut log = Log::new();
        log.accept_prepare(prep(&c, 1, 0, 0, 5));
        log.accept_prepare(prep(&c, 1, 0, 1, 6));
        log.mark_committed_by_us(0);
        assert_eq!(log.prepared_entries_from(0).len(), 1);
        assert_eq!(log.prepared_entries_from(1).len(), 0);
    }

    #[test]
    fn batched_slot_executes_requests_in_order_exactly_once() {
        let c = chain();
        let mut log = Log::new();
        let r = |op: u64| Request {
            client: ProcessId(9),
            op,
            payload: op * 10,
        };
        // Slot 0 carries [op1, op2]; slot 1 re-proposes op2 (as after a
        // view change) alongside op3 — op2 must execute only once.
        let p0 = prep_batch(&c, 1, 0, 0, vec![r(1), r(2)]);
        let p1 = prep_batch(&c, 1, 0, 1, vec![r(2), r(3)]);
        let quorum: ProcessSet = [1, 2, 3].into_iter().map(ProcessId).collect();
        for p in [p0, p1] {
            let slot = p.payload.slot;
            let d = p.payload.batch.digest();
            log.accept_prepare(p.clone());
            log.mark_committed_by_us(slot);
            log.record_commit(slot, commit_for(&c, 3, &p, d));
            assert!(log.try_decide(slot, &quorum, ProcessId(1), ProcessId(2)));
        }
        let executed = log.execute_ready();
        assert_eq!(
            executed.iter().map(|(s, q)| (*s, q.op)).collect::<Vec<_>>(),
            vec![(0, 1), (0, 2), (1, 3)],
            "batch order within a slot, dedup across slots"
        );
        assert_eq!(log.exec_cursor, 2);
        assert_eq!(log.undecided_from(0), 0);
    }

    #[test]
    fn undecided_from_counts_in_flight_slots() {
        let c = chain();
        let mut log = Log::new();
        for slot in 0..3u64 {
            log.accept_prepare(prep(&c, 1, 0, slot, slot));
        }
        assert_eq!(log.undecided_from(0), 3);
        assert_eq!(log.undecided_from(2), 1);
        let quorum: ProcessSet = [1, 2, 3].into_iter().map(ProcessId).collect();
        let p = log.prepare_at(0).unwrap().clone();
        let d = p.payload.batch.digest();
        log.mark_committed_by_us(0);
        log.record_commit(0, commit_for(&c, 3, &p, d));
        log.try_decide(0, &quorum, ProcessId(1), ProcessId(2));
        assert_eq!(log.undecided_from(0), 2);
    }

    #[test]
    fn deterministic_state_fold() {
        let c = chain();
        let run = || {
            let mut log = Log::new();
            let quorum: ProcessSet = [1, 2, 3].into_iter().map(ProcessId).collect();
            for slot in 0..5u64 {
                log.accept_prepare(prep(&c, 1, 0, slot, slot * 3));
                log.mark_committed_by_us(slot);
                let pr = log.prepare_at(slot).unwrap().clone();
                let d = pr.payload.batch.digest();
                log.record_commit(slot, commit_for(&c, 3, &pr, d));
                log.try_decide(slot, &quorum, ProcessId(1), ProcessId(2));
            }
            log.execute_ready();
            log.state
        };
        assert_eq!(run(), run());
    }
}
