//! XPaxos wire messages (Fig. 2 / Fig. 3 of the paper, plus view change).

use qsel::messages::SignedUpdate;
use qsel_mmr::MmrProof;
use qsel_types::crypto::{sha256, Digest};
use qsel_types::encode::{encode_to_vec, Decode, DecodeError, Encode, Reader};
use qsel_types::{CheckpointPayload, ProcessId, Signed};

/// Consumes a 4-byte domain-separation tag, rejecting a mismatch.
fn expect_tag(r: &mut Reader<'_>, tag: &[u8; 4]) -> Result<(), DecodeError> {
    let got = r.take(4)?;
    if got == tag {
        Ok(())
    } else {
        Err(DecodeError::BadTag(got[0]))
    }
}

/// A client request. Clients are simulation actors with ids above the
/// replica range; requests carry a per-client sequence number for
/// deduplication and a payload the state machine folds into its state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Request {
    /// The issuing client (a simulation actor id).
    pub client: ProcessId,
    /// Client-local sequence number.
    pub op: u64,
    /// Operation payload.
    pub payload: u64,
}

impl Request {
    /// Digest of the request (carried in COMMIT messages, §V-A).
    pub fn digest(&self) -> Digest {
        sha256(&encode_to_vec(self))
    }
}

impl Encode for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"REQS");
        self.client.encode(buf);
        self.op.encode(buf);
        self.payload.encode(buf);
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"REQS")?;
        Ok(Request {
            client: ProcessId::decode(r)?,
            op: u64::decode(r)?,
            payload: u64::decode(r)?,
        })
    }
}

/// An ordered batch of client requests agreed on as one slot. The leader
/// closes batches under its `BatchPolicy`; every replica executes a decided
/// batch's requests in batch order, so a batch is the unit of agreement
/// while the request stays the unit of execution (and of the `Executed`
/// trace event).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Batch {
    /// The batched requests, in proposal order.
    pub reqs: Vec<Request>,
}

impl Batch {
    /// A batch over `reqs` in the given order.
    pub fn new(reqs: Vec<Request>) -> Self {
        Batch { reqs }
    }

    /// The single-request batch the passthrough (default) policy proposes.
    pub fn single(req: Request) -> Self {
        Batch { reqs: vec![req] }
    }

    /// Digest of the whole batch (carried in COMMIT messages, §V-A). The
    /// encoding is length-prefixed, so a batch of one request and the bare
    /// request digest differently, and no two distinct batches collide.
    pub fn digest(&self) -> Digest {
        sha256(&encode_to_vec(self))
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the batch carries no requests.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Whether some request in the batch is `(client, op)`.
    pub fn contains(&self, client: ProcessId, op: u64) -> bool {
        self.reqs.iter().any(|r| r.client == client && r.op == op)
    }
}

impl Encode for Batch {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"BTCH");
        self.reqs.encode(buf);
    }
}

impl Decode for Batch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"BTCH")?;
        Ok(Batch {
            reqs: Vec::decode(r)?,
        })
    }
}

/// `PREPARE` payload: the leader proposes `batch` at `slot` in `view`
/// (§V-A step 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PreparePayload {
    /// The view this proposal belongs to.
    pub view: u64,
    /// The log slot.
    pub slot: u64,
    /// The proposed batch of client requests.
    pub batch: Batch,
}

impl Encode for PreparePayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"PREP");
        self.view.encode(buf);
        self.slot.encode(buf);
        self.batch.encode(buf);
    }
}

impl Decode for PreparePayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"PREP")?;
        Ok(PreparePayload {
            view: u64::decode(r)?,
            slot: u64::decode(r)?,
            batch: Batch::decode(r)?,
        })
    }
}

/// A signed PREPARE.
pub type SignedPrepare = Signed<PreparePayload>;

/// `COMMIT` payload. Per the paper's second protocol change, a COMMIT
/// includes the leader's PREPARE (so malformed COMMITs and leader
/// equivocation are detectable), plus the request digest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommitPayload {
    /// View of the prepare being committed.
    pub view: u64,
    /// Slot of the prepare being committed.
    pub slot: u64,
    /// Digest of the proposed batch.
    pub digest: Digest,
    /// The leader's PREPARE message (paper §V-A: "we therefore require
    /// that a COMMIT includes the PREPARE message from the leader").
    pub prepare: SignedPrepare,
}

impl Encode for CommitPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"CMMT");
        self.view.encode(buf);
        self.slot.encode(buf);
        self.digest.encode(buf);
        self.prepare.encode(buf);
    }
}

impl Decode for CommitPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"CMMT")?;
        Ok(CommitPayload {
            view: u64::decode(r)?,
            slot: u64::decode(r)?,
            digest: Digest::decode(r)?,
            prepare: SignedPrepare::decode(r)?,
        })
    }
}

/// A signed COMMIT.
pub type SignedCommit = Signed<CommitPayload>;

/// `VIEW-CHANGE` payload: sent when moving to `target_view`, carrying the
/// sender's watermark (first non-executed slot — everything below it is
/// decided) and its prepared entries above the watermark, so the new
/// leader can preserve them without replaying history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ViewChangePayload {
    /// The view being installed.
    pub target_view: u64,
    /// First slot not yet decided-and-executed at the sender.
    pub watermark: u64,
    /// Entries the sender has prepared (sent a COMMIT for) at or above
    /// its watermark, as the original signed PREPAREs.
    pub prepared: Vec<SignedPrepare>,
}

impl Encode for ViewChangePayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"VCHG");
        self.target_view.encode(buf);
        self.watermark.encode(buf);
        self.prepared.encode(buf);
    }
}

impl Decode for ViewChangePayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"VCHG")?;
        Ok(ViewChangePayload {
            target_view: u64::decode(r)?,
            watermark: u64::decode(r)?,
            prepared: Vec::decode(r)?,
        })
    }
}

/// A signed VIEW-CHANGE.
pub type SignedViewChange = Signed<ViewChangePayload>;

/// `NEW-VIEW` payload: the new leader's merged log; receivers adopt it and
/// resume normal operation. The merged entries are re-proposed by fresh
/// PREPAREs in the new view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NewViewPayload {
    /// The view being activated.
    pub view: u64,
    /// Every slot below `base` is decided somewhere in the new quorum;
    /// members behind it catch up via state transfer instead of
    /// re-agreement.
    pub base: u64,
    /// Re-proposals for the undecided slots at or above `base`.
    pub reproposals: Vec<SignedPrepare>,
}

impl Encode for NewViewPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"NVEW");
        self.view.encode(buf);
        self.base.encode(buf);
        self.reproposals.encode(buf);
    }
}

impl Decode for NewViewPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"NVEW")?;
        Ok(NewViewPayload {
            view: u64::decode(r)?,
            base: u64::decode(r)?,
            reproposals: Vec::decode(r)?,
        })
    }
}

/// A signed NEW-VIEW.
pub type SignedNewView = Signed<NewViewPayload>;

/// A reply to a client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reply {
    /// The replica's current view (for client leader-tracking).
    pub view: u64,
    /// The client's op number this reply answers.
    pub op: u64,
    /// Execution result (the slot, doubling as the state-machine output).
    pub result: u64,
}

impl Encode for Reply {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.view.encode(buf);
        self.op.encode(buf);
        self.result.encode(buf);
    }
}

impl Decode for Reply {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Reply {
            view: u64::decode(r)?,
            op: u64::decode(r)?,
            result: u64::decode(r)?,
        })
    }
}

/// A liveness heartbeat exchanged among active-quorum members. The paper's
/// failure classification (§II) assumes "every process is expected to send
/// infinitely many messages … the case in systems that use heartbeats";
/// this is that traffic, so crashes and per-link omissions are detected
/// even while no client operations are in flight.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HeartbeatPayload {
    /// Monotone sequence number.
    pub seq: u64,
}

impl Encode for HeartbeatPayload {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"XHRT");
        self.seq.encode(buf);
    }
}

impl Decode for HeartbeatPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"XHRT")?;
        Ok(HeartbeatPayload {
            seq: u64::decode(r)?,
        })
    }
}

/// A signed heartbeat.
pub type SignedHeartbeat = Signed<HeartbeatPayload>;

/// A decided slot with its transferable certificate: the leader's
/// PREPARE plus the signed COMMITs of every non-leader quorum member.
/// Receivers verify the certificate before adopting the entry, so not
/// even a Byzantine sender can forge decided state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecidedEntry {
    /// The accepted prepare.
    pub prepare: SignedPrepare,
    /// The commit certificate.
    pub commits: Vec<SignedCommit>,
}

impl Encode for DecidedEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"DCRT");
        self.prepare.encode(buf);
        self.commits.encode(buf);
    }
}

impl Decode for DecidedEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"DCRT")?;
        Ok(DecidedEntry {
            prepare: SignedPrepare::decode(r)?,
            commits: Vec::decode(r)?,
        })
    }
}

/// A replica's signed checkpoint vote (see [`CheckpointPayload`]).
pub type SignedCheckpoint = Signed<CheckpointPayload>;

/// A stable-checkpoint certificate: `f + 1` [`SignedCheckpoint`]s over
/// byte-identical payloads. At least one signer is correct, and a correct
/// replica only signs a checkpoint it computed by executing the prefix —
/// so a verified certificate proves the payload's state and MMR peaks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CheckpointCert {
    /// The matching signed votes, ascending by signer.
    pub sigs: Vec<SignedCheckpoint>,
}

impl CheckpointCert {
    /// The certified payload (all votes carry the same one; structural
    /// agreement is enforced by the verifier, not assumed here).
    pub fn payload(&self) -> Option<&CheckpointPayload> {
        self.sigs.first().map(|s| &s.payload)
    }
}

impl Encode for CheckpointCert {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"CCRT");
        self.sigs.encode(buf);
    }
}

impl Decode for CheckpointCert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"CCRT")?;
        Ok(CheckpointCert {
            sigs: Vec::decode(r)?,
        })
    }
}

/// One compacted log entry served during incremental state transfer: the
/// batch executed at `slot`, authenticated by an MMR inclusion proof
/// against a checkpoint certificate's root instead of by its (garbage-
/// collected) commit certificate. Receivers recompute the leaf from the
/// received bytes and verify the proof before applying anything.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompactEntry {
    /// The slot the batch was executed at.
    pub slot: u64,
    /// The executed batch.
    pub batch: Batch,
    /// Inclusion proof binding `(slot, batch)` to the certified MMR root.
    pub proof: MmrProof,
}

impl Encode for CompactEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(b"CENT");
        self.slot.encode(buf);
        self.batch.encode(buf);
        self.proof.encode(buf);
    }
}

impl Decode for CompactEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        expect_tag(r, b"CENT")?;
        Ok(CompactEntry {
            slot: u64::decode(r)?,
            batch: Batch::decode(r)?,
            proof: MmrProof::decode(r)?,
        })
    }
}

/// All XPaxos wire messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum XpMsg {
    /// Client → replicas.
    Request(Request),
    /// Leader → quorum (step 1).
    Prepare(SignedPrepare),
    /// Quorum member → quorum (step 2).
    Commit(SignedCommit),
    /// Replica → client (after execution).
    Reply(Reply),
    /// Any process → new leader on view change.
    ViewChange(SignedViewChange),
    /// New leader → all.
    NewView(SignedNewView),
    /// Piggybacked quorum-selection traffic.
    Update(SignedUpdate),
    /// Liveness heartbeat among active-quorum members.
    Heartbeat(SignedHeartbeat),
    /// Background replication of decided entries to passive replicas
    /// (XPaxos's lazy replication), so their logs stay near the frontier
    /// and view changes never replay history.
    LazyUpdate {
        /// Certified decided entries.
        entries: Vec<DecidedEntry>,
    },
    /// Request for decided entries in `[from_slot, to_slot)` (state
    /// transfer after a NEW-VIEW whose base is ahead of the requester).
    StateFetch {
        /// First wanted slot.
        from_slot: u64,
        /// One past the last wanted slot.
        to_slot: u64,
    },
    /// Response to [`XpMsg::StateFetch`].
    StateBatch {
        /// Certified decided entries.
        entries: Vec<DecidedEntry>,
    },
    /// A replica's periodic checkpoint vote, broadcast to all replicas.
    Checkpoint(SignedCheckpoint),
    /// A recovering replica probing the cluster: "I have executed up to
    /// `watermark`; what checkpoint and log range can you serve?"
    SyncQuery {
        /// The requester's executed-prefix length.
        watermark: u64,
    },
    /// A donor's answer to [`XpMsg::SyncQuery`].
    SyncInfo {
        /// The donor's newest stable-checkpoint certificate, if any.
        checkpoint: Option<CheckpointCert>,
        /// First slot the donor can still serve batch content for (its
        /// GC floor / archive start).
        archive_from: u64,
        /// The donor's executed-prefix length.
        frontier: u64,
    },
    /// Request for MMR-authenticated compact entries `[from_slot,
    /// to_slot)`, proved against the certified root at size `proof_slot`.
    SyncFetch {
        /// First wanted slot.
        from_slot: u64,
        /// One past the last wanted slot.
        to_slot: u64,
        /// Checkpoint size the proofs must be generated against.
        proof_slot: u64,
    },
    /// Response to [`XpMsg::SyncFetch`].
    SyncChunk {
        /// Compact entries with inclusion proofs, ascending by slot.
        entries: Vec<CompactEntry>,
        /// The checkpoint size the proofs were generated against (echo of
        /// the request's `proof_slot`).
        proof_slot: u64,
    },
}

impl XpMsg {
    /// Kind tag for traffic accounting (experiment E8).
    pub fn kind(&self) -> &'static str {
        match self {
            XpMsg::Request(_) => "request",
            XpMsg::Prepare(_) => "prepare",
            XpMsg::Commit(_) => "commit",
            XpMsg::Reply(_) => "reply",
            XpMsg::ViewChange(_) => "view-change",
            XpMsg::NewView(_) => "new-view",
            XpMsg::Update(_) => "update",
            XpMsg::Heartbeat(_) => "heartbeat",
            XpMsg::LazyUpdate { .. } => "lazy-update",
            XpMsg::StateFetch { .. } => "state-fetch",
            XpMsg::StateBatch { .. } => "state-batch",
            XpMsg::Checkpoint(_) => "checkpoint",
            XpMsg::SyncQuery { .. } => "sync-query",
            XpMsg::SyncInfo { .. } => "sync-info",
            XpMsg::SyncFetch { .. } => "sync-fetch",
            XpMsg::SyncChunk { .. } => "sync-chunk",
        }
    }

    /// Whether this is inter-replica traffic (excludes client-facing
    /// request/reply messages) — the quantity the paper's intro claims
    /// Quorum Selection reduces by ~1/3 (3f+1 systems) or ~1/2 (2f+1).
    pub fn is_inter_replica(&self) -> bool {
        !matches!(self, XpMsg::Request(_) | XpMsg::Reply(_))
    }
}

// Wire framing: a one-byte variant discriminant followed by the variant's
// canonical payload encoding. The simulator passes `XpMsg` values by clone,
// so this framing is exercised only by the round-trip property tests — but
// it is exactly what a real transport would ship, and it is where
// length-prefix bugs in `qsel_types::encode` would bite.
impl Encode for XpMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            XpMsg::Request(r) => {
                buf.push(0);
                r.encode(buf);
            }
            XpMsg::Prepare(p) => {
                buf.push(1);
                p.encode(buf);
            }
            XpMsg::Commit(c) => {
                buf.push(2);
                c.encode(buf);
            }
            XpMsg::Reply(r) => {
                buf.push(3);
                r.encode(buf);
            }
            XpMsg::ViewChange(vc) => {
                buf.push(4);
                vc.encode(buf);
            }
            XpMsg::NewView(nv) => {
                buf.push(5);
                nv.encode(buf);
            }
            XpMsg::Update(u) => {
                buf.push(6);
                u.encode(buf);
            }
            XpMsg::Heartbeat(h) => {
                buf.push(7);
                h.encode(buf);
            }
            XpMsg::LazyUpdate { entries } => {
                buf.push(8);
                entries.encode(buf);
            }
            XpMsg::StateFetch { from_slot, to_slot } => {
                buf.push(9);
                from_slot.encode(buf);
                to_slot.encode(buf);
            }
            XpMsg::StateBatch { entries } => {
                buf.push(10);
                entries.encode(buf);
            }
            XpMsg::Checkpoint(c) => {
                buf.push(11);
                c.encode(buf);
            }
            XpMsg::SyncQuery { watermark } => {
                buf.push(12);
                watermark.encode(buf);
            }
            XpMsg::SyncInfo {
                checkpoint,
                archive_from,
                frontier,
            } => {
                buf.push(13);
                match checkpoint {
                    Some(cert) => {
                        true.encode(buf);
                        cert.encode(buf);
                    }
                    None => false.encode(buf),
                }
                archive_from.encode(buf);
                frontier.encode(buf);
            }
            XpMsg::SyncFetch {
                from_slot,
                to_slot,
                proof_slot,
            } => {
                buf.push(14);
                from_slot.encode(buf);
                to_slot.encode(buf);
                proof_slot.encode(buf);
            }
            XpMsg::SyncChunk {
                entries,
                proof_slot,
            } => {
                buf.push(15);
                entries.encode(buf);
                proof_slot.encode(buf);
            }
        }
    }
}

impl Decode for XpMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = u8::decode(r)?;
        Ok(match tag {
            0 => XpMsg::Request(Request::decode(r)?),
            1 => XpMsg::Prepare(SignedPrepare::decode(r)?),
            2 => XpMsg::Commit(SignedCommit::decode(r)?),
            3 => XpMsg::Reply(Reply::decode(r)?),
            4 => XpMsg::ViewChange(SignedViewChange::decode(r)?),
            5 => XpMsg::NewView(SignedNewView::decode(r)?),
            6 => XpMsg::Update(SignedUpdate::decode(r)?),
            7 => XpMsg::Heartbeat(SignedHeartbeat::decode(r)?),
            8 => XpMsg::LazyUpdate {
                entries: Vec::decode(r)?,
            },
            9 => XpMsg::StateFetch {
                from_slot: u64::decode(r)?,
                to_slot: u64::decode(r)?,
            },
            10 => XpMsg::StateBatch {
                entries: Vec::decode(r)?,
            },
            11 => XpMsg::Checkpoint(SignedCheckpoint::decode(r)?),
            12 => XpMsg::SyncQuery {
                watermark: u64::decode(r)?,
            },
            13 => XpMsg::SyncInfo {
                checkpoint: if bool::decode(r)? {
                    Some(CheckpointCert::decode(r)?)
                } else {
                    None
                },
                archive_from: u64::decode(r)?,
                frontier: u64::decode(r)?,
            },
            14 => XpMsg::SyncFetch {
                from_slot: u64::decode(r)?,
                to_slot: u64::decode(r)?,
                proof_slot: u64::decode(r)?,
            },
            15 => XpMsg::SyncChunk {
                entries: Vec::decode(r)?,
                proof_slot: u64::decode(r)?,
            },
            t => return Err(DecodeError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsel_types::crypto::Keychain;
    use qsel_types::ClusterConfig;

    #[test]
    fn request_digest_distinguishes() {
        let a = Request { client: ProcessId(9), op: 1, payload: 7 };
        let mut b = a.clone();
        b.payload = 8;
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn commit_embeds_prepare() {
        let cfg = ClusterConfig::new(3, 1).unwrap();
        let chain = Keychain::new(&cfg, 1);
        let batch = Batch::single(Request { client: ProcessId(9), op: 1, payload: 7 });
        let prep = chain.signer(ProcessId(1)).sign(PreparePayload {
            view: 0,
            slot: 1,
            batch: batch.clone(),
        });
        let commit = chain.signer(ProcessId(2)).sign(CommitPayload {
            view: 0,
            slot: 1,
            digest: batch.digest(),
            prepare: prep.clone(),
        });
        assert!(chain.verifier().verify(&commit).is_ok());
        assert!(chain.verifier().verify(&commit.payload.prepare).is_ok());
        // Tampering with the embedded prepare breaks the outer signature.
        let mut bad = commit.clone();
        bad.payload.prepare.payload.slot = 9;
        assert!(chain.verifier().verify(&bad).is_err());
    }

    #[test]
    fn batch_digest_distinguishes_order_and_split() {
        let a = Request { client: ProcessId(9), op: 1, payload: 7 };
        let b = Request { client: ProcessId(9), op: 2, payload: 8 };
        let ab = Batch::new(vec![a.clone(), b.clone()]);
        let ba = Batch::new(vec![b, a.clone()]);
        assert_ne!(ab.digest(), ba.digest(), "batch order is significant");
        assert_ne!(
            Batch::single(a.clone()).digest(),
            Batch::new(vec![]).digest()
        );
        // The length prefix separates a singleton batch from the bare
        // request encoding.
        assert_ne!(encode_to_vec(&Batch::single(a.clone())), encode_to_vec(&a));
        assert!(Batch::single(a).contains(ProcessId(9), 1));
    }

    #[test]
    fn kinds_and_classification() {
        let req = Request { client: ProcessId(9), op: 1, payload: 0 };
        assert_eq!(XpMsg::Request(req.clone()).kind(), "request");
        assert!(!XpMsg::Request(req).is_inter_replica());
        assert!(XpMsg::Reply(Reply { view: 0, op: 1, result: 1 }).kind() == "reply");
    }
}
