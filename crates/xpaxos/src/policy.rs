//! View → quorum mapping.
//!
//! XPaxos enumerates all `C(n, f)` possible quorums ("synchronous groups")
//! and assigns view `v` the `v`-th combination in lexicographic order,
//! wrapping round-robin (paper §V-B). The leader of a view is the member
//! with the lowest id (§V-A step 1).
//!
//! Quorum-Selection-driven replicas use the same numbering: when the
//! selection module outputs `⟨QUORUM, Q⟩`, the replica "suspects all
//! quorums ordered before Q" — i.e. jumps directly to the next view whose
//! combination is `Q` ([`ViewPolicy::view_for_quorum`]).

use qsel_simnet::SimDuration;
use qsel_types::{ClusterConfig, ProcessId, ProcessSet, Quorum};

/// Leader-side request batching and commit pipelining knobs.
///
/// The leader accumulates pending client requests and proposes one signed
/// batch per slot. A batch closes as soon as it holds
/// [`max_batch_size`](Self::max_batch_size) requests, or when
/// [`max_batch_delay`](Self::max_batch_delay) has elapsed since its first
/// request arrived (a delay of zero closes every batch immediately). Up to
/// [`pipeline_depth`](Self::pipeline_depth) slots may be in flight —
/// proposed but not yet decided — at once.
///
/// The default policy (size 1, zero delay, depth 1) is the *compatibility
/// identity*: the replica takes the exact pre-batching code path, so traced
/// executions are byte-identical to the unbatched protocol for the same
/// seed. Batching changes how many requests share a slot, never which
/// quorum is active or how views change, so the paper's quorum-selection
/// guarantees (Theorems 3 and 9) are untouched by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Most requests a single batch (slot) may carry.
    pub max_batch_size: usize,
    /// Longest a non-full batch may wait for more requests before the
    /// leader proposes it anyway.
    pub max_batch_delay: SimDuration,
    /// Most undecided slots the leader keeps in flight at once.
    pub pipeline_depth: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_size: 1,
            max_batch_delay: SimDuration::ZERO,
            pipeline_depth: 1,
        }
    }
}

impl BatchPolicy {
    /// Builds a policy, clamping degenerate zero knobs up to 1.
    pub fn new(max_batch_size: usize, max_batch_delay: SimDuration, pipeline_depth: usize) -> Self {
        BatchPolicy {
            max_batch_size: max_batch_size.max(1),
            max_batch_delay,
            pipeline_depth: pipeline_depth.max(1),
        }
    }

    /// True for the default policy, which must behave — down to the traced
    /// byte level — exactly like the pre-batching protocol: one request per
    /// slot, proposed the moment it arrives, with no in-flight cap beyond
    /// what the closed-loop clients impose.
    pub fn is_passthrough(&self) -> bool {
        *self == BatchPolicy::default()
    }
}

/// Checkpointing and log-compaction knobs.
///
/// With a non-zero [`interval`](Self::interval) every replica signs and
/// broadcasts a checkpoint each time its execution cursor crosses an
/// interval multiple. Once `f + 1` matching signatures are collected the
/// checkpoint is *stable*: the replica garbage-collects every log slot
/// below it (certificates and all), keeping only the last
/// [`archive_retain`](Self::archive_retain) batches of compacted content
/// for serving MMR-authenticated incremental state transfer.
///
/// The default interval of zero disables the whole subsystem — the
/// replica behaves (and traces) byte-identically to the pre-checkpoint
/// protocol, which keeps golden traces stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CheckpointPolicy {
    /// Checkpoint period in slots (0 disables checkpointing, compaction,
    /// and incremental state transfer).
    pub interval: u64,
    /// How many compacted batches below the stable checkpoint stay
    /// resident in the transfer archive. Larger values let lagging peers
    /// catch up via compact entries (preserving their dedup history);
    /// smaller values bound memory harder and force far-behind peers to
    /// jump to the checkpoint instead.
    pub archive_retain: u64,
}

impl CheckpointPolicy {
    /// Builds a policy.
    pub fn new(interval: u64, archive_retain: u64) -> Self {
        CheckpointPolicy {
            interval,
            archive_retain,
        }
    }

    /// Whether checkpointing is on at all.
    pub fn enabled(&self) -> bool {
        self.interval > 0
    }
}

/// Lexicographic combination numbering of quorums.
#[derive(Clone, Copy, Debug)]
pub struct ViewPolicy {
    n: u32,
    q: u32,
}

impl ViewPolicy {
    /// Policy for quorums of size `q = n − f`.
    pub fn new(cfg: &ClusterConfig) -> Self {
        ViewPolicy {
            n: cfg.n(),
            q: cfg.quorum_size(),
        }
    }

    /// Total number of distinct quorums `C(n, q)`.
    pub fn quorum_count(&self) -> u128 {
        binomial(self.n as u64, self.q as u64)
    }

    /// The quorum of view `v` (the `v mod C(n,q)`-th combination in
    /// lexicographic order).
    pub fn group(&self, view: u64) -> Quorum {
        let index = (view as u128 % self.quorum_count()) as u64;
        Quorum::from_set_unchecked(self.unrank(index))
    }

    /// The leader of view `v`: the quorum member with the lowest id.
    pub fn leader(&self, view: u64) -> ProcessId {
        self.group(view).lowest()
    }

    /// The smallest view strictly greater than `after` whose quorum is
    /// `target` (the §V-B jump).
    pub fn view_for_quorum(&self, after: u64, target: &Quorum) -> u64 {
        let count = self.quorum_count() as u64;
        let rank = self.rank(target.members());
        let base = after - after % count;
        let candidate = base + rank;
        if candidate > after {
            candidate
        } else {
            candidate + count
        }
    }

    /// Lexicographic rank of a combination (combinatorial number system).
    fn rank(&self, set: &ProcessSet) -> u64 {
        let members: Vec<u32> = set.iter().map(|p| p.0 - 1).collect(); // zero-based
        debug_assert_eq!(members.len(), self.q as usize);
        let mut rank: u128 = 0;
        let mut prev: i64 = -1;
        let mut remaining = self.q as u64;
        for &m in &members {
            for skipped in (prev + 1) as u32..m {
                // Combinations starting with `skipped` in this position.
                rank += binomial(
                    (self.n - skipped - 1) as u64,
                    remaining - 1,
                );
            }
            prev = m as i64;
            remaining -= 1;
        }
        rank as u64
    }

    /// Inverse of [`Self::rank`].
    fn unrank(&self, mut index: u64) -> ProcessSet {
        let mut set = ProcessSet::new();
        let mut next = 0u32; // zero-based candidate
        let mut remaining = self.q;
        let mut idx = index as u128;
        while remaining > 0 {
            let count = binomial((self.n - next - 1) as u64, (remaining - 1) as u64);
            if idx < count {
                set.insert(ProcessId(next + 1));
                remaining -= 1;
            } else {
                idx -= count;
            }
            next += 1;
            assert!(next <= self.n, "unrank index out of range");
        }
        index = idx as u64;
        let _ = index;
        set
    }
}

/// Binomial coefficient.
fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc * (n - i) as u128 / (i + 1) as u128;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: u32, f: u32) -> ClusterConfig {
        ClusterConfig::new(n, f).unwrap()
    }

    #[test]
    fn view0_is_initial_quorum() {
        let p = ViewPolicy::new(&cfg(5, 2));
        assert_eq!(p.group(0), Quorum::initial(&cfg(5, 2)));
        assert_eq!(p.leader(0), ProcessId(1));
    }

    #[test]
    fn enumeration_is_lexicographic() {
        let p = ViewPolicy::new(&cfg(4, 1)); // q = 3, C(4,3) = 4 quorums
        let seq: Vec<Vec<u32>> = (0..5)
            .map(|v| p.group(v).iter().map(|x| x.0).collect())
            .collect();
        assert_eq!(
            seq,
            vec![
                vec![1, 2, 3],
                vec![1, 2, 4],
                vec![1, 3, 4],
                vec![2, 3, 4],
                vec![1, 2, 3], // round robin wrap
            ]
        );
    }

    #[test]
    fn rank_unrank_roundtrip() {
        let p = ViewPolicy::new(&cfg(7, 2)); // q = 5, C(7,5) = 21
        for v in 0..21u64 {
            let g = p.group(v);
            assert_eq!(p.rank(g.members()) as u64, v, "view {v}");
        }
    }

    #[test]
    fn view_for_quorum_jumps_forward() {
        let p = ViewPolicy::new(&cfg(4, 1));
        let target = p.group(2);
        assert_eq!(p.view_for_quorum(0, &target), 2);
        // Already at or past the target's rank: wrap to the next cycle.
        assert_eq!(p.view_for_quorum(2, &target), 6);
        assert_eq!(p.view_for_quorum(3, &target), 6);
        // Target rank 0 from view 0 → full wrap.
        let first = p.group(0);
        assert_eq!(p.view_for_quorum(0, &first), 4);
    }

    #[test]
    fn leaders_follow_lowest_member() {
        let p = ViewPolicy::new(&cfg(4, 1));
        assert_eq!(p.leader(3), ProcessId(2)); // quorum {2,3,4}
    }

    #[test]
    fn quorum_count() {
        assert_eq!(ViewPolicy::new(&cfg(7, 2)).quorum_count(), 21);
        assert_eq!(ViewPolicy::new(&cfg(10, 3)).quorum_count(), 120);
    }

    #[test]
    fn default_batch_policy_is_the_passthrough_identity() {
        assert!(BatchPolicy::default().is_passthrough());
        assert!(!BatchPolicy::new(2, SimDuration::ZERO, 1).is_passthrough());
        assert!(!BatchPolicy::new(1, SimDuration::ZERO, 2).is_passthrough());
        assert!(!BatchPolicy::new(1, SimDuration::micros(100), 1).is_passthrough());
    }

    #[test]
    fn batch_policy_clamps_zero_knobs() {
        let p = BatchPolicy::new(0, SimDuration::ZERO, 0);
        assert_eq!(p.max_batch_size, 1);
        assert_eq!(p.pipeline_depth, 1);
    }
}
