//! A closed-loop XPaxos client.

use std::collections::BTreeMap;

use qsel_detector::TimeoutPolicy;
use qsel_obs::{TraceEvent, TraceSink};
use qsel_simnet::{Context, SimDuration, SimTime, TimerId};
use qsel_types::{thresholds, ClusterConfig, ProcessId};

use crate::messages::{Reply, Request, XpMsg};

/// Retry timers are tagged with the op number so a timer armed for an
/// already-completed op dies silently instead of re-arming forever.
const TIMER_RETRY_BASE: u64 = 1000;

/// Retransmission back-off is capped at `initial × RETRY_CAP_FACTOR`.
const RETRY_CAP_FACTOR: u64 = 64;

/// A client that issues one request at a time, accepts a result once
/// `f + 1` replicas report the same one, then immediately issues the next
/// (closed loop). Requests are retransmitted to every replica on timeout,
/// with capped exponential back-off: every retransmission doubles the
/// retry interval (so a client facing a partition or a long view change
/// does not flood the network), and completed operations decay it back
/// toward the configured base interval.
#[derive(Debug)]
pub struct Client {
    me: ProcessId,
    cluster: ClusterConfig,
    backoff: TimeoutPolicy,
    max_ops: u64,
    next_op: u64,
    sent_at: SimTime,
    /// Matching replies for the in-flight op: result → replicas that
    /// reported it.
    tally: BTreeMap<u64, Vec<ProcessId>>,
    /// (op, result, latency) for every completed operation.
    pub completed: Vec<(u64, u64, SimDuration)>,
    /// Retransmissions sent.
    pub retries: u64,
    trace: TraceSink,
}

impl Client {
    /// A client actor with id `me` (outside the replica id range) issuing
    /// up to `max_ops` operations. `retry` is the base retransmission
    /// interval; back-off caps at `retry × 64`.
    pub fn new(me: ProcessId, cluster: ClusterConfig, retry: SimDuration, max_ops: u64) -> Self {
        assert!(
            me.0 > cluster.n(),
            "client ids must lie above the replica range"
        );
        Client {
            me,
            cluster,
            backoff: TimeoutPolicy::new(retry, retry.saturating_mul(RETRY_CAP_FACTOR)),
            max_ops,
            next_op: 0,
            sent_at: SimTime::ZERO,
            tally: BTreeMap::new(),
            completed: Vec::new(),
            retries: 0,
            trace: TraceSink::disabled(),
        }
    }

    /// Installs a trace sink (typically a clone of the simulation's, so
    /// events carry the ambient simulated time).
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// Completed operation count.
    pub fn committed_ops(&self) -> u64 {
        self.completed.len() as u64
    }

    /// Mean latency over completed ops, in microseconds.
    pub fn mean_latency_micros(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        let total: u64 = self.completed.iter().map(|(_, _, l)| l.as_micros()).sum();
        total as f64 / self.completed.len() as f64
    }

    fn current_request(&self) -> Request {
        Request {
            client: self.me,
            op: self.next_op,
            payload: self.next_op * 31 + u64::from(self.me.0),
        }
    }

    /// The retransmission interval currently in force.
    pub fn current_retry(&self) -> SimDuration {
        self.backoff.current()
    }

    fn issue(&mut self, ctx: &mut Context<'_, XpMsg>) {
        self.tally.clear();
        self.sent_at = ctx.now();
        let req = self.current_request();
        // Broadcast to all replicas: quorum members forward to the leader
        // and arm mute-leader expectations (replica logic).
        for r in self.cluster.processes() {
            ctx.send(r, XpMsg::Request(req.clone()));
        }
        ctx.set_timer(self.backoff.current(), TimerId(TIMER_RETRY_BASE + self.next_op));
    }

    fn on_reply(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, reply: Reply) {
        if reply.op != self.next_op || self.next_op >= self.max_ops {
            return; // stale
        }
        let entry = self.tally.entry(reply.result).or_default();
        if !entry.contains(&from) {
            entry.push(from);
        }
        // f+1 matching replies guarantee at least one correct replica
        // executed the operation at this slot.
        if thresholds::reply_quorum_reached(self.cluster.f(), entry.len()) {
            let latency = ctx.now() - self.sent_at;
            self.completed.push((reply.op, reply.result, latency));
            self.trace.emit(|| TraceEvent::ClientCommit {
                client: self.me.0,
                op: reply.op,
                latency_us: latency.as_micros(),
            });
            // The system answered: let an inflated retry interval decay
            // back toward the base.
            self.backoff.record_success();
            self.next_op += 1;
            if self.next_op < self.max_ops {
                self.issue(ctx);
            }
        }
    }
}

impl qsel_simnet::Actor<XpMsg> for Client {
    fn on_start(&mut self, ctx: &mut Context<'_, XpMsg>) {
        if self.max_ops > 0 {
            self.issue(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, XpMsg>, from: ProcessId, msg: XpMsg) {
        if let XpMsg::Reply(r) = msg {
            self.on_reply(ctx, from, r);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, XpMsg>, timer: TimerId) {
        let TimerId(id) = timer;
        if id < TIMER_RETRY_BASE {
            return;
        }
        let op = id - TIMER_RETRY_BASE;
        if op == self.next_op && self.next_op < self.max_ops {
            // Still waiting on the in-flight op: retransmit with a doubled
            // (capped) interval.
            self.retries += 1;
            self.backoff.back_off();
            self.trace.emit(|| TraceEvent::ClientRetry {
                client: self.me.0,
                op,
                interval_us: self.backoff.current().as_micros(),
            });
            let req = self.current_request();
            for r in self.cluster.processes() {
                ctx.send(r, XpMsg::Request(req.clone()));
            }
            ctx.set_timer(self.backoff.current(), timer);
        }
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, XpMsg>) {
        // The retry timer died with the process; re-issue the in-flight
        // operation (replicas that already executed it re-send replies).
        if self.next_op < self.max_ops {
            self.issue(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_requires_id_above_replicas() {
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let c = Client::new(ProcessId(5), cfg, SimDuration::millis(5), 10);
        assert_eq!(c.committed_ops(), 0);
        assert_eq!(c.mean_latency_micros(), 0.0);
    }

    #[test]
    #[should_panic(expected = "above the replica range")]
    fn client_id_collision_rejected() {
        let cfg = ClusterConfig::new(4, 1).unwrap();
        let _ = Client::new(ProcessId(3), cfg, SimDuration::millis(5), 10);
    }
}
