//! The XPaxos replica.
//!
//! Normal case (paper §V-A, Fig. 2): the lowest-id member of the active
//! quorum leads; it assigns slots to client requests and sends `PREPARE`s
//! to the quorum; members broadcast `COMMIT`s (which embed the `PREPARE`,
//! per the paper's protocol change) and decide once every non-leader
//! member's matching `COMMIT` arrived.
//!
//! Failure-detector integration (§V-A): receiving or sending a `PREPARE`
//! issues expectations for the `COMMIT`s of every other quorum member —
//! unless a member's `COMMIT` already arrived (first subtlety). A `COMMIT`
//! overtaking its `PREPARE` (Fig. 3) makes the receiver commit anyway and
//! expect the `PREPARE` from the leader (third subtlety). Malformed
//! `COMMIT`s and leader equivocation raise `⟨DETECTED⟩` (second subtlety).
//!
//! Quorum changes (§V-B): with [`QuorumPolicy::Enumeration`] the replica
//! round-robins through all `C(n, f)` quorums — the paper's XPaxos
//! baseline. With [`QuorumPolicy::Selection`] a [`QuorumSelection`] module
//! drives it: on `⟨QUORUM, Q⟩` the replica jumps straight to the view
//! whose group is `Q`, suspecting every quorum ordered before it, and
//! invokes `⟨CANCEL⟩` on the failure detector.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use qsel::{QsOutput, QuorumSelection};
use qsel_detector::{FailureDetector, FdConfig, FdOutput};
use qsel_obs::{TraceEvent, TraceSink};
use qsel_simnet::{Context, SimDuration, TimerId};
use qsel_types::crypto::{Keychain, Signer, Verifier};
use qsel_types::{thresholds, CheckpointPayload, ClusterConfig, ProcessId, Quorum};

use crate::log::Log;
use crate::messages::{
    Batch, CheckpointCert, CommitPayload, CompactEntry, DecidedEntry, HeartbeatPayload,
    NewViewPayload, PreparePayload, Reply, Request, SignedCheckpoint, SignedCommit, SignedNewView,
    SignedPrepare, SignedViewChange, ViewChangePayload, XpMsg,
};
use crate::policy::{BatchPolicy, CheckpointPolicy, ViewPolicy};

const TIMER_FD_POLL: TimerId = TimerId(1);
const TIMER_HEARTBEAT: TimerId = TimerId(2);
const TIMER_LAZY: TimerId = TimerId(3);
/// Leader-side batch-delay timer ([`BatchPolicy::max_batch_delay`]).
const TIMER_BATCH: TimerId = TimerId(4);
const TIMER_VC_BASE: u64 = 1000;
/// Generation-tagged state-transfer retry timers live far above the
/// view-change band so the two generation counters can never collide.
const TIMER_SYNC_BASE: u64 = 1_000_000_000;
/// Slots per state-transfer round trip (both compact and certified).
const SYNC_CHUNK: u64 = 512;
/// Unanswered rounds tolerated before the current donor is abandoned.
const SYNC_MAX_RETRIES: u32 = 3;
/// Cap on distinct slots with buffered checkpoint votes (a Byzantine
/// flood of far-future votes must not grow memory; honest votes cluster
/// near the frontier, so the farthest-future slots are evicted first).
const MAX_VOTE_SLOTS: usize = 1024;

/// How the replica chooses the next quorum after a suspicion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QuorumPolicy {
    /// The paper's XPaxos baseline: try quorums one after the other in
    /// enumeration order.
    Enumeration,
    /// Quorum Selection (Algorithm 1) picks the quorum; the replica jumps
    /// to its view directly.
    Selection,
}

/// Replica configuration.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// Quorum-change policy.
    pub policy: QuorumPolicy,
    /// Failure-detector timeouts.
    pub fd: FdConfig,
    /// Stall timeout for a pending view change (used by the enumeration
    /// policy, whose only recovery mechanism is "try the next quorum").
    pub view_change_timeout: SimDuration,
    /// Heartbeat period among active-quorum members (paper §II assumes
    /// heartbeat-style traffic so omission/crash failures surface even
    /// when no client operations are in flight).
    pub heartbeat_period: SimDuration,
    /// Period of the leader's lazy replication of decided entries to
    /// passive replicas (XPaxos's background replication). Keeps every
    /// log near the frontier so view changes never replay history.
    pub lazy_period: SimDuration,
    /// Leader-side request batching and commit pipelining. The default is
    /// the passthrough identity (size 1, depth 1): byte-identical traced
    /// behaviour to the unbatched protocol.
    pub batch: BatchPolicy,
    /// Checkpointing, log compaction, and incremental state transfer.
    /// The default (interval 0) disables the subsystem entirely, keeping
    /// traced behaviour byte-identical to the pre-checkpoint protocol.
    pub checkpoint: CheckpointPolicy,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            policy: QuorumPolicy::Selection,
            fd: FdConfig {
                initial_timeout: SimDuration::millis(2),
                ..FdConfig::default()
            },
            view_change_timeout: SimDuration::millis(10),
            heartbeat_period: SimDuration::millis(3),
            lazy_period: SimDuration::millis(10),
            batch: BatchPolicy::default(),
            checkpoint: CheckpointPolicy::default(),
        }
    }
}

/// Counters for experiments and assertions.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaStats {
    /// View changes initiated or joined.
    pub view_changes: u64,
    /// Views successfully installed (NEW-VIEW processed).
    pub views_installed: u64,
    /// Slots decided.
    pub decided: u64,
    /// Requests executed.
    pub executed: u64,
    /// `⟨DETECTED⟩` events raised (commission failures proven).
    pub detections: u64,
    /// Client requests forwarded to the leader.
    pub forwarded: u64,
    /// Crash-recoveries performed ([`Replica::handle_recover`]).
    pub recoveries: u64,
    /// Stable checkpoints installed (`f+1` matching signatures seen).
    pub checkpoints_stable: u64,
    /// Incremental state transfers started.
    pub state_transfers: u64,
    /// Transfer chunks rejected (failed proof / malformed range).
    pub chunks_rejected: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Normal,
    ViewChange { target: u64 },
}

/// What a donor said it can serve (checkpoint already verified).
#[derive(Clone, Debug)]
struct PeerSyncInfo {
    /// The donor's stable checkpoint, kept only if it verified.
    checkpoint: Option<CheckpointCert>,
    /// First slot the donor can serve batch content for.
    archive_from: u64,
    /// The donor's executed-prefix length.
    frontier: u64,
}

/// The recovery state machine (see [`Replica::begin_sync`]).
#[derive(Clone, Debug)]
enum SyncState {
    /// Not transferring.
    Idle,
    /// `SyncQuery` broadcast, collecting `SyncInfo` answers.
    Probing {
        /// Probe rounds completed without a usable answer (backoff input).
        retries: u32,
    },
    /// Pulling the gap from a chosen donor.
    Fetching {
        /// The donor every request in this attempt goes to.
        donor: ProcessId,
        /// Certified payload compact proofs verify against (compact mode).
        ckpt: Option<CheckpointPayload>,
        /// MMR size proofs are generated at; compact entries cover
        /// `[watermark, proof_slot)`. Zero when no compact segment.
        proof_slot: u64,
        /// The frontier this transfer is catching up to.
        target: u64,
        /// Unanswered request rounds at the current donor.
        retries: u32,
        /// `(slot, digest)` recomputed when the certified boundary was
        /// crossed — emitted with `StateTransferDone`.
        boundary: Option<(u64, u64)>,
    },
}

/// An XPaxos replica (drive it through [`crate::harness::XpActor`] or call
/// the `handle_*` methods from a custom host).
pub struct Replica {
    cfg: ClusterConfig,
    rcfg: ReplicaConfig,
    me: ProcessId,
    signer: Signer,
    verifier: Verifier,
    views: ViewPolicy,
    fd: FailureDetector<XpMsg>,
    qs: Option<QuorumSelection>,
    log: Log,
    view: u64,
    phase: Phase,
    next_slot: u64,
    vc_gen: u64,
    /// VIEW-CHANGE messages by target view, then signer. Ordered maps:
    /// the new leader folds these into NEW-VIEW re-proposals, and a
    /// leader-equivocation tie (two valid prepares for one slot in the
    /// same view) must resolve identically on every replica.
    collected_vc: BTreeMap<u64, BTreeMap<ProcessId, SignedViewChange>>,
    /// Whether the NEW-VIEW expectation for the current target is armed.
    nv_expected: bool,
    pending_requests: Vec<Request>,
    /// Leader-side batch accumulator (non-passthrough policies only):
    /// requests waiting for the next batch to close.
    pending_batch: Vec<Request>,
    /// When the oldest pending request's batch must close even if not
    /// full ([`BatchPolicy::max_batch_delay`]).
    batch_deadline: Option<qsel_simnet::SimTime>,
    /// PREPARE/COMMIT traffic that arrived mid view change (or for a view
    /// ahead of ours), replayed once the next view is installed so brief
    /// view-change windows do not turn into false omission suspicions at
    /// the senders.
    pending_protocol: std::collections::VecDeque<XpMsg>,
    /// First decided slot not yet shipped by lazy replication (leader).
    lazy_sent: u64,
    hb_seq: u64,
    /// Checkpoint votes by slot, then signer (ordered: a stable
    /// certificate's signature order must not leak map iteration order
    /// into message bytes).
    ckpt_votes: BTreeMap<u64, BTreeMap<ProcessId, SignedCheckpoint>>,
    /// Newest stable checkpoint certificate (served to recovering peers).
    stable_ckpt: Option<CheckpointCert>,
    /// Recovery state machine.
    sync: SyncState,
    /// Generation tag for sync retry timers: bumped on every request or
    /// phase change, so a stale timer fire is recognised and ignored.
    sync_gen: u64,
    /// `SyncInfo` answers collected during the current recovery.
    sync_infos: BTreeMap<ProcessId, PeerSyncInfo>,
    /// Donors that served bad chunks or timed out this recovery.
    sync_failed: BTreeSet<ProcessId>,
    stats: ReplicaStats,
    view_history: Vec<(qsel_simnet::SimTime, u64)>,
    trace: TraceSink,
}

/// First 8 bytes of a request digest — the compact identity traced with
/// `Executed` events, which the replay analyzer compares across replicas
/// for per-slot agreement.
fn digest_fingerprint(d: &qsel_types::crypto::Digest) -> u64 {
    // Infallible: `Digest.0` is `[u8; 32]`, so the first eight bytes
    // always exist — destructure instead of a fallible slice conversion.
    let [b0, b1, b2, b3, b4, b5, b6, b7, ..] = d.0;
    u64::from_be_bytes([b0, b1, b2, b3, b4, b5, b6, b7])
}

/// Deferred effects produced while handling one event.
#[derive(Debug, Default)]
struct Outs {
    sends: Vec<(ProcessId, XpMsg)>,
    timers: Vec<(SimDuration, TimerId)>,
}

impl Replica {
    /// Creates a replica.
    pub fn new(
        cfg: ClusterConfig,
        me: ProcessId,
        chain: &Keychain,
        rcfg: ReplicaConfig,
    ) -> Self {
        let qs = match rcfg.policy {
            QuorumPolicy::Selection => Some(QuorumSelection::new(
                cfg,
                me,
                chain.signer(me),
                chain.verifier(),
            )),
            QuorumPolicy::Enumeration => None,
        };
        let mut log = Log::new();
        log.set_checkpoint_interval(rcfg.checkpoint.interval);
        Replica {
            me,
            signer: chain.signer(me),
            verifier: chain.verifier(),
            views: ViewPolicy::new(&cfg),
            fd: FailureDetector::new(me, cfg.n(), rcfg.fd.clone()),
            qs,
            log,
            view: 0,
            phase: Phase::Normal,
            next_slot: 0,
            vc_gen: 0,
            collected_vc: BTreeMap::new(),
            nv_expected: false,
            pending_requests: Vec::new(),
            pending_batch: Vec::new(),
            batch_deadline: None,
            pending_protocol: std::collections::VecDeque::new(),
            lazy_sent: 0,
            hb_seq: 0,
            ckpt_votes: BTreeMap::new(),
            stable_ckpt: None,
            sync: SyncState::Idle,
            sync_gen: 0,
            sync_infos: BTreeMap::new(),
            sync_failed: BTreeSet::new(),
            stats: ReplicaStats::default(),
            view_history: Vec::new(),
            trace: TraceSink::disabled(),
            cfg,
            rcfg,
        }
    }

    /// Installs a trace sink, forwarded to the embedded failure detector
    /// and quorum-selection module so all three layers share one buffer
    /// and ambient clock.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.fd.set_trace_sink(sink.clone());
        if let Some(qs) = &mut self.qs {
            qs.set_trace_sink(sink.clone());
        }
        self.trace = sink;
    }

    // ------------------------------------------------------------------
    // Public inspection API
    // ------------------------------------------------------------------

    /// Current view number.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Whether the replica is in normal operation (not mid view change).
    pub fn is_normal(&self) -> bool {
        self.phase == Phase::Normal
    }

    /// The active quorum of the current view.
    pub fn active_quorum(&self) -> Quorum {
        self.views.group(self.view)
    }

    /// The current leader.
    pub fn leader(&self) -> ProcessId {
        self.views.leader(self.view)
    }

    /// The replicated log.
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// Counters.
    pub fn stats(&self) -> ReplicaStats {
        self.stats
    }

    /// The quorum-selection module, in [`QuorumPolicy::Selection`] mode.
    pub fn quorum_selection(&self) -> Option<&QuorumSelection> {
        self.qs.as_ref()
    }

    /// Installed views with their installation times (diagnosis aid).
    pub fn view_history(&self) -> &[(qsel_simnet::SimTime, u64)] {
        &self.view_history
    }

    /// Failure-detector statistics.
    pub fn fd_stats(&self) -> qsel_detector::FdStats {
        self.fd.stats()
    }

    /// This replica's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Slot of the newest stable checkpoint (0 when none yet).
    pub fn stable_checkpoint_slot(&self) -> u64 {
        self.stable_ckpt
            .as_ref()
            .and_then(|c| c.payload())
            .map_or(0, |p| p.slot)
    }

    /// Whether an incremental state transfer is currently in flight.
    pub fn is_syncing(&self) -> bool {
        !matches!(self.sync, SyncState::Idle)
    }

    // ------------------------------------------------------------------
    // Event entry points (called by the harness actor)
    // ------------------------------------------------------------------

    /// Starts the replica (arms the heartbeat and failure-detector poll
    /// timers).
    pub fn handle_start(&mut self, ctx: &mut Context<'_, XpMsg>) {
        let mut outs = Outs::default();
        self.heartbeat_tick(ctx.now(), &mut outs);
        outs.timers.push((self.rcfg.lazy_period, TIMER_LAZY));
        self.flush(ctx, outs);
    }

    /// Recovers after a benign crash (crash-recovery model with stable
    /// storage): the replica kept its durable protocol state, but its
    /// timers died with the process and the cluster may have moved on
    /// while it was down. Pre-crash expectations are cancelled — their
    /// messages may have been delivered to the void while we were dead, so
    /// letting them expire would accuse correct peers. The periodic
    /// machinery is re-armed exactly as in [`Replica::handle_start`], and
    /// the decided log suffix is re-requested from every peer so the
    /// replica rejoins at the commit frontier instead of waiting for lazy
    /// replication to find it.
    pub fn handle_recover(&mut self, ctx: &mut Context<'_, XpMsg>) {
        self.stats.recoveries += 1;
        let now = ctx.now();
        let mut outs = Outs::default();
        let fd_out = self.fd.cancel_all(now);
        self.pump_fd(now, fd_out, &mut outs);
        self.heartbeat_tick(now, &mut outs);
        outs.timers.push((self.rcfg.lazy_period, TIMER_LAZY));
        // The batch-delay timer died with the process; re-open the window
        // for any requests that were waiting in the accumulator.
        if !self.pending_batch.is_empty() && self.rcfg.batch.max_batch_delay > SimDuration::ZERO {
            self.batch_deadline = Some(now + self.rcfg.batch.max_batch_delay);
            outs.timers.push((self.rcfg.batch.max_batch_delay, TIMER_BATCH));
        }
        self.pump_batches(now, &mut outs);
        if self.rcfg.checkpoint.enabled() {
            // Incremental recovery: probe the cluster for a stable
            // checkpoint and the serveable log ranges, then pull only the
            // gap — O(gap) messages instead of a blanket full-suffix
            // broadcast to every peer. The retry/backoff machinery lives
            // in the sync state machine (its timers died with us).
            self.sync = SyncState::Idle;
            self.begin_sync(now, &mut outs);
        } else {
            // Every correct replica answers a StateFetch (possibly with an
            // empty batch), so the expectation is accuracy-safe — and a
            // peer that crashed in the meantime is rightly suspected.
            let from_slot = self.log.watermark();
            let min = self.rcfg.view_change_timeout;
            for k in self.cfg.processes() {
                if k == self.me {
                    continue;
                }
                outs.sends.push((
                    k,
                    XpMsg::StateFetch {
                        from_slot,
                        to_slot: u64::MAX,
                    },
                ));
                self.fd.expect_with_min(now, k, min, "recover-state", |m| {
                    matches!(m, XpMsg::StateBatch { .. })
                });
            }
        }
        // A view change interrupted by the crash is re-entered: the peers
        // may have completed it (or moved past it) while we were down and
        // will never re-send its messages. Re-issuing our VIEW-CHANGE and
        // re-arming its expectations is what pulls us forward — either the
        // quorum answers, or the resulting suspicions steer us to a view
        // change the live replicas will join.
        if let Phase::ViewChange { target } = self.phase {
            self.start_view_change(now, target, &mut outs);
        }
        self.flush(ctx, outs);
    }

    /// Handles a delivered message. `link_sender` is the network-level
    /// sender, used only to route state-transfer responses (the protocol
    /// messages inside are self-authenticating).
    pub fn handle_message(
        &mut self,
        ctx: &mut Context<'_, XpMsg>,
        link_sender: ProcessId,
        msg: XpMsg,
    ) {
        let mut outs = Outs::default();
        match msg {
            XpMsg::Request(req) => {
                self.on_request(ctx.now(), req, &mut outs);
            }
            XpMsg::Reply(_) => {} // replicas ignore replies
            XpMsg::StateFetch { from_slot, to_slot } => {
                self.on_state_fetch(link_sender, from_slot, to_slot, &mut outs);
            }
            XpMsg::LazyUpdate { entries } | XpMsg::StateBatch { entries } => {
                // Certificates are self-authenticating; adopt what
                // verifies. A StateBatch additionally fulfils the fetch
                // expectation, which flows through the detector below.
                self.adopt_entries(ctx.now(), entries, &mut outs);
                if let Some(origin) = Some(link_sender) {
                    let fd_out = self.fd.on_receive(
                        ctx.now(),
                        origin,
                        XpMsg::StateBatch { entries: Vec::new() },
                    );
                    self.pump_fd(ctx.now(), fd_out, &mut outs);
                }
                self.sync_progress(ctx.now(), &mut outs);
            }
            XpMsg::SyncQuery { watermark } => {
                self.on_sync_query(link_sender, watermark, &mut outs);
            }
            XpMsg::SyncInfo {
                checkpoint,
                archive_from,
                frontier,
            } => {
                self.on_sync_info(
                    ctx.now(),
                    link_sender,
                    checkpoint,
                    archive_from,
                    frontier,
                    &mut outs,
                );
            }
            XpMsg::SyncFetch {
                from_slot,
                to_slot,
                proof_slot,
            } => {
                self.on_sync_fetch(link_sender, from_slot, to_slot, proof_slot, &mut outs);
            }
            XpMsg::SyncChunk {
                entries,
                proof_slot,
            } => {
                self.on_sync_chunk(ctx.now(), link_sender, entries, proof_slot, &mut outs);
            }
            // Replica-to-replica traffic is authenticated and flows
            // through the failure detector (Fig. 1). Spelled out per
            // variant (no `_` arm) so adding a wire message forces a
            // routing decision here — the P1 lint guards the same edge.
            signed @ (XpMsg::Prepare(_)
            | XpMsg::Commit(_)
            | XpMsg::ViewChange(_)
            | XpMsg::NewView(_)
            | XpMsg::Update(_)
            | XpMsg::Heartbeat(_)
            | XpMsg::Checkpoint(_)) => {
                if let Some(origin) = self.authenticate(&signed) {
                    let fd_out = self.fd.on_receive(ctx.now(), origin, signed);
                    self.pump_fd(ctx.now(), fd_out, &mut outs);
                }
            }
        }
        self.flush(ctx, outs);
    }

    /// Handles a timer event.
    pub fn handle_timer(&mut self, ctx: &mut Context<'_, XpMsg>, timer: TimerId) {
        let mut outs = Outs::default();
        match timer {
            TIMER_FD_POLL => {
                let fd_out = self.fd.poll(ctx.now());
                self.pump_fd(ctx.now(), fd_out, &mut outs);
            }
            TIMER_HEARTBEAT => {
                self.heartbeat_tick(ctx.now(), &mut outs);
            }
            TIMER_LAZY => {
                self.lazy_tick(&mut outs);
            }
            TIMER_BATCH => {
                // The delay window of the oldest pending request expired;
                // `pump_batches` closes the undersized batch if a pipeline
                // slot is free (stale fires are harmless: the deadline
                // check inside simply does not force a close).
                self.pump_batches(ctx.now(), &mut outs);
            }
            TimerId(id) if id >= TIMER_SYNC_BASE => {
                // State-transfer retry timer: only the generation armed
                // for the in-flight request/probe is live; anything else
                // is a stale fire from an answered round.
                if id - TIMER_SYNC_BASE == self.sync_gen {
                    self.on_sync_timeout(ctx.now(), &mut outs);
                }
            }
            TimerId(id) if id >= TIMER_VC_BASE => {
                // View-change stall timer (enumeration policy): if the
                // targeted view never activated, try the next quorum.
                let gen = id - TIMER_VC_BASE;
                if gen == self.vc_gen
                    && self.rcfg.policy == QuorumPolicy::Enumeration
                {
                    if let Phase::ViewChange { target } = self.phase {
                        self.start_view_change(ctx.now(), target + 1, &mut outs);
                    }
                }
            }
            // lint: allow(S2, timers are armed only by this replica; an unknown id is a harness bug best surfaced loudly)
            other => unreachable!("unknown timer {other:?}"),
        }
        self.flush(ctx, outs);
    }

    /// Periodic liveness traffic among the members of the *effective*
    /// view's quorum (the pending target during a view change): expect a
    /// heartbeat from every other member, then send our own. This keeps a
    /// crashed or omitting member continuously suspected even while view
    /// changes are in flight — without it, a view change targeting a
    /// quorum with a dead member would erase the very suspicion that
    /// should steer the selection away from it. Passive replicas stay
    /// silent.
    fn heartbeat_tick(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        outs.timers.push((self.rcfg.heartbeat_period, TIMER_HEARTBEAT));
        let members = *self.views.group(self.effective_view()).members();
        if !members.contains(self.me) {
            return;
        }
        for k in members.iter() {
            if k != self.me {
                self.fd.expect(now, k, "heartbeat", |m| {
                    matches!(m, XpMsg::Heartbeat(_))
                });
            }
        }
        self.hb_seq += 1;
        let hb = XpMsg::Heartbeat(self.signer.sign(HeartbeatPayload { seq: self.hb_seq }));
        // Send to every replica, not just our effective group: during a
        // view change different processes briefly disagree on the group,
        // and a member-set mismatch must not look like an omission fault.
        for k in self.cfg.processes() {
            if k != self.me {
                outs.sends.push((k, hb.clone()));
            }
        }
    }

    // ------------------------------------------------------------------
    // Normal case
    // ------------------------------------------------------------------

    fn on_request(&mut self, now: qsel_simnet::SimTime, req: Request, outs: &mut Outs) {
        if self.phase != Phase::Normal {
            // Buffer and replay once the next view is installed, so a
            // view change does not cost a full client retry period.
            if !self.pending_requests.iter().any(|r| r.client == req.client && r.op == req.op) {
                self.pending_requests.push(req);
            }
            return;
        }
        // Executed before? Re-send the reply (client retransmission).
        if let Some(slot) = self.log.slot_of(&req) {
            if self.log.slot(slot).is_some_and(|s| s.decided) && slot < self.log.exec_cursor {
                outs.sends.push((
                    req.client,
                    XpMsg::Reply(Reply {
                        view: self.view,
                        op: req.op,
                        result: slot,
                    }),
                ));
            }
            return; // already assigned: in flight
        }
        let leader = self.leader();
        let members = *self.active_quorum().members();
        if self.me == leader {
            if self.rcfg.batch.is_passthrough() {
                // Compatibility identity: propose immediately, one request
                // per slot, exactly as the unbatched protocol did.
                self.trace.emit(|| TraceEvent::BatchAdmitted {
                    p: self.me.0,
                    client: req.client.0,
                    op: req.op,
                });
                self.propose_batch(now, Batch::single(req), outs);
                return;
            }
            if self
                .pending_batch
                .iter()
                .any(|r| r.client == req.client && r.op == req.op)
            {
                return; // retransmission of a request awaiting its batch
            }
            // The batch-wait clock starts here: the request is now parked
            // in the accumulator awaiting its batch.
            self.trace.emit(|| TraceEvent::BatchAdmitted {
                p: self.me.0,
                client: req.client.0,
                op: req.op,
            });
            self.pending_batch.push(req);
            if self.batch_deadline.is_none()
                && self.rcfg.batch.max_batch_delay > SimDuration::ZERO
            {
                self.batch_deadline = Some(now + self.rcfg.batch.max_batch_delay);
                outs.timers.push((self.rcfg.batch.max_batch_delay, TIMER_BATCH));
            }
            self.pump_batches(now, outs);
        } else if members.contains(self.me) {
            // Forward to the leader and expect it to prepare this request
            // (mute-leader detection). Under batching the request may share
            // its slot with others, so the expectation matches any PREPARE
            // (or overtaking COMMIT) whose batch contains it.
            self.stats.forwarded += 1;
            outs.sends.push((leader, XpMsg::Request(req.clone())));
            let view = self.view;
            let (client, op) = (req.client, req.op);
            self.fd.expect(now, leader, "prepare-for-request", move |m| {
                matches!(
                    m,
                    XpMsg::Prepare(sp)
                        if sp.payload.view == view
                            && sp.payload.batch.contains(client, op)
                ) || matches!(
                    m,
                    XpMsg::Commit(c)
                        if c.payload.prepare.payload.batch.contains(client, op)
                )
            });
        } else {
            // Passive replica: forward without expectation (it will not
            // receive the PREPARE — only quorum members do).
            outs.sends.push((leader, XpMsg::Request(req)));
        }
    }

    /// Signs and proposes `batch` at the next slot: PREPARE to the other
    /// quorum members, then local processing (which arms the per-member
    /// COMMIT expectations — one set per slot, so a whole batch costs the
    /// failure detector exactly one expectation event per member).
    fn propose_batch(&mut self, now: qsel_simnet::SimTime, batch: Batch, outs: &mut Outs) {
        let members = *self.active_quorum().members();
        let slot = self.next_slot;
        self.next_slot += 1;
        if !self.rcfg.batch.is_passthrough() {
            let size = batch.len() as u64;
            self.trace.emit(|| TraceEvent::BatchProposed {
                p: self.me.0,
                slot,
                size,
            });
        }
        // Request-level slot binding for causal span reconstruction: one
        // event per request, in every mode (passthrough included).
        for r in &batch.reqs {
            self.trace.emit(|| TraceEvent::ReqProposed {
                p: self.me.0,
                slot,
                client: r.client.0,
                op: r.op,
            });
        }
        let sp = self.signer.sign(PreparePayload {
            view: self.view,
            slot,
            batch,
        });
        for k in members.iter() {
            if k != self.me {
                outs.sends.push((k, XpMsg::Prepare(sp.clone())));
            }
        }
        self.process_prepare_locally(now, sp, outs);
    }

    /// Closes and proposes as many pending batches as the policy allows:
    /// while a pipeline slot is free, a batch closes once it is full, once
    /// the batch delay expired, or immediately when no delay is
    /// configured. No-op for followers, mid view change, and under the
    /// passthrough policy (whose accumulator is always empty).
    fn pump_batches(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        if self.phase != Phase::Normal || self.me != self.leader() {
            return;
        }
        let pol = self.rcfg.batch;
        while !self.pending_batch.is_empty() {
            if self.log.undecided_from(self.log.watermark()) >= pol.pipeline_depth {
                break; // pipeline full: wait for a decide
            }
            let full = self.pending_batch.len() >= pol.max_batch_size;
            let deadline_passed = self.batch_deadline.is_some_and(|d| d <= now);
            if !(full || deadline_passed || pol.max_batch_delay == SimDuration::ZERO) {
                break; // wait for more requests or the batch timer
            }
            let take = self.pending_batch.len().min(pol.max_batch_size);
            let reqs: Vec<Request> = self
                .pending_batch
                .drain(..take)
                // A request that gained a slot while queued (e.g. via a
                // NEW-VIEW re-proposal) must not be proposed twice.
                .filter(|r| self.log.slot_of(r).is_none())
                .collect();
            self.batch_deadline = None;
            if !self.pending_batch.is_empty() && pol.max_batch_delay > SimDuration::ZERO {
                // Re-open the delay window for the requests left behind.
                self.batch_deadline = Some(now + pol.max_batch_delay);
                outs.timers.push((pol.max_batch_delay, TIMER_BATCH));
            }
            if reqs.is_empty() {
                continue;
            }
            self.propose_batch(now, Batch::new(reqs), outs);
        }
        if self.pending_batch.is_empty() {
            self.batch_deadline = None;
        }
    }

    // lint: allow(S1, σ_l verified by authenticate in handle_message before FD dispatch reaches this handler)
    fn on_prepare(&mut self, now: qsel_simnet::SimTime, sp: SignedPrepare, outs: &mut Outs) {
        if self.phase != Phase::Normal || sp.payload.view > self.view {
            self.stash(XpMsg::Prepare(sp));
            return;
        }
        if sp.payload.view != self.view {
            return; // stale view
        }
        if sp.signer != self.leader() || !self.active_quorum().contains(self.me) {
            return;
        }
        self.process_prepare_locally(now, sp, outs);
    }

    fn on_commit(&mut self, now: qsel_simnet::SimTime, sc: SignedCommit, outs: &mut Outs) {
        // Malformed COMMIT: authenticated but without a valid embedded
        // PREPARE → the sender is detected (paper §V-A).
        let embedded_ok = self.verifier.verify(&sc.payload.prepare).is_ok()
            && sc.payload.prepare.payload.view == sc.payload.view
            && sc.payload.prepare.payload.slot == sc.payload.slot
            && sc.payload.prepare.signer == self.views.leader(sc.payload.view)
            && sc.payload.digest == sc.payload.prepare.payload.batch.digest();
        if !embedded_ok {
            self.detect(now, sc.signer, outs);
            return;
        }
        if sc.payload.slot < self.log.gc_floor() {
            // The slot was compacted below a stable checkpoint: its
            // agreement record is gone, so this late COMMIT must not be
            // re-admitted as a fresh slot (it would re-decide below the
            // GC floor and issue expectations no decided member answers).
            return;
        }
        if self.phase != Phase::Normal || sc.payload.view > self.view {
            self.stash(XpMsg::Commit(sc));
            return;
        }
        if sc.payload.view != self.view || !self.active_quorum().contains(self.me) {
            return; // stale view, or we are passive
        }
        let slot = sc.payload.slot;
        // Equivocation: a valid PREPARE different from the one we accepted
        // in the same view (paper §V-A: "it issues a ⟨DETECTED⟩ event for
        // the leader").
        if let Some(mine) = self.log.prepare_at(slot) {
            if mine.payload.view == sc.payload.view && mine.payload != sc.payload.prepare.payload
            {
                self.detect(now, self.views.leader(sc.payload.view), outs);
                return;
            }
        }
        if self.log.slot(slot).is_some_and(|s| s.decided) {
            // Already decided: record and stop. In particular do NOT
            // answer a COMMIT with our own COMMIT — decided members would
            // echo commits at each other indefinitely.
            self.log.record_commit(slot, sc);
            return;
        }
        let had_prepare = self.log.prepare_at(slot).is_some();
        if !had_prepare {
            // Fig. 3: the COMMIT overtook the PREPARE — adopt the embedded
            // prepare first so this COMMIT is recorded (otherwise we would
            // issue an expectation for a commit we already consumed).
            self.log.accept_prepare(sc.payload.prepare.clone());
        }
        let fresh_vote = !self
            .log
            .slot(slot)
            .is_some_and(|s| s.commits.contains_key(&sc.signer));
        self.log.record_commit(slot, sc.clone());
        if fresh_vote {
            // Quorum-formation timing: a previously-unseen vote for an
            // undecided slot (the first-to-last gap is the straggler gap).
            let have = self.log.slot(slot).map_or(0, |s| s.commits.len() as u64);
            let from = sc.signer.0;
            self.trace.emit(|| TraceEvent::CommitVote {
                p: self.me.0,
                slot,
                from,
                have,
            });
        }
        self.process_prepare_locally(now, sc.payload.prepare.clone(), outs);
        if !had_prepare {
            // Fig. 3: COMMIT overtook the PREPARE — expect the PREPARE
            // from the leader (third subtlety).
            let view = sc.payload.view;
            let leader = self.views.leader(view);
            self.fd.expect(now, leader, "overtaken-prepare", move |m| {
                matches!(
                    m,
                    XpMsg::Prepare(p) if p.payload.view == view && p.payload.slot == slot
                )
            });
        }
        self.try_decide_and_execute(now, slot, outs);
    }

    /// Accepts a PREPARE into the log, sends our COMMIT (followers),
    /// issues COMMIT expectations for the other members, and tries to
    /// decide. Shared by the leader's own proposal, a follower receiving
    /// a PREPARE, a COMMIT-embedded PREPARE, and NEW-VIEW re-proposals.
    // lint: allow(S1, every caller holds a verified prepare: authenticate, on_commit embedded-check, or our own signature)
    fn process_prepare_locally(
        &mut self,
        now: qsel_simnet::SimTime,
        sp: SignedPrepare,
        outs: &mut Outs,
    ) {
        let slot = sp.payload.slot;
        if slot < self.log.gc_floor() {
            return; // compacted below a stable checkpoint — old news
        }
        let view = sp.payload.view;
        let leader = self.views.leader(view);
        let members = *self.views.group(view).members();
        if let Some(existing) = self.log.slot(slot) {
            if existing.decided {
                if existing.prepare.payload.batch == sp.payload.batch {
                    // Re-proposal of a decided slot: help the others decide.
                    if self.me != leader {
                        let commit = self.signer.sign(CommitPayload {
                            view,
                            slot,
                            digest: sp.payload.batch.digest(),
                            prepare: sp,
                        });
                        for k in members.iter() {
                            if k != self.me {
                                outs.sends.push((k, XpMsg::Commit(commit.clone())));
                            }
                        }
                    }
                } else {
                    // A different batch for a decided slot can only come
                    // from a misbehaving leader.
                    self.detect(now, leader, outs);
                }
                return;
            }
            if existing.prepare.payload.view == view && existing.prepare.payload != sp.payload {
                self.detect(now, leader, outs);
                return;
            }
        }
        if !self.log.accept_prepare(sp.clone()) {
            return; // older-view prepare; ignore
        }
        if self.me != leader && !self.log.slot(slot).is_some_and(|s| s.committed_by_us) {
            let commit = self.signer.sign(CommitPayload {
                view,
                slot,
                digest: sp.payload.batch.digest(),
                prepare: sp,
            });
            for k in members.iter() {
                if k != self.me {
                    outs.sends.push((k, XpMsg::Commit(commit.clone())));
                }
            }
            self.log.mark_committed_by_us(slot);
            // Keep our own signed commit so decided slots carry a full
            // transferable certificate.
            self.log.record_commit(slot, commit);
        }
        // Expectations for the other members' COMMITs — skipping members
        // whose COMMIT already arrived (paper's first subtlety).
        for k in members.iter() {
            if k == self.me || k == leader {
                continue;
            }
            let already = self
                .log
                .slot(slot)
                .is_some_and(|s| s.commits.contains_key(&k));
            if already {
                continue;
            }
            self.fd.expect(now, k, "commit", move |m| {
                matches!(
                    m,
                    XpMsg::Commit(c) if c.payload.view == view && c.payload.slot == slot
                )
            });
        }
        self.try_decide_and_execute(now, slot, outs);
    }

    fn try_decide_and_execute(&mut self, now: qsel_simnet::SimTime, slot: u64, outs: &mut Outs) {
        let quorum = self.views.group(self.view);
        let leader = self.views.leader(self.view);
        if self
            .log
            .try_decide(slot, quorum.members(), leader, self.me)
        {
            self.stats.decided += 1;
            self.trace.emit(|| TraceEvent::Decided {
                p: self.me.0,
                slot,
            });
            if !self.rcfg.batch.is_passthrough() {
                if let Some(s) = self.log.slot(slot) {
                    let size = s.prepare.payload.batch.len() as u64;
                    let digest = digest_fingerprint(&s.prepare.payload.batch.digest());
                    self.trace.emit(|| TraceEvent::BatchCommitted {
                        p: self.me.0,
                        slot,
                        size,
                        digest,
                    });
                }
            }
            // A decided slot frees a pipeline stage: the next batch may
            // close now.
            self.pump_batches(now, outs);
        }
        for (s, req) in self.log.execute_ready() {
            self.stats.executed += 1;
            self.trace.emit(|| TraceEvent::Executed {
                p: self.me.0,
                slot: s,
                digest: digest_fingerprint(&req.digest()),
            });
            self.trace.emit(|| TraceEvent::ReplySent {
                p: self.me.0,
                client: req.client.0,
                op: req.op,
                slot: s,
            });
            outs.sends.push((
                req.client,
                XpMsg::Reply(Reply {
                    view: self.view,
                    op: req.op,
                    result: s,
                }),
            ));
        }
        self.pump_checkpoints(now, outs);
    }

    // ------------------------------------------------------------------
    // View change
    // ------------------------------------------------------------------

    fn effective_view(&self) -> u64 {
        match self.phase {
            Phase::Normal => self.view,
            Phase::ViewChange { target } => target,
        }
    }

    fn start_view_change(&mut self, now: qsel_simnet::SimTime, target: u64, outs: &mut Outs) {
        debug_assert!(target > self.view);
        self.stats.view_changes += 1;
        self.trace.emit(|| TraceEvent::ViewChangeStart {
            p: self.me.0,
            target,
        });
        self.drain_pending_batch();
        self.phase = Phase::ViewChange { target };
        self.vc_gen += 1;
        self.nv_expected = false;
        // §V-B: cancel expectations — processes may legitimately stop
        // sending expected PREPARE/COMMIT messages during a view change.
        let fd_out = self.fd.cancel_all(now);
        self.pump_fd(now, fd_out, outs);
        let watermark = self.log.watermark();
        let vc = self.signer.sign(ViewChangePayload {
            target_view: target,
            watermark,
            prepared: self.log.prepared_entries_from(watermark),
        });
        for k in self.cfg.processes() {
            if k != self.me {
                outs.sends.push((k, XpMsg::ViewChange(vc.clone())));
            }
        }
        self.collected_vc
            .entry(target)
            .or_default()
            .insert(self.me, vc);
        // Every replica expects the VIEW-CHANGE of every target-quorum
        // member it has not yet heard from. This attributes a stalled view
        // change to the *culprit member* rather than to the (possibly
        // correct and merely blocked) new leader — keeping the failure
        // detector accurate (§IV-B accuracy requirements).
        let members = *self.views.group(target).members();
        let collected = self.collected_vc.entry(target).or_default();
        for k in members.iter() {
            if k == self.me || collected.contains_key(&k) {
                continue;
            }
            // Any VIEW-CHANGE for this or a *later* target proves the
            // member is alive and participating (it may legitimately have
            // jumped ahead; we will join it when its message arrives).
            let min = self.rcfg.view_change_timeout;
            self.fd.expect_with_min(now, k, min, "view-change", move |m| {
                matches!(
                    m,
                    XpMsg::ViewChange(v) if v.payload.target_view >= target
                )
            });
        }
        self.progress_view_change(now, target, outs);
        if self.rcfg.policy == QuorumPolicy::Enumeration {
            outs.timers.push((
                self.rcfg.view_change_timeout,
                TimerId(TIMER_VC_BASE + self.vc_gen),
            ));
        }
    }

    // lint: allow(S1, σ_l verified by authenticate in handle_message before FD dispatch reaches this handler)
    fn on_view_change(&mut self, now: qsel_simnet::SimTime, vc: SignedViewChange, outs: &mut Outs) {
        let target = vc.payload.target_view;
        self.collected_vc
            .entry(target)
            .or_default()
            .insert(vc.signer, vc);
        if target > self.effective_view() {
            // Join the higher view change.
            self.start_view_change(now, target, outs);
        } else if self.effective_view() == target {
            self.progress_view_change(now, target, outs);
        }
    }

    /// Once the VIEW-CHANGE messages of all target-quorum members are in:
    /// the new leader completes the change; everyone else now — and only
    /// now — expects the NEW-VIEW (a correct leader is guaranteed to send
    /// it within a round, so the expectation is accuracy-safe).
    fn progress_view_change(
        &mut self,
        now: qsel_simnet::SimTime,
        target: u64,
        outs: &mut Outs,
    ) {
        if self.phase != (Phase::ViewChange { target }) {
            return;
        }
        let members = *self.views.group(target).members();
        let collected = self.collected_vc.entry(target).or_default();
        if !members.iter().all(|k| collected.contains_key(&k)) {
            return;
        }
        let leader = self.views.leader(target);
        if leader != self.me {
            if !self.nv_expected {
                self.nv_expected = true;
                let min = self.rcfg.view_change_timeout;
                self.fd.expect_with_min(now, leader, min, "new-view", move |m| {
                    matches!(m, XpMsg::NewView(nv) if nv.payload.view >= target)
                });
            }
            return;
        }
        // Everything below the highest reported watermark is decided at
        // the reporter; members behind it catch up via state transfer
        // instead of re-agreement. Merge only entries at or above it:
        // per slot, the prepare of the highest view wins.
        let base = collected
            .values()
            .map(|vc| vc.payload.watermark)
            .max()
            .unwrap_or(0);
        let mut merged: BTreeMap<u64, SignedPrepare> = BTreeMap::new();
        for vc in collected.values() {
            for sp in &vc.payload.prepared {
                // Only honor entries actually signed by their view's leader.
                if sp.payload.slot < base
                    || self.verifier.verify(sp).is_err()
                    || sp.signer != self.views.leader(sp.payload.view)
                {
                    continue;
                }
                merged
                    .entry(sp.payload.slot)
                    .and_modify(|cur| {
                        if sp.payload.view > cur.payload.view {
                            *cur = sp.clone();
                        }
                    })
                    .or_insert_with(|| sp.clone());
            }
        }
        let reproposals: Vec<SignedPrepare> = merged
            .values()
            .map(|sp| {
                self.signer.sign(PreparePayload {
                    view: target,
                    slot: sp.payload.slot,
                    batch: sp.payload.batch.clone(),
                })
            })
            .collect();
        let nv = self.signer.sign(NewViewPayload {
            view: target,
            base,
            reproposals,
        });
        for k in self.cfg.processes() {
            if k != self.me {
                outs.sends.push((k, XpMsg::NewView(nv.clone())));
            }
        }
        self.install_new_view(now, nv, outs);
    }

    // lint: allow(S1, σ_l verified by authenticate in handle_message; the embedded re-proposals are re-verified below)
    fn on_new_view(&mut self, now: qsel_simnet::SimTime, nv: SignedNewView, outs: &mut Outs) {
        let target = nv.payload.view;
        if nv.signer != self.views.leader(target) {
            return;
        }
        let acceptable = match self.phase {
            Phase::Normal => target > self.view,
            Phase::ViewChange { target: t } => target >= t || target > self.view,
        };
        if !acceptable {
            return;
        }
        // All re-proposals must be signed by the new leader for the new
        // view; a NEW-VIEW smuggling anything else is proof of misbehaviour.
        let all_ok = nv.payload.reproposals.iter().all(|sp| {
            self.verifier.verify(sp).is_ok()
                && sp.signer == nv.signer
                && sp.payload.view == target
        });
        if !all_ok {
            self.detect(now, nv.signer, outs);
            return;
        }
        self.install_new_view(now, nv, outs);
    }

    fn install_new_view(&mut self, now: qsel_simnet::SimTime, nv: SignedNewView, outs: &mut Outs) {
        let target = nv.payload.view;
        self.view = target;
        self.phase = Phase::Normal;
        self.vc_gen += 1; // invalidates any pending stall timer
        self.stats.views_installed += 1;
        self.trace.emit(|| TraceEvent::ViewInstalled {
            p: self.me.0,
            view: target,
        });
        self.view_history.push((now, target));
        self.collected_vc.remove(&target);
        let fd_out = self.fd.cancel_all(now);
        self.pump_fd(now, fd_out, outs);
        let in_quorum = self.views.group(target).contains(self.me);
        let base = nv.payload.base;
        if self.log.watermark() < base {
            // Slots below `base` are decided elsewhere: fetch their
            // certificates rather than re-agreeing on them. Every member
            // answers a StateFetch (possibly with an empty batch), so the
            // expectation below is accuracy-safe.
            let from_slot = self.log.watermark();
            let members = *self.views.group(target).members();
            let min = self.rcfg.view_change_timeout;
            for k in members.iter() {
                if k == self.me {
                    continue;
                }
                outs.sends.push((
                    k,
                    XpMsg::StateFetch {
                        from_slot,
                        to_slot: base,
                    },
                ));
                self.fd.expect_with_min(now, k, min, "state-batch", |m| {
                    matches!(m, XpMsg::StateBatch { .. })
                });
            }
        }
        // Replay protocol traffic that arrived mid view change FIRST, so
        // the commits it carries are in the log before the re-proposal
        // loop decides which expectations to arm — an expectation must
        // never be issued for a message that was already consumed.
        let protocol = std::mem::take(&mut self.pending_protocol);
        for msg in protocol {
            match msg {
                XpMsg::Prepare(sp) if sp.payload.view >= self.view => {
                    self.on_prepare(now, sp, outs)
                }
                XpMsg::Commit(sc) if sc.payload.view >= self.view => {
                    self.on_commit(now, sc, outs)
                }
                _ => {}
            }
        }
        let mut max_slot = self.next_slot.max(base);
        for sp in &nv.payload.reproposals {
            max_slot = max_slot.max(sp.payload.slot + 1);
            if in_quorum {
                self.process_prepare_locally(now, sp.clone(), outs);
            } else {
                // Passive replicas track the log so their future
                // VIEW-CHANGE messages carry the entries.
                self.log.accept_prepare(sp.clone());
            }
        }
        self.next_slot = max_slot;
        // Requests stranded in the old leader's batch accumulator rejoin
        // the pending set — `on_request` re-routes them: proposed if we
        // still lead, forwarded to the new leader otherwise.
        self.drain_pending_batch();
        let pending = std::mem::take(&mut self.pending_requests);
        for req in pending {
            self.on_request(now, req, outs);
        }
    }

    /// Moves batch-accumulator requests back into `pending_requests`
    /// (dedup-preserving) and disarms the batch deadline. Called when
    /// leaving normal operation: the batch machinery only runs for the
    /// current view's leader.
    fn drain_pending_batch(&mut self) {
        self.batch_deadline = None;
        for req in std::mem::take(&mut self.pending_batch) {
            if !self
                .pending_requests
                .iter()
                .any(|r| r.client == req.client && r.op == req.op)
            {
                self.pending_requests.push(req);
            }
        }
    }

    /// Buffers a protocol message for replay after the next view install,
    /// bounded to keep a Byzantine flood from growing memory.
    fn stash(&mut self, msg: XpMsg) {
        const MAX_PENDING: usize = 100_000;
        if self.pending_protocol.len() >= MAX_PENDING {
            self.pending_protocol.pop_front();
        }
        self.pending_protocol.push_back(msg);
    }

    // ------------------------------------------------------------------
    // Lazy replication and state transfer
    // ------------------------------------------------------------------

    /// Leader-side background replication (XPaxos's lazy replication):
    /// periodically ship certificates of newly decided slots to the
    /// replicas outside the active quorum, so their logs track the
    /// frontier and any future view change involving them stays O(recent).
    fn lazy_tick(&mut self, outs: &mut Outs) {
        outs.timers.push((self.rcfg.lazy_period, TIMER_LAZY));
        if self.phase != Phase::Normal || self.me != self.leader() {
            return;
        }
        const MAX_BATCH: u64 = 2_000;
        let end = self.log.watermark();
        let start = self.lazy_sent.min(end);
        let end = end.min(start + MAX_BATCH);
        if start >= end {
            return;
        }
        let entries: Vec<DecidedEntry> = (start..end)
            .filter_map(|slot| self.log.certificate(slot))
            .map(|(prepare, commits)| DecidedEntry { prepare, commits })
            .collect();
        self.lazy_sent = end;
        if entries.is_empty() {
            return;
        }
        let members = *self.active_quorum().members();
        for k in self.cfg.processes() {
            if k != self.me && !members.contains(k) {
                outs.sends.push((
                    k,
                    XpMsg::LazyUpdate {
                        entries: entries.clone(),
                    },
                ));
            }
        }
    }

    /// Answers a state-transfer request with whatever certified decided
    /// entries we hold in the range. Always responds (possibly with an
    /// empty batch) so the requester's expectation stays accuracy-safe.
    fn on_state_fetch(
        &mut self,
        requester: ProcessId,
        from_slot: u64,
        to_slot: u64,
        outs: &mut Outs,
    ) {
        if !self.cfg.contains(requester) {
            return; // only replicas participate in state transfer
        }
        const MAX_BATCH: u64 = 5_000;
        let to_slot = to_slot.min(from_slot.saturating_add(MAX_BATCH));
        let entries: Vec<DecidedEntry> = (from_slot..to_slot)
            .filter_map(|slot| self.log.certificate(slot))
            .map(|(prepare, commits)| DecidedEntry { prepare, commits })
            .collect();
        outs.sends.push((requester, XpMsg::StateBatch { entries }));
    }

    /// Adopts certified decided entries (from lazy replication or a state
    /// batch) after verifying each certificate, then executes anything
    /// that became ready.
    fn adopt_entries(&mut self, now: qsel_simnet::SimTime, entries: Vec<DecidedEntry>, outs: &mut Outs) {
        for entry in entries {
            if !self.verify_certificate(&entry) {
                continue;
            }
            self.log.adopt_decided(entry.prepare, entry.commits);
        }
        for (s, req) in self.log.execute_ready() {
            self.stats.executed += 1;
            self.trace.emit(|| TraceEvent::Executed {
                p: self.me.0,
                slot: s,
                digest: digest_fingerprint(&req.digest()),
            });
            self.trace.emit(|| TraceEvent::ReplySent {
                p: self.me.0,
                client: req.client.0,
                op: req.op,
                slot: s,
            });
            outs.sends.push((
                req.client,
                XpMsg::Reply(Reply {
                    view: self.view,
                    op: req.op,
                    result: s,
                }),
            ));
        }
        self.pump_checkpoints(now, outs);
    }

    /// A certificate is valid iff the prepare is signed by its view's
    /// leader and every non-leader member of that view's quorum
    /// contributed a matching signed commit — the exact evidence a decided
    /// slot rests on, so not even a Byzantine sender can forge one.
    fn verify_certificate(&self, entry: &DecidedEntry) -> bool {
        let sp = &entry.prepare;
        if self.verifier.verify(sp).is_err() {
            return false;
        }
        let view = sp.payload.view;
        let leader = self.views.leader(view);
        if sp.signer != leader {
            return false;
        }
        let members = *self.views.group(view).members();
        let digest = sp.payload.batch.digest();
        members.iter().filter(|k| *k != leader).all(|k| {
            entry.commits.iter().any(|c| {
                c.signer == k
                    && c.payload.view == view
                    && c.payload.slot == sp.payload.slot
                    && c.payload.digest == digest
                    && self.verifier.verify(c).is_ok()
            })
        })
    }

    // ------------------------------------------------------------------
    // Checkpointing and log compaction
    // ------------------------------------------------------------------

    /// Signs and broadcasts any checkpoint payloads the log captured
    /// while executing, counting our own vote. Payloads at or below the
    /// stable checkpoint (e.g. recomputed while replaying compact
    /// entries) are skipped — their certificate already exists.
    fn pump_checkpoints(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        if !self.rcfg.checkpoint.enabled() {
            return;
        }
        for payload in self.log.take_pending_checkpoints() {
            if payload.slot <= self.stable_checkpoint_slot() {
                continue;
            }
            let vote = self.signer.sign(payload);
            for k in self.cfg.processes() {
                if k != self.me {
                    outs.sends.push((k, XpMsg::Checkpoint(vote.clone())));
                }
            }
            self.on_checkpoint(now, vote, outs);
        }
    }

    /// Records a checkpoint vote (a peer's signature was verified by
    /// `authenticate`; our own is trivially valid) and promotes the slot
    /// to stable once `f + 1` byte-identical payloads carry signatures
    /// from distinct replicas.
    // lint: allow(S1, σ verified by authenticate before FD dispatch; own votes are self-signed)
    fn on_checkpoint(&mut self, now: qsel_simnet::SimTime, sc: SignedCheckpoint, outs: &mut Outs) {
        if !self.rcfg.checkpoint.enabled() {
            return;
        }
        let slot = sc.payload.slot;
        if slot <= self.stable_checkpoint_slot() || !self.cfg.contains(sc.signer) {
            return;
        }
        self.ckpt_votes.entry(slot).or_default().insert(sc.signer, sc);
        while self.ckpt_votes.len() > MAX_VOTE_SLOTS {
            self.ckpt_votes.pop_last();
        }
        let need = thresholds::checkpoint_quorum(self.cfg.f());
        let Some(votes) = self.ckpt_votes.get(&slot) else {
            return; // the new vote itself was evicted as far-future spam
        };
        // Group by payload equality (at most n votes; a quadratic scan
        // beats hashing whole payloads and is deterministic).
        let mut cert_sigs: Option<Vec<SignedCheckpoint>> = None;
        for candidate in votes.values() {
            let matching: Vec<SignedCheckpoint> = votes
                .values()
                .filter(|v| v.payload == candidate.payload)
                .cloned()
                .collect();
            if matching.len() >= need {
                cert_sigs = Some(matching);
                break;
            }
        }
        if let Some(sigs) = cert_sigs {
            self.install_stable(now, CheckpointCert { sigs }, outs);
        }
    }

    /// Installs a newer stable checkpoint: traces it, garbage-collects
    /// the log below it (bounded by our own executed prefix), prunes
    /// votes it covers, and — if the certificate proves the cluster is
    /// far ahead of us — starts catching up.
    fn install_stable(
        &mut self,
        now: qsel_simnet::SimTime,
        cert: CheckpointCert,
        outs: &mut Outs,
    ) {
        let Some(payload) = cert.payload().cloned() else {
            return;
        };
        let slot = payload.slot;
        if slot <= self.stable_checkpoint_slot() {
            return;
        }
        let digest = digest_fingerprint(&payload.digest());
        self.stable_ckpt = Some(cert);
        self.stats.checkpoints_stable += 1;
        let p = self.me.0;
        self.trace.emit(|| TraceEvent::CheckpointStable { p, slot, digest });
        let bound = slot.min(self.log.watermark());
        let collected = self
            .log
            .gc_below(slot, self.rcfg.checkpoint.archive_retain);
        if collected > 0 {
            let len = self.log.log_len() as u64;
            self.trace.emit(|| TraceEvent::LogGc {
                p,
                below: bound,
                len,
            });
        }
        self.ckpt_votes = self.ckpt_votes.split_off(&(slot + 1));
        // Far behind the certified frontier? The quorum moved on without
        // us (lazy replication lagging, long partition, …): catch up now
        // instead of waiting to be needed by a view change.
        let horizon = 2 * self.rcfg.checkpoint.interval;
        if slot > self.log.watermark().saturating_add(horizon) {
            self.begin_sync(now, outs);
        }
    }

    /// A stable-checkpoint certificate verifies iff it carries `f + 1`
    /// distinct in-cluster signers with valid signatures over
    /// byte-identical payloads whose peak count matches the slot's bit
    /// pattern. At least one signer is then correct, and correct replicas
    /// only sign checkpoints they computed by executing the prefix.
    fn verify_checkpoint_cert(&self, cert: &CheckpointCert) -> bool {
        let Some(payload) = cert.payload() else {
            return false;
        };
        if payload.peaks.len() != payload.slot.count_ones() as usize {
            return false;
        }
        let mut signers = BTreeSet::new();
        for s in &cert.sigs {
            if s.payload != *payload
                || !self.cfg.contains(s.signer)
                || self.verifier.verify(s).is_err()
                || !signers.insert(s.signer)
            {
                return false;
            }
        }
        thresholds::checkpoint_cert_complete(self.cfg.f(), signers.len())
    }

    // ------------------------------------------------------------------
    // Incremental state transfer (recovery)
    // ------------------------------------------------------------------

    /// Starts recovery: probe every peer for its checkpoint and
    /// serveable range, then pull only the gap from the best donor.
    /// No-op while a transfer is already in flight.
    fn begin_sync(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        if !self.rcfg.checkpoint.enabled() || !matches!(self.sync, SyncState::Idle) {
            return;
        }
        self.stats.state_transfers += 1;
        self.sync_infos.clear();
        self.sync_failed.clear();
        self.start_probe(now, 0, outs);
    }

    fn start_probe(&mut self, _now: qsel_simnet::SimTime, retries: u32, outs: &mut Outs) {
        self.sync = SyncState::Probing { retries };
        self.sync_gen += 1;
        let watermark = self.log.watermark();
        for k in self.cfg.processes() {
            if k != self.me {
                outs.sends.push((k, XpMsg::SyncQuery { watermark }));
            }
        }
        outs.timers.push((
            self.sync_backoff(retries),
            TimerId(TIMER_SYNC_BASE + self.sync_gen),
        ));
    }

    /// Bounded-exponential backoff for probe and fetch retries.
    fn sync_backoff(&self, retries: u32) -> SimDuration {
        self.rcfg
            .view_change_timeout
            .saturating_mul(1u64 << retries.min(5))
    }

    /// Donor side of the probe: always answer with whatever we can serve
    /// (requesters fail over on silence, so never answering would read as
    /// a crash — answering with nothing is honest and cheap).
    fn on_sync_query(&mut self, requester: ProcessId, _watermark: u64, outs: &mut Outs) {
        if !self.cfg.contains(requester) || requester == self.me {
            return;
        }
        outs.sends.push((
            requester,
            XpMsg::SyncInfo {
                checkpoint: self.stable_ckpt.clone(),
                archive_from: self.log.serve_floor(),
                frontier: self.log.watermark(),
            },
        ));
    }

    /// Donor side of a compact fetch: serve MMR-proved batches for as
    /// much of the requested range as we still hold. Always responds
    /// (possibly empty) so the requester fails over instead of hanging.
    fn on_sync_fetch(
        &mut self,
        requester: ProcessId,
        from_slot: u64,
        to_slot: u64,
        proof_slot: u64,
        outs: &mut Outs,
    ) {
        if !self.cfg.contains(requester) || requester == self.me {
            return;
        }
        let to = to_slot
            .min(from_slot.saturating_add(SYNC_CHUNK))
            .min(proof_slot)
            .min(self.log.watermark());
        let mut entries = Vec::new();
        for slot in from_slot..to {
            let Some(batch) = self.log.batch_at(slot) else {
                break;
            };
            let Ok(proof) = self.log.mmr().proof_at(slot, proof_slot) else {
                break;
            };
            entries.push(CompactEntry {
                slot,
                batch: batch.clone(),
                proof,
            });
        }
        outs.sends.push((
            requester,
            XpMsg::SyncChunk {
                entries,
                proof_slot,
            },
        ));
    }

    /// Requester side of the probe: record the answer (dropping any
    /// checkpoint certificate that fails verification — a Byzantine donor
    /// must not steer us with a forged one) and decide once every peer
    /// has answered; the probe timer decides earlier on partial answers.
    fn on_sync_info(
        &mut self,
        now: qsel_simnet::SimTime,
        sender: ProcessId,
        checkpoint: Option<CheckpointCert>,
        archive_from: u64,
        frontier: u64,
        outs: &mut Outs,
    ) {
        if !matches!(self.sync, SyncState::Probing { .. }) {
            return;
        }
        if !self.cfg.contains(sender) || sender == self.me {
            return;
        }
        let verified = checkpoint.filter(|c| self.verify_checkpoint_cert(c));
        self.sync_infos.insert(
            sender,
            PeerSyncInfo {
                checkpoint: verified,
                archive_from,
                frontier,
            },
        );
        if thresholds::all_peers_answered(self.cfg.n(), self.sync_infos.len() as u32) {
            self.choose_donor(now, outs);
        }
    }

    /// Picks the donor and transfer mode from the collected answers.
    ///
    /// Mode preference:
    /// 1. **compact** — a verified checkpoint certificate is ahead of us
    ///    and some donor still serves the batches in `[watermark, cert)`:
    ///    fetch them with MMR inclusion proofs, verifying each entry
    ///    against the certified root before applying (keeps our full
    ///    dedup history).
    /// 2. **jump** — a certificate is ahead but our gap was compacted
    ///    away everywhere: install the certified checkpoint directly,
    ///    then pull the suffix as ordinary commit certificates.
    /// 3. **replay** — no checkpoint anywhere (graceful degradation):
    ///    pull the whole suffix as commit certificates from one donor, as
    ///    the pre-checkpoint protocol did by broadcast.
    ///
    /// Donor choice is deterministic: highest frontier, ties to the
    /// lowest id, excluding donors that already failed this recovery.
    fn choose_donor(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        let my_wm = self.log.watermark();
        let cands: Vec<(ProcessId, u64, u64, Option<u64>)> = self
            .sync_infos
            .iter()
            .filter(|(k, _)| !self.sync_failed.contains(k))
            .map(|(k, i)| {
                (
                    *k,
                    i.archive_from,
                    i.frontier,
                    i.checkpoint.as_ref().and_then(|c| c.payload()).map(|p| p.slot),
                )
            })
            .collect();
        if cands.is_empty() {
            // Everyone failed or nobody answered: forget the failed set
            // (a donor may merely have been slow) and re-probe, backing
            // off so a dead cluster is not flooded.
            let retries = match self.sync {
                SyncState::Probing { retries } => retries + 1,
                _ => 1,
            };
            self.sync_failed.clear();
            self.sync_infos.clear();
            self.start_probe(now, retries, outs);
            return;
        }
        let pick_donor = |cands: &[(ProcessId, u64, u64, Option<u64>)]| {
            cands
                .iter()
                .max_by_key(|(k, _, fr, _)| (*fr, std::cmp::Reverse(*k)))
                .map(|(k, ..)| *k)
        };
        let target = cands.iter().map(|(_, _, fr, _)| *fr).max().unwrap_or(0);
        if target <= my_wm {
            // Nothing to fetch: we are at or past every answering peer.
            self.finish_sync(now, outs);
            return;
        }
        // The newest verified certificate ahead of us, from any answer.
        let best: Option<(u64, ProcessId)> = cands
            .iter()
            .filter_map(|(k, _, _, cs)| cs.map(|s| (s, *k)))
            .filter(|(s, _)| *s > my_wm)
            .max_by_key(|(s, k)| (*s, std::cmp::Reverse(*k)));
        let donor;
        let mode;
        let mut proof_slot = 0;
        let mut ckpt_payload = None;
        let mut boundary = None;
        if let Some((cs, holder)) = best {
            let cert = self
                .sync_infos
                .get(&holder)
                .and_then(|i| i.checkpoint.clone());
            let Some(cert) = cert else {
                return; // unreachable: `best` came from a present cert
            };
            let Some(payload) = cert.payload().cloned() else {
                return;
            };
            // Adopt the certificate: it verified, it is newer than ours,
            // and holding it lets us serve future recoverers. GC below
            // our own watermark rides along.
            self.install_stable(now, cert, outs);
            let compact_donor = cands
                .iter()
                .filter(|(_, af, fr, _)| *af <= my_wm && *fr >= cs)
                .max_by_key(|(k, _, fr, _)| (*fr, std::cmp::Reverse(*k)))
                .map(|(k, ..)| *k);
            if let Some(d) = compact_donor {
                donor = d;
                mode = "compact";
                proof_slot = cs;
                ckpt_payload = Some(payload);
            } else {
                // Nobody can serve our gap: jump to the certified state.
                if self.log.install_checkpoint(&payload).is_err() {
                    // Unreachable for a verified cert (peak count was
                    // checked); treat the holder as bad and re-choose.
                    self.sync_failed.insert(holder);
                    self.choose_donor(now, outs);
                    return;
                }
                boundary = Some((cs, digest_fingerprint(&payload.digest())));
                let Some(d) = pick_donor(&cands) else { return };
                donor = d;
                mode = "jump";
            }
        } else {
            let Some(d) = pick_donor(&cands) else { return };
            donor = d;
            mode = "replay";
        }
        self.sync = SyncState::Fetching {
            donor,
            ckpt: ckpt_payload,
            proof_slot,
            target,
            retries: 0,
            boundary,
        };
        let p = self.me.0;
        self.trace.emit(|| TraceEvent::StateTransferStart {
            p,
            from: my_wm,
            to: target,
            mode: mode.to_string(),
        });
        self.request_next(now, outs);
    }

    /// Sends the next fetch round to the donor and arms its retry timer.
    /// The request range restarts at the current watermark, so whatever
    /// already arrived (chunks, racing lazy updates) is never re-fetched.
    fn request_next(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        let SyncState::Fetching {
            donor,
            proof_slot,
            target,
            retries,
            ..
        } = &self.sync
        else {
            return;
        };
        let (donor, proof_slot, target, retries) = (*donor, *proof_slot, *target, *retries);
        let wm = self.log.watermark();
        if wm >= target {
            self.finish_sync(now, outs);
            return;
        }
        self.sync_gen += 1;
        let msg = if wm < proof_slot {
            XpMsg::SyncFetch {
                from_slot: wm,
                to_slot: (wm + SYNC_CHUNK).min(proof_slot),
                proof_slot,
            }
        } else {
            XpMsg::StateFetch {
                from_slot: wm,
                to_slot: target,
            }
        };
        outs.sends.push((donor, msg));
        outs.timers.push((
            self.sync_backoff(retries),
            TimerId(TIMER_SYNC_BASE + self.sync_gen),
        ));
    }

    /// Requester side of a compact fetch: each entry is verified against
    /// the certified MMR root *before* it is applied — a forged or
    /// tampered entry condemns the chunk and the donor, and nothing from
    /// it touches the log.
    fn on_sync_chunk(
        &mut self,
        now: qsel_simnet::SimTime,
        sender: ProcessId,
        entries: Vec<CompactEntry>,
        proof_slot: u64,
        outs: &mut Outs,
    ) {
        let SyncState::Fetching {
            donor,
            ckpt: Some(ckpt),
            proof_slot: want_ps,
            ..
        } = &self.sync
        else {
            return;
        };
        if sender != *donor || proof_slot != *want_ps || self.log.watermark() >= proof_slot {
            return; // unsolicited, mismatched, or stale
        }
        let root = qsel_mmr::root_of_peaks(ckpt.slot, &ckpt.peaks);
        let first = entries.first().map_or(self.log.watermark(), |e| e.slot);
        let mut bad = entries.is_empty(); // an empty answer means the donor reneged
        let mut progressed = false;
        for e in &entries {
            let wm = self.log.watermark();
            if e.slot < wm {
                continue; // already applied (a racing lazy update won)
            }
            let leaf = qsel_mmr::leaf_hash(e.slot, &e.batch.digest());
            if e.slot != wm
                || e.slot >= proof_slot
                || e.proof.leaf_index != e.slot
                || e.proof.leaf_count != proof_slot
                || !qsel_mmr::verify(&leaf, &e.proof, &root)
            {
                bad = true;
                break;
            }
            if let Some(reqs) = self.log.apply_compact(e.slot, &e.batch) {
                progressed = true;
                for (s, req) in reqs {
                    self.stats.executed += 1;
                    self.trace.emit(|| TraceEvent::Executed {
                        p: self.me.0,
                        slot: s,
                        digest: digest_fingerprint(&req.digest()),
                    });
                    outs.sends.push((
                        req.client,
                        XpMsg::Reply(Reply {
                            view: self.view,
                            op: req.op,
                            result: s,
                        }),
                    ));
                }
            }
        }
        self.pump_checkpoints(now, outs);
        if bad {
            self.stats.chunks_rejected += 1;
            let (p, from) = (self.me.0, sender.0);
            self.trace.emit(|| TraceEvent::SyncChunkRejected {
                p,
                from,
                slot: first,
            });
            self.fail_donor(now, outs);
            return;
        }
        if let SyncState::Fetching {
            retries, boundary, ..
        } = &mut self.sync
        {
            if progressed {
                *retries = 0;
            }
            if boundary.is_none() && self.log.watermark() >= proof_slot {
                // Compact segment complete: our *recomputed* checkpoint
                // payload at the certified boundary is the end-to-end
                // integrity witness the replay analyzer compares against
                // the certificate's digest.
                if let Ok(p) = self.log.checkpoint_payload() {
                    *boundary = Some((p.slot, digest_fingerprint(&p.digest())));
                }
            }
        }
        self.request_next(now, outs);
    }

    /// Called after StateBatch/LazyUpdate adoptions: when a certified
    /// tail fetch is in flight, cursor movement is progress — request the
    /// next round or finish. Without movement, the retry timer (not this
    /// path) escalates, so an empty answer cannot spin a request loop.
    fn sync_progress(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        let SyncState::Fetching {
            proof_slot, target, ..
        } = &self.sync
        else {
            return;
        };
        let (proof_slot, target) = (*proof_slot, *target);
        let wm = self.log.watermark();
        if wm < proof_slot {
            return; // the compact segment drives itself chunk by chunk
        }
        if wm >= target {
            self.finish_sync(now, outs);
        } else if let SyncState::Fetching { retries, .. } = &mut self.sync {
            *retries = 0;
            self.request_next(now, outs);
        }
    }

    /// Abandons the current donor (bad chunk or repeated timeouts) and
    /// re-chooses from the remaining answers.
    fn fail_donor(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        let SyncState::Fetching { donor, .. } = &self.sync else {
            return;
        };
        self.sync_failed.insert(*donor);
        self.sync = SyncState::Probing { retries: 0 };
        self.sync_gen += 1; // invalidate the in-flight fetch timer
        self.choose_donor(now, outs);
    }

    /// A probe or fetch round went unanswered (generation-checked).
    fn on_sync_timeout(&mut self, now: qsel_simnet::SimTime, outs: &mut Outs) {
        enum Act {
            None,
            Choose,
            Reprobe(u32),
            Fail,
            Retry,
        }
        let act = match &mut self.sync {
            SyncState::Idle => Act::None,
            SyncState::Probing { retries } => {
                if self
                    .sync_infos
                    .keys()
                    .any(|k| !self.sync_failed.contains(k))
                {
                    Act::Choose
                } else {
                    Act::Reprobe(*retries + 1)
                }
            }
            SyncState::Fetching { retries, .. } => {
                if *retries >= SYNC_MAX_RETRIES {
                    Act::Fail
                } else {
                    *retries += 1;
                    Act::Retry
                }
            }
        };
        match act {
            Act::None => {}
            Act::Choose => self.choose_donor(now, outs),
            Act::Reprobe(r) => self.start_probe(now, r, outs),
            Act::Fail => self.fail_donor(now, outs),
            Act::Retry => self.request_next(now, outs),
        }
    }

    /// Completes the transfer: emits the done event carrying the
    /// recomputed boundary digest (compact), the installed certificate
    /// digest (jump), or the final recomputed payload digest (replay).
    fn finish_sync(&mut self, _now: qsel_simnet::SimTime, _outs: &mut Outs) {
        let boundary = match &self.sync {
            SyncState::Fetching { boundary, .. } => *boundary,
            _ => None,
        };
        let (slot, digest) = boundary.unwrap_or_else(|| {
            let slot = self.log.watermark();
            let digest = self
                .log
                .checkpoint_payload()
                .map(|p| digest_fingerprint(&p.digest()))
                .unwrap_or(0);
            (slot, digest)
        });
        let p = self.me.0;
        self.trace.emit(|| TraceEvent::StateTransferDone { p, slot, digest });
        self.sync = SyncState::Idle;
        self.sync_gen += 1;
        self.sync_infos.clear();
        self.sync_failed.clear();
        // The stable checkpoint adopted at donor-choice time could only
        // collect below our *then* watermark; now that the gap is closed,
        // compact everything below it so the recovered replica's resident
        // log is bounded by the checkpoint interval again.
        if let Some(ckpt_slot) = self
            .stable_ckpt
            .as_ref()
            .and_then(|c| c.payload())
            .map(|pl| pl.slot)
        {
            let bound = ckpt_slot.min(self.log.watermark());
            let collected = self
                .log
                .gc_below(ckpt_slot, self.rcfg.checkpoint.archive_retain);
            if collected > 0 {
                let len = self.log.log_len() as u64;
                self.trace.emit(|| TraceEvent::LogGc {
                    p,
                    below: bound,
                    len,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Failure-detector and quorum-selection plumbing
    // ------------------------------------------------------------------

    fn detect(&mut self, now: qsel_simnet::SimTime, who: ProcessId, outs: &mut Outs) {
        self.stats.detections += 1;
        self.trace.emit(|| TraceEvent::DetectionRaised {
            p: self.me.0,
            against: who.0,
        });
        let fd_out = self.fd.detected(now, who);
        self.pump_fd(now, fd_out, outs);
    }

    fn pump_fd(
        &mut self,
        now: qsel_simnet::SimTime,
        initial: Vec<FdOutput<XpMsg>>,
        outs: &mut Outs,
    ) {
        let mut queue: VecDeque<FdOutput<XpMsg>> = initial.into();
        while let Some(ev) = queue.pop_front() {
            match ev {
                FdOutput::Deliver { msg, .. } => match msg {
                    XpMsg::Prepare(sp) => self.on_prepare(now, sp, outs),
                    XpMsg::Commit(sc) => self.on_commit(now, sc, outs),
                    XpMsg::ViewChange(vc) => self.on_view_change(now, vc, outs),
                    XpMsg::NewView(nv) => self.on_new_view(now, nv, outs),
                    XpMsg::Update(u) => {
                        if let Some(qs) = &mut self.qs {
                            let qs_out = qs.on_update(u);
                            self.pump_qs(now, qs_out, outs);
                        }
                    }
                    XpMsg::Heartbeat(_) => {} // expectation matching happens in the FD
                    // State-transfer traffic is adopted before the FD
                    // (handle_message); only the empty marker used for
                    // expectation fulfilment reaches this point.
                    XpMsg::LazyUpdate { .. }
                    | XpMsg::StateFetch { .. }
                    | XpMsg::StateBatch { .. } => {}
                    XpMsg::Checkpoint(sc) => self.on_checkpoint(now, sc, outs),
                    // Sync traffic is handled before the FD (handle_message).
                    XpMsg::SyncQuery { .. }
                    | XpMsg::SyncInfo { .. }
                    | XpMsg::SyncFetch { .. }
                    | XpMsg::SyncChunk { .. } => {}
                    XpMsg::Request(_) | XpMsg::Reply(_) => {}
                },
                FdOutput::Suspected(s) => match self.rcfg.policy {
                    QuorumPolicy::Selection => {
                        // `new()` constructs the module whenever the
                        // policy is Selection, so this branch always
                        // finds it; typed instead of `expect`.
                        if let Some(qs) = self.qs.as_mut() {
                            let qs_out = qs.on_suspected(s);
                            self.pump_qs(now, qs_out, outs);
                        }
                    }
                    QuorumPolicy::Enumeration => {
                        // Quorum-granularity detection: any suspicion of an
                        // active-quorum member abandons the current view.
                        if self.phase == Phase::Normal
                            && self
                                .active_quorum()
                                .iter()
                                .any(|m| s.contains(m) && m != self.me)
                        {
                            let next = self.view + 1;
                            self.start_view_change(now, next, outs);
                        }
                    }
                },
            }
        }
    }

    fn pump_qs(&mut self, now: qsel_simnet::SimTime, qs_out: Vec<QsOutput>, outs: &mut Outs) {
        for o in qs_out {
            match o {
                QsOutput::Broadcast(u) => {
                    for k in self.cfg.processes() {
                        if k != self.me {
                            outs.sends.push((k, XpMsg::Update(u.clone())));
                        }
                    }
                }
                QsOutput::Quorum(q) => {
                    // §V-B: jump to the view of the selected quorum,
                    // suspecting all quorums ordered before it.
                    let already = match self.phase {
                        Phase::Normal => self.views.group(self.view) == q,
                        Phase::ViewChange { target } => self.views.group(target) == q,
                    };
                    if !already {
                        let target = self.views.view_for_quorum(self.effective_view(), &q);
                        self.start_view_change(now, target, outs);
                    }
                }
            }
        }
    }

    fn authenticate(&self, msg: &XpMsg) -> Option<ProcessId> {
        match msg {
            XpMsg::Prepare(m) => self.verifier.verify(m).ok().map(|_| m.signer),
            XpMsg::Commit(m) => self.verifier.verify(m).ok().map(|_| m.signer),
            XpMsg::ViewChange(m) => self.verifier.verify(m).ok().map(|_| m.signer),
            XpMsg::NewView(m) => self.verifier.verify(m).ok().map(|_| m.signer),
            XpMsg::Update(m) => self.verifier.verify(m).ok().map(|_| m.signer),
            XpMsg::Heartbeat(m) => self.verifier.verify(m).ok().map(|_| m.signer),
            XpMsg::Checkpoint(m) => self.verifier.verify(m).ok().map(|_| m.signer),
            XpMsg::LazyUpdate { .. } | XpMsg::StateFetch { .. } | XpMsg::StateBatch { .. } => None,
            XpMsg::SyncQuery { .. }
            | XpMsg::SyncInfo { .. }
            | XpMsg::SyncFetch { .. }
            | XpMsg::SyncChunk { .. } => None,
            XpMsg::Request(_) | XpMsg::Reply(_) => None,
        }
    }

    fn flush(&mut self, ctx: &mut Context<'_, XpMsg>, outs: Outs) {
        for (to, msg) in outs.sends {
            ctx.send(to, msg);
        }
        for (after, id) in outs.timers {
            ctx.set_timer(after, id);
        }
        if let Some(deadline) = self.fd.next_deadline() {
            let delay = if deadline > ctx.now() {
                deadline - ctx.now() + SimDuration::micros(1)
            } else {
                SimDuration::micros(1)
            };
            ctx.set_timer(delay, TIMER_FD_POLL);
        }
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("me", &self.me)
            .field("view", &self.view)
            .field("phase", &self.phase)
            .field("decided", &self.log.decided_count())
            .finish()
    }
}
