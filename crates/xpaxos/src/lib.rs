//! XPaxos-style state machine replication with Quorum Selection
//! (Section V of the paper).
//!
//! XPaxos runs normal operation on an **active quorum** of `q = n − f`
//! replicas only: the leader (lowest id in the quorum) sends `PREPARE`s,
//! members exchange `COMMIT`s, and a request is decided once every other
//! member's matching `COMMIT` arrived (Fig. 2). Replicas outside the
//! quorum receive no traffic at all — that is the message saving the
//! paper's introduction quantifies (~1/3 of inter-replica messages for
//! `n = 3f+1` systems, ~1/2 for `n = 2f+1`).
//!
//! The price is sensitivity to faults *inside* the quorum, and the paper's
//! point is how to pick the next quorum:
//!
//! * [`replica::QuorumPolicy::Enumeration`] — the original XPaxos rule:
//!   try all `C(n, f)` quorums round-robin. A single Byzantine member can
//!   force `C(n−1, q−1)` view changes before it drops out of the quorum.
//! * [`replica::QuorumPolicy::Selection`] — this paper: a
//!   [`qsel::QuorumSelection`] module aggregates failure-detector
//!   suspicions and the replica jumps straight to the selected quorum,
//!   bounding interruptions by `O(f²)`.
//!
//! Failure detection follows §V-A: expectations for `COMMIT`s are issued
//! when a `PREPARE` is sent or received, `COMMIT`s embed the leader's
//! `PREPARE` so malformed commits and equivocation are detectable, and a
//! `COMMIT` overtaking its `PREPARE` commits immediately while expecting
//! the `PREPARE` (Fig. 3).
//!
//! # Quickstart
//!
//! ```
//! use qsel_simnet::SimTime;
//! use qsel_types::ClusterConfig;
//! use qsel_xpaxos::harness::{assert_safety, total_committed, ClusterBuilder};
//!
//! let cfg = ClusterConfig::new(4, 1).unwrap();
//! let mut sim = ClusterBuilder::new(cfg, 7).clients(1, 5).build();
//! sim.run_until(SimTime::from_micros(500_000));
//! assert_eq!(total_committed(&sim), 5);
//! assert_safety(&sim);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod harness;
pub mod log;
pub mod messages;
pub mod policy;
pub mod replica;

pub use policy::{BatchPolicy, CheckpointPolicy, ViewPolicy};
pub use replica::{QuorumPolicy, Replica, ReplicaConfig, ReplicaStats};
