//! Vertex-cover utilities.
//!
//! The paper uses the classical duality "finding an independent set of size
//! `q` is equivalent to finding a vertex cover of size `n - q`" in the
//! proofs of Theorem 4 and Lemma 8. These helpers make that duality
//! executable so the proofs' premises can be checked in tests and by the
//! adversary's strategy search.

use qsel_types::ProcessSet;
#[cfg(test)]
use qsel_types::ProcessId;

use crate::graph::SuspectGraph;

impl SuspectGraph {
    /// Whether `set` is a vertex cover: every edge has at least one
    /// endpoint in `set`.
    ///
    /// # Example
    ///
    /// ```
    /// use qsel_graph::SuspectGraph;
    /// use qsel_types::{ProcessId, ProcessSet};
    /// let g = SuspectGraph::from_edges(3, &[(1, 2), (2, 3)]);
    /// let c: ProcessSet = [ProcessId(2)].into_iter().collect();
    /// assert!(g.is_vertex_cover(&c));
    /// ```
    pub fn is_vertex_cover(&self, set: &ProcessSet) -> bool {
        self.edges().all(|(a, b)| set.contains(a) || set.contains(b))
    }

    /// A minimum vertex cover, computed as the complement of a maximum
    /// independent set (König-free exact search; exponential worst case).
    pub fn min_vertex_cover(&self) -> ProcessSet {
        let max_is_size = self.max_independent_set_size();
        let is = self
            .first_independent_set(max_is_size)
            .expect("a maximum independent set exists by definition");
        let mut cover = ProcessSet::new();
        for v in self.nodes() {
            if !is.contains(v) {
                cover.insert(v);
            }
        }
        cover
    }

    /// Whether the graph has a vertex cover of at most `size` nodes.
    ///
    /// By duality this holds iff an independent set of `n - size` nodes
    /// exists. This is exactly the paper's framing of quorum selection:
    /// "Choosing a quorum of q = n − f processes is equivalent to choosing
    /// f processes that should be excluded" (proof of Theorem 4).
    pub fn has_vertex_cover(&self, size: u32) -> bool {
        size >= self.n() || self.has_independent_set(self.n() - size)
    }

    /// The complement of `set` within this graph's node universe.
    pub fn complement_set(&self, set: &ProcessSet) -> ProcessSet {
        self.nodes().filter(|v| !set.contains(*v)).collect()
    }
}

/// Checks the duality used throughout the paper on a concrete pair:
/// `set` is an independent set iff its complement is a vertex cover.
pub fn duality_holds(g: &SuspectGraph, set: &ProcessSet) -> bool {
    g.is_independent(set) == g.is_vertex_cover(&g.complement_set(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cover_check() {
        let g = SuspectGraph::from_edges(4, &[(1, 2), (2, 3), (3, 4)]);
        let c: ProcessSet = [2, 3].into_iter().map(ProcessId).collect();
        assert!(g.is_vertex_cover(&c));
        let not: ProcessSet = [2].into_iter().map(ProcessId).collect();
        assert!(!g.is_vertex_cover(&not));
        assert!(g.is_vertex_cover(&full_for(4)));
    }

    #[test]
    fn min_cover_of_star() {
        let g = SuspectGraph::from_edges(5, &[(1, 2), (1, 3), (1, 4), (1, 5)]);
        let c = g.min_vertex_cover();
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![ProcessId(1)]);
    }

    #[test]
    fn min_cover_of_cycle() {
        // 5-cycle: max IS = 2, min cover = 3.
        let g = SuspectGraph::from_edges(5, &[(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]);
        let c = g.min_vertex_cover();
        assert_eq!(c.len(), 3);
        assert!(g.is_vertex_cover(&c));
    }

    #[test]
    fn has_cover_matches_duality() {
        let g = SuspectGraph::from_edges(5, &[(1, 2), (2, 3), (2, 5), (3, 4)]);
        for size in 0..=5u32 {
            assert_eq!(
                g.has_vertex_cover(size),
                size >= 5 || g.has_independent_set(5 - size),
                "size {size}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_duality(n in 2u32..9, seed in any::<u64>(), subset in any::<u16>()) {
            let mut g = SuspectGraph::new(n);
            let mut state = seed | 1;
            for a in 1..=n {
                for b in a + 1..=n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state >> 62 == 1 {
                        g.add_edge(ProcessId(a), ProcessId(b));
                    }
                }
            }
            let set: ProcessSet = (1..=n)
                .filter(|i| subset & (1 << (i - 1)) != 0)
                .map(ProcessId)
                .collect();
            prop_assert!(duality_holds(&g, &set));
        }

        #[test]
        fn prop_min_cover_is_cover_and_minimum(n in 2u32..8, seed in any::<u64>()) {
            let mut g = SuspectGraph::new(n);
            let mut state = seed | 1;
            for a in 1..=n {
                for b in a + 1..=n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state >> 62 == 1 {
                        g.add_edge(ProcessId(a), ProcessId(b));
                    }
                }
            }
            let c = g.min_vertex_cover();
            prop_assert!(g.is_vertex_cover(&c));
            if c.len() > 0 {
                prop_assert!(!g.has_vertex_cover(c.len() as u32 - 1));
            }
        }
    }
}

/// Test helper: full set over `n` processes without a `ClusterConfig`.
#[cfg(test)]
fn full_for(n: u32) -> ProcessSet {
    (1..=n).map(ProcessId).collect()
}
