//! The suspect graph: an undirected simple graph over process ids.

use std::fmt;

use qsel_types::{ProcessId, ProcessSet};

/// An undirected simple graph whose nodes are the processes `p_1, …, p_n`.
///
/// This is the paper's suspect graph (Section VI-B): nodes `l, k` are
/// connected iff one of them suspected the other in the current epoch or
/// later. Adjacency is stored as one bitset row per node, supporting up to
/// 128 processes.
///
/// # Example
///
/// ```
/// use qsel_graph::SuspectGraph;
/// use qsel_types::ProcessId;
///
/// let mut g = SuspectGraph::new(4);
/// g.add_edge(ProcessId(1), ProcessId(2));
/// assert!(g.has_edge(ProcessId(2), ProcessId(1)));
/// assert_eq!(g.degree(ProcessId(1)), 1);
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SuspectGraph {
    n: u32,
    adj: Vec<u128>,
}

impl SuspectGraph {
    /// Creates an edgeless graph on `n` nodes (`p_1, …, p_n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds [`ProcessSet::MAX_PROCESSES`].
    pub fn new(n: u32) -> Self {
        assert!(
            (1..=ProcessSet::MAX_PROCESSES).contains(&n),
            "graph size {n} out of range 1..={}",
            ProcessSet::MAX_PROCESSES
        );
        SuspectGraph {
            n,
            adj: vec![0; n as usize],
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Adds the undirected edge `{a, b}`. Self-loops are rejected because
    /// the suspect graph is simple (a process suspecting itself is
    /// meaningless in the protocol). Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either endpoint is out of range.
    pub fn add_edge(&mut self, a: ProcessId, b: ProcessId) -> bool {
        assert_ne!(a, b, "suspect graphs have no self-loops");
        self.check(a);
        self.check(b);
        let fresh = !self.has_edge(a, b);
        self.adj[a.index()] |= 1u128 << b.index();
        self.adj[b.index()] |= 1u128 << a.index();
        fresh
    }

    /// Removes the undirected edge `{a, b}` if present. Returns `true` if
    /// it was present.
    pub fn remove_edge(&mut self, a: ProcessId, b: ProcessId) -> bool {
        self.check(a);
        self.check(b);
        let present = self.has_edge(a, b);
        self.adj[a.index()] &= !(1u128 << b.index());
        self.adj[b.index()] &= !(1u128 << a.index());
        present
    }

    /// Whether the edge `{a, b}` is present.
    #[inline]
    pub fn has_edge(&self, a: ProcessId, b: ProcessId) -> bool {
        self.adj[a.index()] & (1u128 << b.index()) != 0
    }

    /// The degree of node `v`.
    #[inline]
    pub fn degree(&self, v: ProcessId) -> u32 {
        self.adj[v.index()].count_ones()
    }

    /// The neighbours of `v` as a set.
    pub fn neighbors(&self, v: ProcessId) -> ProcessSet {
        let mut s = ProcessSet::new();
        let mut bits = self.adj[v.index()];
        while bits != 0 {
            let tz = bits.trailing_zeros();
            bits &= bits - 1;
            s.insert(ProcessId(tz + 1));
        }
        s
    }

    /// Raw adjacency bitset of `v` (bit `i` set ⇔ edge to `p_{i+1}`).
    #[inline]
    pub(crate) fn adj_bits(&self, v: ProcessId) -> u128 {
        self.adj[v.index()]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|row| row.count_ones() as usize).sum::<usize>() / 2
    }

    /// Iterates over all edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        (0..self.n as usize).flat_map(move |i| {
            let mut out = Vec::new();
            let mut bits = self.adj[i] >> (i + 1) << (i + 1); // only higher-indexed neighbours
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                out.push((ProcessId(i as u32 + 1), ProcessId(tz + 1)));
            }
            out
        })
    }

    /// All nodes of the graph.
    pub fn nodes(&self) -> impl Iterator<Item = ProcessId> + Clone + use<> {
        (1..=self.n).map(ProcessId)
    }

    /// The set of nodes with degree ≥ 1.
    pub fn touched_nodes(&self) -> ProcessSet {
        self.nodes().filter(|&v| self.degree(v) > 0).collect()
    }

    /// Whether `set` is an independent set: no two members are adjacent.
    pub fn is_independent(&self, set: &ProcessSet) -> bool {
        let member_bits: u128 = set.iter().map(|p| 1u128 << p.index()).sum();
        set.iter().all(|v| self.adj[v.index()] & member_bits == 0)
    }

    /// Builds a graph from an edge list (convenience for tests/examples).
    ///
    /// # Example
    ///
    /// ```
    /// use qsel_graph::SuspectGraph;
    /// let g = SuspectGraph::from_edges(4, &[(1, 2), (3, 4)]);
    /// assert_eq!(g.edge_count(), 2);
    /// ```
    pub fn from_edges(n: u32, edges: &[(u32, u32)]) -> Self {
        let mut g = SuspectGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(ProcessId(a), ProcessId(b));
        }
        g
    }

    fn check(&self, v: ProcessId) {
        assert!(
            v.0 >= 1 && v.0 <= self.n,
            "node {v} out of range for graph on {} nodes",
            self.n
        );
    }
}

impl fmt::Debug for SuspectGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SuspectGraph(n={}, edges=[", self.n)?;
        for (k, (a, b)) in self.edges().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}-{b}")?;
        }
        write!(f, "])")
    }
}

impl fmt::Display for SuspectGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_edges() {
        let mut g = SuspectGraph::new(5);
        assert!(g.add_edge(ProcessId(1), ProcessId(3)));
        assert!(!g.add_edge(ProcessId(3), ProcessId(1)));
        assert_eq!(g.edge_count(), 1);
        assert!(g.remove_edge(ProcessId(1), ProcessId(3)));
        assert!(!g.remove_edge(ProcessId(1), ProcessId(3)));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "no self-loops")]
    fn self_loop_rejected() {
        let mut g = SuspectGraph::new(3);
        g.add_edge(ProcessId(2), ProcessId(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = SuspectGraph::new(3);
        g.add_edge(ProcessId(1), ProcessId(4));
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = SuspectGraph::from_edges(5, &[(1, 2), (2, 3), (2, 5)]);
        assert_eq!(g.degree(ProcessId(2)), 3);
        assert_eq!(g.degree(ProcessId(4)), 0);
        assert_eq!(
            g.neighbors(ProcessId(2)).iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert_eq!(
            g.touched_nodes().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 5]
        );
    }

    #[test]
    fn edges_iterator_sorted_pairs() {
        let g = SuspectGraph::from_edges(4, &[(3, 1), (4, 2)]);
        let edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        assert_eq!(edges, vec![(1, 3), (2, 4)]);
    }

    #[test]
    fn independence_check() {
        let g = SuspectGraph::from_edges(4, &[(1, 2), (3, 4)]);
        let ind: ProcessSet = [ProcessId(1), ProcessId(3)].into_iter().collect();
        let dep: ProcessSet = [ProcessId(1), ProcessId(2)].into_iter().collect();
        assert!(g.is_independent(&ind));
        assert!(!g.is_independent(&dep));
        assert!(g.is_independent(&ProcessSet::new()));
    }

    #[test]
    fn debug_format() {
        let g = SuspectGraph::from_edges(3, &[(1, 2)]);
        assert_eq!(format!("{g:?}"), "SuspectGraph(n=3, edges=[p1-p2])");
    }

    #[test]
    fn max_size_graph() {
        let mut g = SuspectGraph::new(128);
        g.add_edge(ProcessId(1), ProcessId(128));
        assert!(g.has_edge(ProcessId(128), ProcessId(1)));
        assert_eq!(g.degree(ProcessId(128)), 1);
    }
}
