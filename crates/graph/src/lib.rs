//! Suspect-graph algorithms for Quorum Selection.
//!
//! Section VI-B of the paper reduces quorum finding to graph problems on the
//! **suspect graph**: an undirected simple graph whose nodes are the
//! processes of `Π` and whose edges are the suspicions visible in the
//! current epoch.
//!
//! * A quorum is an *independent set* of size `q` ([`independent`]).
//! * Choosing the `f` processes to exclude is equivalent to finding a
//!   *vertex cover* of size `n - q` ([`cover`], used by the Theorem 4
//!   lower-bound machinery and by tests of Lemma 8).
//! * Follower Selection (Section VIII) computes *maximal line subgraphs*
//!   and *possible followers* ([`line`], Definitions 1 and 2).
//!
//! The solvers are exact. The independent-set decision problem is NP-hard
//! in general (the paper notes this in Section VI-C) but, as the paper
//! argues, "for small graphs, e.g. including only tenth of nodes, it is easy
//! to compute" — these implementations comfortably handle the
//! consortium-scale clusters (and the sparse accurate-epoch graphs) the
//! paper targets.
//!
//! # Example
//!
//! Figure 4 of the paper, epoch 3: the edge between `p3` and `p4` has
//! expired, and `{p1, p3, p4}` is the lexicographically first independent
//! set of size 3:
//!
//! ```
//! use qsel_graph::SuspectGraph;
//! use qsel_types::ProcessId;
//!
//! let mut g = SuspectGraph::new(5);
//! g.add_edge(ProcessId(1), ProcessId(2));
//! g.add_edge(ProcessId(2), ProcessId(3));
//! g.add_edge(ProcessId(2), ProcessId(5));
//! g.add_edge(ProcessId(1), ProcessId(5));
//! let q = g.first_independent_set(3).unwrap();
//! let members: Vec<u32> = q.iter().map(|p| p.0).collect();
//! assert_eq!(members, vec![1, 3, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cover;
mod graph;
pub mod independent;
pub mod line;

pub use graph::SuspectGraph;
pub use line::{LinearForest, MaximalLineSubgraph};
