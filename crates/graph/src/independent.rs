//! Independent-set solvers for the suspect graph.
//!
//! Algorithm 1 (line 27 and 31) needs two operations:
//!
//! * decide whether the suspect graph contains an independent set of size
//!   `q`, and
//! * if so, return the **first independent set of size `q` in
//!   lexicographic order** (Section VI-B: "If multiple independent sets of
//!   size q are found, the first in lexicographical order is chosen"),
//!   so that all correct processes deterministically pick the same quorum.
//!
//! Lexicographic order compares the sorted member sequences, so
//! `{p1, p2, p5} < {p1, p3, p4}`.
//!
//! The solver is an exact backtracking search over node ids in increasing
//! order, which visits candidate sets in exactly lexicographic order and
//! therefore returns the first solution it completes. Two prunings keep it
//! fast on the graphs Quorum Selection produces:
//!
//! * *counting*: stop a branch when too few nodes remain;
//! * *degree* (from the key observation in the Theorem 3 proof): when
//!   searching for an independent set of size `q` in a graph on `n = f + q`
//!   nodes, a node with degree ≥ f + 1 can never participate, because its
//!   neighbourhood and itself exceed the `f` exclusions available.

use qsel_types::{ProcessId, ProcessSet};

use crate::graph::SuspectGraph;

impl SuspectGraph {
    /// Whether the graph contains an independent set of exactly `size`
    /// nodes. (Any independent set of size ≥ `size` contains one of size
    /// `size`, so this is the paper's "contains no independent set of size
    /// q" test, Algorithm 1 line 27.)
    pub fn has_independent_set(&self, size: u32) -> bool {
        self.first_independent_set(size).is_some()
    }

    /// The lexicographically first independent set of `size` nodes, if any.
    ///
    /// # Example
    ///
    /// ```
    /// use qsel_graph::SuspectGraph;
    /// let g = SuspectGraph::from_edges(4, &[(1, 2)]);
    /// let s = g.first_independent_set(3).unwrap();
    /// assert_eq!(s.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 3, 4]);
    /// ```
    pub fn first_independent_set(&self, size: u32) -> Option<ProcessSet> {
        self.first_independent_set_impl(size, true)
    }

    /// Ablation/reference variant of [`Self::first_independent_set`]
    /// without the Theorem 3 degree pruning. Same results, used to
    /// quantify what the pruning buys (see the `graph_solvers` bench and
    /// experiment E-ABL).
    pub fn first_independent_set_no_prune(&self, size: u32) -> Option<ProcessSet> {
        self.first_independent_set_impl(size, false)
    }

    fn first_independent_set_impl(&self, size: u32, prune: bool) -> Option<ProcessSet> {
        if size == 0 {
            return Some(ProcessSet::new());
        }
        if size > self.n() {
            return None;
        }
        // Degree pruning (Theorem 3 key observation): nodes of degree
        // ≥ n - size + 1 cannot be in an independent set of `size` nodes.
        let mut banned: u128 = 0;
        if prune {
            let max_degree = self.n() - size;
            for v in self.nodes() {
                if self.degree(v) > max_degree {
                    banned |= 1u128 << v.index();
                }
            }
        }
        let mut chosen: u128 = 0;
        if self.search(size, 0, banned, &mut chosen) {
            Some(bits_to_set(chosen))
        } else {
            None
        }
    }

    /// Exhaustively counts independent sets of exactly `size` nodes.
    /// Exponential; intended for tests and the adversary's strategy search
    /// on small graphs.
    pub fn count_independent_sets(&self, size: u32) -> u64 {
        fn go(g: &SuspectGraph, need: u32, from: usize, banned: u128) -> u64 {
            if need == 0 {
                return 1;
            }
            let n = g.n() as usize;
            let mut total = 0;
            for i in from..n {
                if n - i < need as usize {
                    break;
                }
                if banned & (1u128 << i) != 0 {
                    continue;
                }
                let v = ProcessId::from_index(i);
                total += go(g, need - 1, i + 1, banned | g.adj_bits(v));
            }
            total
        }
        go(self, size, 0, 0)
    }

    /// The maximum independent-set size (exact branch and bound).
    pub fn max_independent_set_size(&self) -> u32 {
        // Binary-search-free simple approach: try decreasing sizes.
        // The decision solver is fast for sizes near n on sparse graphs and
        // fails fast for infeasible large sizes on dense graphs.
        for size in (0..=self.n()).rev() {
            if self.has_independent_set(size) {
                return size;
            }
        }
        0
    }

    fn search(&self, need: u32, from: usize, banned: u128, chosen: &mut u128) -> bool {
        if need == 0 {
            return true;
        }
        let n = self.n() as usize;
        for i in from..n {
            if n - i < need as usize {
                return false; // not enough nodes left
            }
            if banned & (1u128 << i) != 0 {
                continue;
            }
            let v = ProcessId::from_index(i);
            *chosen |= 1u128 << i;
            if self.search(need - 1, i + 1, banned | self.adj_bits(v), chosen) {
                return true;
            }
            *chosen &= !(1u128 << i);
        }
        false
    }
}

fn bits_to_set(bits: u128) -> ProcessSet {
    let mut s = ProcessSet::new();
    let mut rest = bits;
    while rest != 0 {
        let tz = rest.trailing_zeros();
        rest &= rest - 1;
        s.insert(ProcessId(tz + 1));
    }
    s
}

/// Reference implementation: enumerates all `size`-subsets in lexicographic
/// order and returns the first independent one. Exponential — tests only.
pub fn brute_force_first_independent_set(g: &SuspectGraph, size: u32) -> Option<ProcessSet> {
    let n = g.n() as usize;
    let k = size as usize;
    if k > n {
        return None;
    }
    if k == 0 {
        return Some(ProcessSet::new());
    }
    // Standard k-combination enumeration in lexicographic order.
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        let set: ProcessSet = idx.iter().map(|&i| ProcessId::from_index(i)).collect();
        if g.is_independent(&set) {
            return Some(set);
        }
        // Advance to next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return None;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph_first_set_is_prefix() {
        let g = SuspectGraph::new(6);
        let s = g.first_independent_set(4).unwrap();
        assert_eq!(s.iter().map(|p| p.0).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn size_zero_always_exists() {
        let g = SuspectGraph::from_edges(2, &[(1, 2)]);
        assert!(g.has_independent_set(0));
    }

    #[test]
    fn complete_graph_has_only_singletons() {
        let mut g = SuspectGraph::new(4);
        for a in 1..=4u32 {
            for b in a + 1..=4 {
                g.add_edge(ProcessId(a), ProcessId(b));
            }
        }
        assert!(g.has_independent_set(1));
        assert!(!g.has_independent_set(2));
        assert_eq!(g.max_independent_set_size(), 1);
    }

    /// Figure 4 of the paper (reconstruction consistent with the caption):
    /// in epoch 2 the suspect graph has edges (1,2), (2,3), (2,5), (1,5)
    /// re-stamped in the current epoch plus the stale edge (3,4), and no
    /// independent set of size 3 exists.
    #[test]
    fn fig4_epoch2_no_quorum() {
        let g = SuspectGraph::from_edges(5, &[(1, 2), (2, 3), (2, 5), (1, 5), (3, 4)]);
        assert!(!g.has_independent_set(3));
        assert_eq!(g.max_independent_set_size(), 2);
    }

    /// Figure 4, epoch 3: "the edge between p3 and p4 will be removed and
    /// {p1, p3, p4} and {p3, p4, p5} are independent sets". The
    /// lexicographically first is {p1, p3, p4}.
    #[test]
    fn fig4_epoch3_quorum_found() {
        let g = SuspectGraph::from_edges(5, &[(1, 2), (2, 3), (2, 5), (1, 5)]);
        let first: ProcessSet = [1, 3, 4].into_iter().map(ProcessId).collect();
        let second: ProcessSet = [3, 4, 5].into_iter().map(ProcessId).collect();
        assert!(g.is_independent(&first));
        assert!(g.is_independent(&second));
        let s = g.first_independent_set(3).unwrap();
        assert_eq!(s, first);
    }

    #[test]
    fn count_independent_sets_small() {
        // Path 1-2-3: independent sets of size 2: {1,3} only.
        let g = SuspectGraph::from_edges(3, &[(1, 2), (2, 3)]);
        assert_eq!(g.count_independent_sets(2), 1);
        assert_eq!(g.count_independent_sets(1), 3);
        assert_eq!(g.count_independent_sets(0), 1);
        assert_eq!(g.count_independent_sets(3), 0);
    }

    #[test]
    fn solver_matches_brute_force_on_fixed_graphs() {
        let cases: Vec<(u32, Vec<(u32, u32)>)> = vec![
            (5, vec![(1, 2), (2, 3), (3, 4), (4, 5), (5, 1)]), // 5-cycle
            (6, vec![(1, 4), (2, 5), (3, 6)]),                 // perfect matching
            (7, vec![(1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7)]), // star
        ];
        for (n, edges) in cases {
            let g = SuspectGraph::from_edges(n, &edges);
            for size in 0..=n {
                assert_eq!(
                    g.first_independent_set(size),
                    brute_force_first_independent_set(&g, size),
                    "n={n} size={size} edges={edges:?}"
                );
            }
        }
    }

    proptest! {
        /// The backtracking solver agrees with brute-force enumeration on
        /// random graphs (both existence and lexicographic minimality).
        #[test]
        fn prop_solver_matches_brute_force(
            n in 2u32..9,
            edge_bits in proptest::collection::vec(any::<bool>(), 36),
            size in 0u32..9,
        ) {
            let mut g = SuspectGraph::new(n);
            let mut k = 0;
            for a in 1..=n {
                for b in a + 1..=n {
                    if edge_bits[k % edge_bits.len()] {
                        g.add_edge(ProcessId(a), ProcessId(b));
                    }
                    k += 1;
                }
            }
            let size = size.min(n);
            prop_assert_eq!(
                g.first_independent_set(size),
                brute_force_first_independent_set(&g, size)
            );
        }

        /// Any returned set is independent and has the requested size.
        #[test]
        fn prop_returned_set_is_valid(
            n in 2u32..12,
            seed in any::<u64>(),
            size in 1u32..12,
        ) {
            let mut g = SuspectGraph::new(n);
            let mut state = seed;
            for a in 1..=n {
                for b in a + 1..=n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state >> 63 == 1 {
                        g.add_edge(ProcessId(a), ProcessId(b));
                    }
                }
            }
            let size = size.min(n);
            if let Some(s) = g.first_independent_set(size) {
                prop_assert_eq!(s.len() as u32, size);
                prop_assert!(g.is_independent(&s));
            }
        }
    }

    #[test]
    fn degree_pruning_consistent() {
        // A node connected to everything else is pruned for any size ≥ 2,
        // and the result still matches brute force.
        let mut g = SuspectGraph::new(8);
        for b in 2..=8u32 {
            g.add_edge(ProcessId(1), ProcessId(b));
        }
        for size in 0..=8u32 {
            assert_eq!(
                g.first_independent_set(size),
                brute_force_first_independent_set(&g, size)
            );
        }
    }
}
