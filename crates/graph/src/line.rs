//! Line subgraphs for Follower Selection (Section VIII of the paper).
//!
//! **Definition 1.** A *line subgraph* of a simple graph `G` is an acyclic
//! subgraph with maximum degree 2 (a disjoint union of paths, also called a
//! linear forest). A line subgraph `L` designates a leader
//! `l_L = min{ i ∈ Π : δ_L(i) = 0 }` — the smallest node *not covered* by
//! `L`. A *maximal* line subgraph maximizes the leader: for any other line
//! subgraph `F ⊆ G`, `l_F ≤ l_L`.
//!
//! **Definition 2.** A node in a line subgraph is a *possible follower*
//! unless it is connected to two nodes of degree 1 in `L` (in a linear
//! forest these are exactly the middle nodes of 3-node paths).
//!
//! Computing the maximal line subgraph reduces to finding the longest
//! prefix `{p_1, …, p_k}` of the node ordering that can be *covered* (every
//! node given degree ≥ 1) by a linear forest of `G`; the leader is then
//! `p_{k+1}`. Both directions of that equivalence are argued in the module
//! tests and checked against brute force by property tests.

use std::fmt;

use qsel_types::encode::Encode;
use qsel_types::{ProcessId, ProcessSet};

use crate::graph::SuspectGraph;

/// A linear forest over nodes `p_1, …, p_n`: an acyclic subgraph of maximum
/// degree 2 (Definition 1's "line subgraph").
///
/// # Example
///
/// ```
/// use qsel_graph::LinearForest;
/// use qsel_types::ProcessId;
///
/// let mut l = LinearForest::new(5);
/// l.add_edge(ProcessId(1), ProcessId(2)).unwrap();
/// l.add_edge(ProcessId(2), ProcessId(3)).unwrap();
/// assert_eq!(l.leader(), Some(ProcessId(4)));
/// // p2 is the middle of a 3-node path, hence not a possible follower:
/// assert!(!l.possible_followers().contains(ProcessId(2)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct LinearForest {
    n: u32,
    adj: Vec<u128>,
}

/// Error adding an edge that would violate the line-subgraph shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ForestError {
    /// One endpoint already has degree 2.
    DegreeExceeded(ProcessId),
    /// The edge would close a cycle.
    CreatesCycle,
    /// The edge is a self-loop or out of range.
    InvalidEdge,
}

impl fmt::Display for ForestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForestError::DegreeExceeded(p) => write!(f, "node {p} already has degree 2"),
            ForestError::CreatesCycle => write!(f, "edge would create a cycle"),
            ForestError::InvalidEdge => write!(f, "self-loop or out-of-range edge"),
        }
    }
}

impl std::error::Error for ForestError {}

impl LinearForest {
    /// Creates an empty forest on `n` nodes.
    pub fn new(n: u32) -> Self {
        assert!((1..=128).contains(&n), "forest size out of range");
        LinearForest {
            n,
            adj: vec![0; n as usize],
        }
    }

    /// Number of nodes in the universe.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Adds an edge, enforcing the linear-forest shape.
    ///
    /// # Errors
    ///
    /// Returns [`ForestError`] if the edge is invalid, would give an
    /// endpoint degree 3, or would close a cycle. Adding an existing edge
    /// is a no-op `Ok(())`.
    pub fn add_edge(&mut self, a: ProcessId, b: ProcessId) -> Result<(), ForestError> {
        if a == b || a.0 < 1 || b.0 < 1 || a.0 > self.n || b.0 > self.n {
            return Err(ForestError::InvalidEdge);
        }
        if self.has_edge(a, b) {
            return Ok(());
        }
        if self.degree(a) >= 2 {
            return Err(ForestError::DegreeExceeded(a));
        }
        if self.degree(b) >= 2 {
            return Err(ForestError::DegreeExceeded(b));
        }
        if self.connected(a, b) {
            return Err(ForestError::CreatesCycle);
        }
        self.adj[a.index()] |= 1u128 << b.index();
        self.adj[b.index()] |= 1u128 << a.index();
        Ok(())
    }

    /// Removes an edge if present.
    pub fn remove_edge(&mut self, a: ProcessId, b: ProcessId) {
        self.adj[a.index()] &= !(1u128 << b.index());
        self.adj[b.index()] &= !(1u128 << a.index());
    }

    /// Whether the edge `{a, b}` is in the forest.
    pub fn has_edge(&self, a: ProcessId, b: ProcessId) -> bool {
        a.0 >= 1
            && b.0 >= 1
            && a.0 <= self.n
            && b.0 <= self.n
            && self.adj[a.index()] & (1u128 << b.index()) != 0
    }

    /// The degree `δ_L(v)` of a node (0, 1 or 2).
    pub fn degree(&self, v: ProcessId) -> u32 {
        self.adj[v.index()].count_ones()
    }

    /// The edges of the forest, each reported once with `a < b`, sorted.
    pub fn edges(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut out = Vec::new();
        for i in 0..self.n as usize {
            let mut bits = self.adj[i] >> (i + 1) << (i + 1);
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                out.push((ProcessId(i as u32 + 1), ProcessId(tz + 1)));
            }
        }
        out
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|r| r.count_ones() as usize).sum::<usize>() / 2
    }

    /// The nodes the forest *contains* (non-zero degree). The paper says a
    /// line subgraph "contains" a node if the node has non-zero degree
    /// (Section IX).
    pub fn covered_nodes(&self) -> ProcessSet {
        (1..=self.n)
            .map(ProcessId)
            .filter(|&v| self.degree(v) > 0)
            .collect()
    }

    /// The designated leader `l_L = min{ i : δ_L(i) = 0 }` (Definition 1),
    /// or `None` if every node is covered.
    pub fn leader(&self) -> Option<ProcessId> {
        (1..=self.n).map(ProcessId).find(|&v| self.degree(v) == 0)
    }

    /// The possible followers (Definition 2): every node except those
    /// connected to two nodes of degree 1 in `L` — i.e. except the middle
    /// nodes of 3-node paths.
    pub fn possible_followers(&self) -> ProcessSet {
        (1..=self.n)
            .map(ProcessId)
            .filter(|&v| !self.is_excluded_middle(v))
            .collect()
    }

    fn is_excluded_middle(&self, v: ProcessId) -> bool {
        if self.degree(v) != 2 {
            return false;
        }
        self.neighbor_ids(v)
            .into_iter()
            .all(|u| self.degree(u) == 1)
    }

    /// Whether this forest is a subgraph of `g` (`L ⊆ G`, used by the
    /// well-formedness check, Definition 3 b).
    pub fn is_subgraph_of(&self, g: &SuspectGraph) -> bool {
        if g.n() < self.n {
            return false;
        }
        self.edges().iter().all(|&(a, b)| g.has_edge(a, b))
    }

    /// Rebuilds a forest from an edge list, validating the shape.
    ///
    /// # Errors
    ///
    /// Returns the first [`ForestError`] encountered. Use this when
    /// receiving a line subgraph from the network (Definition 3 b requires
    /// "L' is a line subgraph").
    pub fn from_edge_list(
        n: u32,
        edges: &[(ProcessId, ProcessId)],
    ) -> Result<Self, ForestError> {
        let mut l = LinearForest::new(n);
        for &(a, b) in edges {
            l.add_edge(a, b)?;
        }
        Ok(l)
    }

    fn neighbor_ids(&self, v: ProcessId) -> Vec<ProcessId> {
        let mut out = Vec::with_capacity(2);
        let mut bits = self.adj[v.index()];
        while bits != 0 {
            let tz = bits.trailing_zeros();
            bits &= bits - 1;
            out.push(ProcessId(tz + 1));
        }
        out
    }

    /// DFS connectivity inside the forest (used for cycle prevention).
    fn connected(&self, a: ProcessId, b: ProcessId) -> bool {
        let mut seen = 0u128;
        let mut stack = vec![a];
        seen |= 1u128 << a.index();
        while let Some(v) = stack.pop() {
            if v == b {
                return true;
            }
            let mut bits = self.adj[v.index()] & !seen;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                bits &= bits - 1;
                seen |= 1u128 << tz;
                stack.push(ProcessId(tz + 1));
            }
        }
        false
    }
}

impl fmt::Debug for LinearForest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinearForest(n={}, edges=[", self.n)?;
        for (k, (a, b)) in self.edges().into_iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}-{b}")?;
        }
        write!(f, "])")
    }
}

impl Encode for LinearForest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.n.encode(buf);
        self.edges().encode(buf);
    }
}

/// A maximal line subgraph together with its designated leader
/// (Definition 1).
#[derive(Clone, Debug)]
pub struct MaximalLineSubgraph {
    /// The linear forest `L`.
    pub forest: LinearForest,
    /// The leader `l_L`, or `None` when every node of `Π` is covered (in
    /// Algorithm 2 this cannot happen while an independent set of size `q`
    /// exists, by Lemma 8 b; callers treat it like an epoch change).
    pub leader: Option<ProcessId>,
}

impl SuspectGraph {
    /// Computes a maximal line subgraph of this graph (Definition 1): a
    /// linear forest `L ⊆ G` whose leader `l_L` is maximum over all line
    /// subgraphs.
    ///
    /// The implementation finds the longest coverable prefix: the largest
    /// `k` such that some linear forest of `G` gives every node in
    /// `{p_1, …, p_k}` non-zero degree. The returned forest covers that
    /// prefix and the leader is `p_{k+1}`.
    ///
    /// # Example
    ///
    /// ```
    /// use qsel_graph::SuspectGraph;
    /// use qsel_types::ProcessId;
    /// // One suspicion 1-2: the forest {1-2} covers p1 and p2, leader p3.
    /// let g = SuspectGraph::from_edges(4, &[(1, 2)]);
    /// let m = g.maximal_line_subgraph();
    /// assert_eq!(m.leader, Some(ProcessId(3)));
    /// ```
    pub fn maximal_line_subgraph(&self) -> MaximalLineSubgraph {
        let n = self.n();
        // Longest coverable prefix: grow k while {p_1..p_k} is coverable.
        let mut best: Option<LinearForest> = None;
        let mut k = 0;
        while k < n {
            let next = ProcessId(k + 1);
            if self.degree(next) == 0 {
                break; // an isolated node can never be covered
            }
            match self.cover_prefix(k + 1) {
                Some(forest) => {
                    best = Some(forest);
                    k += 1;
                }
                None => break,
            }
        }
        let forest = best.unwrap_or_else(|| LinearForest::new(n));
        let leader = if k < n { Some(ProcessId(k + 1)) } else { None };
        debug_assert_eq!(forest.leader(), leader, "prefix cover left leader uncovered");
        MaximalLineSubgraph { forest, leader }
    }

    /// Backtracking search for a linear forest of `self` covering all of
    /// `{p_1, …, p_k}`.
    fn cover_prefix(&self, k: u32) -> Option<LinearForest> {
        let mut forest = LinearForest::new(self.n());
        if self.cover_rec(k, 1, &mut forest) {
            Some(forest)
        } else {
            None
        }
    }

    fn cover_rec(&self, k: u32, next: u32, forest: &mut LinearForest) -> bool {
        // Find the smallest uncovered target ≥ next.
        let mut t = next;
        while t <= k && forest.degree(ProcessId(t)) > 0 {
            t += 1;
        }
        if t > k {
            return true;
        }
        let target = ProcessId(t);
        for u in self.neighbors(target).iter() {
            if forest.add_edge(target, u).is_ok() {
                if self.cover_rec(k, t + 1, forest) {
                    return true;
                }
                forest.remove_edge(target, u);
            }
        }
        false
    }
}

/// Reference implementation for tests: enumerates all subsets of `g`'s
/// edges, keeps the line subgraphs, and returns the maximum achievable
/// leader (`None` when some subgraph covers everything). Exponential.
pub fn brute_force_max_leader(g: &SuspectGraph) -> Option<ProcessId> {
    let edges: Vec<(ProcessId, ProcessId)> = g.edges().collect();
    assert!(edges.len() <= 20, "brute force limited to 20 edges");
    let mut best: Option<ProcessId> = Some(ProcessId(1));
    for mask in 0u32..(1 << edges.len()) {
        let mut forest = LinearForest::new(g.n());
        let mut ok = true;
        for (i, &(a, b)) in edges.iter().enumerate() {
            if mask & (1 << i) != 0 && forest.add_edge(a, b).is_err() {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        match forest.leader() {
            None => return None, // covered everything: unbounded leader
            Some(l) => {
                if best.is_none_or(|b| l > b) {
                    best = Some(l);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph_leader_is_p1() {
        let g = SuspectGraph::new(5);
        let m = g.maximal_line_subgraph();
        assert_eq!(m.leader, Some(ProcessId(1)));
        assert_eq!(m.forest.edge_count(), 0);
    }

    #[test]
    fn forest_shape_enforced() {
        let mut l = LinearForest::new(4);
        l.add_edge(ProcessId(1), ProcessId(2)).unwrap();
        l.add_edge(ProcessId(2), ProcessId(3)).unwrap();
        // Degree 3 at p2:
        assert_eq!(
            l.add_edge(ProcessId(2), ProcessId(4)),
            Err(ForestError::DegreeExceeded(ProcessId(2)))
        );
        // Cycle 1-2-3-1:
        assert_eq!(
            l.add_edge(ProcessId(3), ProcessId(1)),
            Err(ForestError::CreatesCycle)
        );
        // Self loop:
        assert_eq!(
            l.add_edge(ProcessId(1), ProcessId(1)),
            Err(ForestError::InvalidEdge)
        );
        // Re-adding an existing edge is fine:
        assert!(l.add_edge(ProcessId(1), ProcessId(2)).is_ok());
    }

    #[test]
    fn leader_skips_covered_prefix() {
        let mut l = LinearForest::new(5);
        l.add_edge(ProcessId(1), ProcessId(2)).unwrap();
        assert_eq!(l.leader(), Some(ProcessId(3)));
        l.add_edge(ProcessId(3), ProcessId(4)).unwrap();
        assert_eq!(l.leader(), Some(ProcessId(5)));
        l.add_edge(ProcessId(4), ProcessId(5)).unwrap();
        assert_eq!(l.leader(), None);
    }

    #[test]
    fn possible_followers_exclude_three_path_middles() {
        // Path 1-2-3 plus path 4-5-6-7: only p2 (middle of the 3-path) is
        // excluded; interior nodes of the 4-path have a degree-2 neighbour.
        let mut l = LinearForest::new(7);
        l.add_edge(ProcessId(1), ProcessId(2)).unwrap();
        l.add_edge(ProcessId(2), ProcessId(3)).unwrap();
        l.add_edge(ProcessId(4), ProcessId(5)).unwrap();
        l.add_edge(ProcessId(5), ProcessId(6)).unwrap();
        l.add_edge(ProcessId(6), ProcessId(7)).unwrap();
        let pf = l.possible_followers();
        assert!(!pf.contains(ProcessId(2)));
        for p in [1, 3, 4, 5, 6, 7] {
            assert!(pf.contains(ProcessId(p)), "p{p}");
        }
    }

    #[test]
    fn single_edge_followers() {
        // A single edge: both endpoints possible followers.
        let mut l = LinearForest::new(3);
        l.add_edge(ProcessId(1), ProcessId(2)).unwrap();
        assert_eq!(l.possible_followers().len(), 3);
    }

    /// Example 1 of the paper (reconstruction): a graph on 7 nodes whose
    /// maximal line subgraph is the path 1-2-3 plus an edge covering 4, so
    /// that p2 is not a possible follower, and a new edge (p2, p5) would
    /// not change the maximal line subgraph.
    #[test]
    fn example1_reconstruction() {
        // Edges: 1-2, 2-3, 4-5. Maximal L = {1-2, 2-3, 4-5}: covers 1..5,
        // leader p6.
        let g = SuspectGraph::from_edges(7, &[(1, 2), (2, 3), (4, 5)]);
        let m = g.maximal_line_subgraph();
        assert_eq!(m.leader, Some(ProcessId(6)));
        assert!(!m.forest.possible_followers().contains(ProcessId(2)));
        // Adding (2,5) cannot improve the leader: p2 already has degree 2.
        let g2 = SuspectGraph::from_edges(7, &[(1, 2), (2, 3), (4, 5), (2, 5)]);
        let m2 = g2.maximal_line_subgraph();
        assert_eq!(m2.leader, Some(ProcessId(6)));
    }

    /// Example 2 of the paper: adding an edge changes the leader and the
    /// maximal line subgraph, and a line subgraph can be maximal even
    /// though it could be extended by additional edges (maximality is about
    /// the leader, not edge count).
    #[test]
    fn example2_leader_changes_with_new_edge() {
        // Before: edges 1-2, 3-4. L = {1-2, 3-4} covers 1..4, leader p5.
        let g = SuspectGraph::from_edges(6, &[(1, 2), (3, 4)]);
        assert_eq!(g.maximal_line_subgraph().leader, Some(ProcessId(5)));
        // After adding (3,5): L = {1-2, 4-3, 3-5} covers 1..5, leader p6.
        let g2 = SuspectGraph::from_edges(6, &[(1, 2), (3, 4), (3, 5)]);
        assert_eq!(g2.maximal_line_subgraph().leader, Some(ProcessId(6)));
    }

    #[test]
    fn leader_monotone_under_edge_addition() {
        let mut g = SuspectGraph::from_edges(8, &[(1, 2)]);
        let mut last = g.maximal_line_subgraph().leader.unwrap();
        for (a, b) in [(2, 3), (3, 4), (1, 5), (5, 6), (4, 7)] {
            g.add_edge(ProcessId(a), ProcessId(b));
            let now = g.maximal_line_subgraph().leader;
            match now {
                Some(now) => {
                    assert!(now >= last, "leader regressed from {last} to {now}");
                    last = now;
                }
                None => break,
            }
        }
    }

    #[test]
    fn isolated_node_caps_leader() {
        // p1 isolated: leader stays p1 regardless of other edges.
        let g = SuspectGraph::from_edges(5, &[(2, 3), (4, 5)]);
        assert_eq!(g.maximal_line_subgraph().leader, Some(ProcessId(1)));
    }

    #[test]
    fn solver_matches_brute_force_fixed() {
        let cases: Vec<(u32, Vec<(u32, u32)>)> = vec![
            (5, vec![(1, 2), (2, 3), (3, 4), (4, 5)]),
            (5, vec![(1, 2), (1, 3), (1, 4), (1, 5)]), // star: cover 1,2 only
            (6, vec![(1, 2), (2, 3), (3, 1)]),         // triangle
            (6, vec![(1, 4), (2, 4), (3, 4)]),
            (7, vec![(1, 2), (2, 3), (4, 5), (5, 6), (6, 7), (3, 4)]),
        ];
        for (n, edges) in cases {
            let g = SuspectGraph::from_edges(n, &edges);
            let got = g.maximal_line_subgraph().leader;
            let want = brute_force_max_leader(&g);
            assert_eq!(got, want, "n={n} edges={edges:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_solver_matches_brute_force(n in 2u32..8, seed in any::<u64>()) {
            let mut g = SuspectGraph::new(n);
            let mut state = seed | 1;
            for a in 1..=n {
                for b in a + 1..=n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if state >> 62 == 1 {
                        g.add_edge(ProcessId(a), ProcessId(b));
                    }
                }
            }
            if g.edge_count() <= 20 {
                prop_assert_eq!(g.maximal_line_subgraph().leader, brute_force_max_leader(&g));
            }
        }

        /// The returned forest is a valid line subgraph of G whose own
        /// leader equals the reported leader.
        #[test]
        fn prop_result_is_consistent(n in 2u32..10, seed in any::<u64>()) {
            let mut g = SuspectGraph::new(n);
            let mut state = seed | 1;
            for a in 1..=n {
                for b in a + 1..=n {
                    state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                    if state >> 62 == 0 {
                        g.add_edge(ProcessId(a), ProcessId(b));
                    }
                }
            }
            let m = g.maximal_line_subgraph();
            prop_assert!(m.forest.is_subgraph_of(&g));
            prop_assert_eq!(m.forest.leader(), m.leader);
        }
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = SuspectGraph::from_edges(6, &[(1, 2), (2, 3), (4, 5)]);
        let m = g.maximal_line_subgraph();
        let rebuilt = LinearForest::from_edge_list(6, &m.forest.edges()).unwrap();
        assert_eq!(rebuilt, m.forest);
    }

    #[test]
    fn from_edge_list_rejects_bad_shapes() {
        let bad = [
            (ProcessId(1), ProcessId(2)),
            (ProcessId(2), ProcessId(3)),
            (ProcessId(3), ProcessId(1)),
        ];
        assert_eq!(
            LinearForest::from_edge_list(4, &bad),
            Err(ForestError::CreatesCycle)
        );
    }
}
