//! Property tests for the Follower Selection graph machinery: the
//! `selectFollowers` feasibility invariant and Lemma 8.

use proptest::prelude::*;
use qsel_graph::SuspectGraph;
use qsel_types::ProcessId;

fn random_graph(n: u32, seed: u64, density_shift: u32) -> SuspectGraph {
    let mut g = SuspectGraph::new(n);
    let mut state = seed | 1;
    for a in 1..=n {
        for b in a + 1..=n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state >> (64 - density_shift) == 0 {
                g.add_edge(ProcessId(a), ProcessId(b));
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whenever the suspect graph admits an independent set of size
    /// `q = n − f` and `n > 3f`, the maximal line subgraph offers at least
    /// `q − 1` possible followers besides the leader — so Algorithm 2's
    /// `selectFollowers` never gets stuck. (Used as an `assert!` inside
    /// `qsel::FollowerSelection`; proven in its doc comment.)
    #[test]
    fn enough_possible_followers(f in 1u32..4, seed in any::<u64>(), density in 1u32..4) {
        let n = 3 * f + 1;
        let q = n - f;
        let g = random_graph(n, seed, density);
        prop_assume!(g.has_independent_set(q));
        let m = g.maximal_line_subgraph();
        let Some(leader) = m.leader else {
            // Lemma 8 b: a line subgraph covering all nodes excludes an
            // independent set of size q — contradiction with the assume.
            return Err(TestCaseError::fail("leaderless despite IS"));
        };
        let possible = m.forest.possible_followers();
        let available = possible.iter().filter(|p| *p != leader).count();
        prop_assert!(
            available >= (q - 1) as usize,
            "only {available} possible followers (need {}), graph {g:?}",
            q - 1
        );
    }

    /// Lemma 8 b: if some line subgraph of G contains 3f + 1 nodes, G has
    /// no independent set of size q. We check the contrapositive on the
    /// *maximal* line subgraph: when an IS of size q exists, every line
    /// subgraph covers at most 3f nodes.
    #[test]
    fn lemma8b_contrapositive(f in 1u32..4, seed in any::<u64>(), density in 1u32..5) {
        let n = 3 * f + 1;
        let q = n - f;
        let g = random_graph(n, seed, density);
        prop_assume!(g.has_independent_set(q));
        let m = g.maximal_line_subgraph();
        prop_assert!(
            m.forest.covered_nodes().len() <= (3 * f) as usize,
            "line subgraph covers {} > 3f nodes while an IS of size q exists",
            m.forest.covered_nodes().len()
        );
    }

}

proptest! {
    // The 3f-node precondition is rare in random graphs: allow many
    // rejects and settle for fewer (but still meaningful) cases.
    #![proptest_config(ProptestConfig {
        cases: 32,
        max_global_rejects: 65_536,
        ..ProptestConfig::default()
    })]

    /// Lemma 8 a (uniqueness direction): when the maximal line subgraph
    /// contains exactly 3f nodes and an IS of size q exists, that IS is
    /// unique and equals {leader} ∪ possible followers.
    #[test]
    fn lemma8a_unique_is(f in 1u32..3, seed in any::<u64>()) {
        let n = 3 * f + 1;
        let q = n - f;
        let g = random_graph(n, seed, 2);
        prop_assume!(g.has_independent_set(q));
        let m = g.maximal_line_subgraph();
        prop_assume!(m.forest.covered_nodes().len() == (3 * f) as usize);
        prop_assert_eq!(g.count_independent_sets(q), 1, "IS not unique");
        let is = g.first_independent_set(q).expect("assumed");
        let leader = m.leader.expect("3f < n nodes covered leaves a leader");
        prop_assert!(is.contains(leader), "leader not in the unique IS");
        for p in is.iter() {
            if p != leader {
                prop_assert!(
                    m.forest.possible_followers().contains(p),
                    "IS member {p} is not a possible follower"
                );
            }
        }
    }
}
