//! Criterion benchmark for the failure detector's hot paths (experiment
//! E9 companion): expectation issue/match throughput and poll cost.

use criterion::{criterion_group, criterion_main, Criterion};
use qsel_detector::{FailureDetector, FdConfig};
use qsel_simnet::{SimDuration, SimTime};
use qsel_types::ProcessId;

fn bench_expect_match(c: &mut Criterion) {
    c.bench_function("fd_expect_then_match", |b| {
        b.iter(|| {
            let mut fd: FailureDetector<u64> =
                FailureDetector::new(ProcessId(1), 16, FdConfig::default());
            let t = SimTime::ZERO;
            for round in 0..32u64 {
                for p in 2..=16u32 {
                    fd.expect(t, ProcessId(p), "m", move |m| *m == round);
                }
                for p in 2..=16u32 {
                    let out = fd.on_receive(t, ProcessId(p), round);
                    std::hint::black_box(out.len());
                }
            }
            std::hint::black_box(fd.stats())
        })
    });
}

fn bench_poll_with_backlog(c: &mut Criterion) {
    c.bench_function("fd_poll_100_pending", |b| {
        b.iter(|| {
            let mut fd: FailureDetector<u64> =
                FailureDetector::new(ProcessId(1), 16, FdConfig::default());
            let t0 = SimTime::ZERO;
            for i in 0..100u64 {
                fd.expect(t0, ProcessId((i % 15) as u32 + 2), "m", move |m| *m == i);
            }
            let out = fd.poll(t0 + SimDuration::secs(1));
            std::hint::black_box(out.len())
        })
    });
}

criterion_group!(benches, bench_expect_match, bench_poll_with_backlog);
criterion_main!(benches);
