//! Criterion benchmark for experiment E7: time to exclude a Byzantine
//! culprit — quorum-selection cluster vs the enumeration baseline's
//! combinatorial walk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsel_adversary::cluster::QsCluster;
use qsel_adversary::game::RoundRobinEnumeration;
use qsel_types::{ClusterConfig, ProcessId};

fn bench_selection_exclusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclude_culprit_selection");
    group.sample_size(20);
    for f in [1u32, 2, 3] {
        let n = 3 * f + 1;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(format!("f{f}")), &f, |b, _| {
            b.iter(|| {
                let mut cluster = QsCluster::new(cfg, 3);
                let culprit = ProcessId(1);
                let mut changes = 0u64;
                loop {
                    let q = cluster.agreed_quorum().expect("agreement");
                    if !q.contains(culprit) {
                        break;
                    }
                    let victim = q.iter().find(|p| *p != culprit).expect("non-culprit");
                    cluster.cause_suspicion(victim, culprit);
                    changes += 1;
                }
                std::hint::black_box(changes)
            })
        });
    }
    group.finish();
}

fn bench_enumeration_exclusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("exclude_culprit_enumeration");
    for f in [1u32, 2, 3] {
        let n = 3 * f + 1;
        let q = n - f;
        group.bench_with_input(BenchmarkId::from_parameter(format!("f{f}")), &f, |b, _| {
            b.iter(|| {
                std::hint::black_box(RoundRobinEnumeration::changes_until_excluding(
                    n,
                    q,
                    ProcessId(1),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection_exclusion, bench_enumeration_exclusion);
criterion_main!(benches);
