//! Criterion benchmark for experiment E6: a full leader-attack round
//! against a Follower Selection cluster (suspicion + propagation +
//! FOLLOWERS exchange until agreement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsel_adversary::cluster::FsCluster;
use qsel_types::ClusterConfig;

fn bench_leader_attack(c: &mut Criterion) {
    let mut group = c.benchmark_group("fs_leader_attack_campaign");
    group.sample_size(20);
    for f in [1u32, 2, 3] {
        let n = 3 * f + 1;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(format!("f{f}")), &f, |b, _| {
            b.iter(|| {
                let mut cluster = FsCluster::new(cfg, 9);
                for _ in 0..(3 * f + 1) {
                    let Some(lq) = cluster.agreed_quorum() else { break };
                    let Some(s) = lq.followers().iter().next() else { break };
                    cluster.cause_suspicion(s, lq.leader());
                }
                std::hint::black_box(cluster.agreed_epoch())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_leader_attack);
criterion_main!(benches);
