//! Criterion benchmark for experiment E1/E12 companion: the XPaxos
//! normal-case pipeline — simulated wall-clock per committed operation in
//! a fault-free cluster, for both cluster shapes the paper discusses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsel_simnet::SimTime;
use qsel_types::ClusterConfig;
use qsel_xpaxos::harness::{total_committed, ClusterBuilder};

fn bench_normal_case(c: &mut Criterion) {
    let mut group = c.benchmark_group("xpaxos_normal_case_20ops");
    group.sample_size(10);
    for f in [1u32, 2] {
        let n = 3 * f + 1;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        group.bench_with_input(BenchmarkId::from_parameter(format!("f{f}")), &cfg, |b, &cfg| {
            b.iter(|| {
                let mut sim = ClusterBuilder::new(cfg, 8).clients(1, 20).build();
                sim.run_until(SimTime::from_micros(2_000_000));
                assert_eq!(total_committed(&sim), 20);
                std::hint::black_box(sim.stats().messages_sent)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normal_case);
criterion_main!(benches);
