//! Criterion benchmarks for the suspect-graph solvers.
//!
//! The paper argues (§VI-C) that although independent set is NP-hard, the
//! graphs Quorum Selection meets ("only tenth of nodes") make exact search
//! cheap. This bench quantifies that: lexicographically-first independent
//! set and maximal line subgraph on accurate-epoch-shaped graphs
//! (suspicion edges all incident to ≤ f faulty nodes) across cluster
//! sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsel_graph::SuspectGraph;
use qsel_types::ProcessId;

/// An accurate-epoch suspect graph: f faulty nodes, each suspected by /
/// suspecting a spread of correct nodes (edges all touch a faulty node).
fn accurate_graph(n: u32, f: u32) -> SuspectGraph {
    let mut g = SuspectGraph::new(n);
    for b in 1..=f {
        // Each faulty node p_b gets edges to a few correct ones.
        for k in 0..3u32 {
            let peer = f + 1 + ((b * 7 + k * 11) % (n - f));
            if peer != b {
                g.add_edge(ProcessId(b), ProcessId(peer));
            }
        }
    }
    g
}

fn bench_independent_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("first_independent_set");
    for f in [1u32, 2, 4, 8, 16] {
        let n = 3 * f + 1;
        let g = accurate_graph(n, f);
        let q = n - f;
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_f{f}")), &g, |b, g| {
            b.iter(|| {
                let s = g.first_independent_set(q).expect("accurate graph has an IS");
                std::hint::black_box(s)
            })
        });
    }
    group.finish();
}

fn bench_line_subgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("maximal_line_subgraph");
    for f in [1u32, 2, 4, 8] {
        let n = 3 * f + 1;
        let g = accurate_graph(n, f);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_f{f}")), &g, |b, g| {
            b.iter(|| std::hint::black_box(g.maximal_line_subgraph()))
        });
    }
    group.finish();
}

fn bench_vertex_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_vertex_cover");
    for f in [1u32, 2, 4] {
        let n = 3 * f + 1;
        let g = accurate_graph(n, f);
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}_f{f}")), &g, |b, g| {
            b.iter(|| std::hint::black_box(g.min_vertex_cover()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_independent_set,
    bench_line_subgraph,
    bench_vertex_cover
);
criterion_main!(benches);
