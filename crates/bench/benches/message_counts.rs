//! Criterion benchmark for experiment E8: full simulated workloads for the
//! message-count comparison (PBFT all vs active quorum).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsel_pbft::{run_workload, Participation};
use qsel_types::ClusterConfig;

fn bench_pbft_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft_workload_20ops");
    group.sample_size(10);
    for (label, participation) in [
        ("all", Participation::All),
        ("active_quorum", Participation::ActiveQuorum),
    ] {
        for f in [1u32, 2] {
            let n = 3 * f + 1;
            let cfg = ClusterConfig::new(n, f).expect("valid config");
            group.bench_with_input(
                BenchmarkId::new(label, format!("f{f}")),
                &cfg,
                |b, &cfg| {
                    b.iter(|| {
                        let r = run_workload(cfg, participation, 20, 5);
                        assert_eq!(r.committed, 20);
                        std::hint::black_box(r.inter_replica_messages)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pbft_workloads);
criterion_main!(benches);
