//! Criterion benchmark for experiment E4/E5: the adversary games of
//! Theorems 3 and 4 (optimal DP for small f, greedy beyond).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsel_adversary::game::{greedy_adversary, max_interruptions, LexFirstIs};

fn bench_optimal_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_adversary_dp");
    group.sample_size(10);
    for f in 1..=3u32 {
        let n = 3 * f + 1;
        let q = n - f;
        group.bench_with_input(BenchmarkId::from_parameter(format!("f{f}")), &f, |b, &f| {
            b.iter(|| {
                let r = max_interruptions(&LexFirstIs::new(n, q), n, f);
                std::hint::black_box(r.changes)
            })
        });
    }
    group.finish();
}

fn bench_greedy_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_adversary");
    for f in [1u32, 2, 4, 8] {
        let n = 3 * f + 1;
        let q = n - f;
        group.bench_with_input(BenchmarkId::from_parameter(format!("f{f}")), &f, |b, &f| {
            b.iter(|| {
                let mut algo = LexFirstIs::new(n, q);
                let r = greedy_adversary(&mut algo, n, f);
                std::hint::black_box(r.changes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_optimal_game, bench_greedy_game);
criterion_main!(benches);
