//! Experiment harness shared by the `exp-*` binaries and Criterion benches.
//!
//! Each binary regenerates one experiment from `EXPERIMENTS.md` (which maps
//! them to the paper's claims) and prints a markdown table to stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// A simple aligned markdown table printer.
///
/// # Example
///
/// ```
/// use qsel_bench::Table;
/// let mut t = Table::new(vec!["f", "measured", "bound"]);
/// t.row(vec!["1".into(), "2".into(), "2".into()]);
/// let s = t.render();
/// assert!(s.contains("| f | measured | bound |"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Convenience: appends a row of displayable values.
    pub fn drow<D: Display>(&mut self, cells: Vec<D>) {
        self.row(cells.into_iter().map(|c| c.to_string()).collect());
    }

    /// Renders the table as markdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str("| ");
            out.push_str(&r.join(" | "));
            out.push_str(" |\n");
        }
        out
    }

    /// Prints the table with a title line.
    pub fn print(&self, title: &str) {
        println!("\n## {title}\n");
        println!("{}", self.render());
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(part: f64, whole: f64) -> String {
    if whole == 0.0 {
        "n/a".to_owned()
    } else {
        format!("{:.1}%", 100.0 * part / whole)
    }
}

/// The binomial coefficient (re-exported convenience).
pub fn binomial(n: u64, k: u64) -> u128 {
    qsel_adversary::game::binomial(n, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let mut t = Table::new(vec!["a", "b"]);
        t.drow(vec![1, 2]);
        t.drow(vec![3, 4]);
        let s = t.render();
        assert!(s.contains("| 1 | 2 |"));
        assert!(s.contains("| 3 | 4 |"));
        assert!(s.starts_with("| a | b |"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_validates_columns() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(1.0, 2.0), "50.0%");
        assert_eq!(pct(1.0, 0.0), "n/a");
    }
}
