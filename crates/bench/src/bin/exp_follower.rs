//! Experiment E6 — Theorem 9 and Corollary 10 (Follower Selection).
//!
//! An adversary keeps attacking whoever leads: every time the cluster
//! agrees on a leader quorum, a quorum member raises a suspicion against
//! the leader (one faulty process can always cause this while it sits in
//! the quorum, and a faulty leader can be suspected by anyone). Theorem 9
//! bounds the quorums issued per epoch by `3f + 1`; Corollary 10 bounds
//! the total after stabilization by `6f + 2`.

#![forbid(unsafe_code)]

use qsel_adversary::cluster::FsCluster;
use qsel_bench::Table;
use qsel_types::{ClusterConfig, ProcessId};

fn main() {
    let mut table = Table::new(vec![
        "f",
        "n",
        "attack rounds",
        "max quorums in one epoch",
        "Thm9 bound 3f+1",
        "max over 2 consecutive epochs",
        "Cor10 bound 6f+2",
        "final epoch",
    ]);
    for f in 1..=5u32 {
        let n = 3 * f + 1;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        let mut cluster = FsCluster::new(cfg, 1234 + u64::from(f));
        let mut rounds = 0u32;
        // Attack until the adversary runs out of productive suspicions or
        // a generous cap is reached.
        for _ in 0..(12 * f + 12) {
            let Some(lq) = cluster.agreed_quorum() else { break };
            let leader = lq.leader();
            let Some(suspecter) = lq.followers().iter().next() else {
                break;
            };
            cluster.cause_suspicion(suspecter, leader);
            rounds += 1;
        }
        let observer = ProcessId(n);
        let stats = cluster.module(observer).stats();
        let max_epoch = stats.max_quorums_in_one_epoch();
        // Corollary 10 budgets the two epochs spanning the stabilization
        // point: measure the worst sum over consecutive epochs.
        let per: Vec<u64> = stats.quorums_per_epoch.values().copied().collect();
        let max_pair = per
            .windows(2)
            .map(|w| w[0] + w[1])
            .max()
            .unwrap_or_else(|| per.first().copied().unwrap_or(0));
        table.row(vec![
            f.to_string(),
            n.to_string(),
            rounds.to_string(),
            max_epoch.to_string(),
            (3 * f + 1).to_string(),
            max_pair.to_string(),
            (6 * f + 2).to_string(),
            cluster
                .agreed_epoch()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
        assert!(
            max_epoch <= (3 * f + 1) as u64,
            "Theorem 9 violated at f={f}: {max_epoch}"
        );
        assert!(
            max_pair <= (6 * f + 2) as u64,
            "Corollary 10 violated at f={f}: {max_pair}"
        );
    }
    table.print("E6: Follower Selection interruption bounds (Theorems 9, Corollary 10)");
    println!(
        "Reading: per-epoch quorum counts stay within 3f+1; the leader-attack \
         game exhausts after O(f) productive suspicions per epoch."
    );
}
