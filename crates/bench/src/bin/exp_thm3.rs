//! Experiment E4 — Theorem 3 and the paper's simulation claim.
//!
//! "The proof of Theorem 3 establishes that at most f×(f+1) quorums are
//! issued in one epoch. This is only an upper bound. Our simulations
//! suggest that Algorithm 1 actually allows at most C(f+2, 2) quorums in
//! one epoch."
//!
//! This binary re-runs that simulation: an optimal (exact DP, f ≤ 4) and a
//! greedy adversary drive Algorithm 1's quorum rule for one epoch; we
//! report the measured maximum number of quorum changes, the f(f+1) upper
//! bound and the conjectured C(f+2,2) − 1 (changes, i.e. C(f+2,2) proposed
//! quorums counting the initial one). The same greedy adversary is also
//! run against the *full* Algorithm 1 cluster (real modules, instant
//! propagation) to confirm the abstract game matches the protocol.

#![forbid(unsafe_code)]

use qsel_adversary::cluster::ClusterUnderAttack;
use qsel_adversary::game::{binomial, greedy_adversary, max_interruptions, LexFirstIs};
use qsel_bench::Table;
use qsel_types::ClusterConfig;

fn main() {
    let mut table = Table::new(vec![
        "f",
        "n",
        "optimal changes (DP)",
        "greedy changes",
        "full-cluster greedy",
        "conjecture C(f+2,2)-1",
        "Thm3 bound f(f+1)",
    ]);
    for f in 1..=6u32 {
        let n = 3 * f + 1;
        let q = n - f;
        let optimal = if f <= 4 {
            max_interruptions(&LexFirstIs::new(n, q), n, f)
                .changes
                .to_string()
        } else {
            "— (f > 4)".to_owned()
        };
        let mut greedy_algo = LexFirstIs::new(n, q);
        let greedy = greedy_adversary(&mut greedy_algo, n, f).changes;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        let mut cluster = ClusterUnderAttack::new(cfg, 42);
        let _ = greedy_adversary(&mut cluster, n, f);
        let full = cluster.observer_issued();
        let conjecture = binomial((f + 2) as u64, 2) - 1;
        let bound = f * (f + 1);
        table.row(vec![
            f.to_string(),
            n.to_string(),
            optimal,
            greedy.to_string(),
            full.to_string(),
            conjecture.to_string(),
            bound.to_string(),
        ]);
    }
    table.print("E4: quorum changes per epoch of Algorithm 1 under an optimal adversary");
    println!(
        "Reading: measured ≤ conjecture ≤ bound everywhere; the DP optimum \
         matches the paper's conjectured C(f+2,2) proposed quorums."
    );
}
