//! Experiment E-TRACE-OVH — cost of the tracing instrumentation.
//!
//! The `qsel-obs` sink is wired through every layer of the stack but must
//! be free when nobody is listening: `TraceSink::emit` takes the event as
//! a closure and returns before constructing it whenever the sink is
//! disabled (the default). This experiment measures both sides of that
//! contract on a fixed closed-loop workload (4 replicas, f = 1, 2 clients
//! committing 60 ops each under a healthy network):
//!
//! * wall time of the workload with the sink **disabled** vs. with an
//!   **unbounded** recording sink (the cost of actually collecting the
//!   trace), interleaved A/B to cancel clock drift;
//! * a microbenchmark of the disabled `emit` path itself, scaled by the
//!   number of events the traced run records, giving an upper estimate of
//!   what the instrumentation adds to an untraced run.
//!
//! Writes `BENCH_trace_overhead.json` (to the first CLI argument, default
//! the current directory) and exits non-zero if the estimated untraced
//! overhead reaches 2% — the regression budget the roadmap grants the
//! observability layer.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Instant;

use qsel_bench::Table;
use qsel_obs::{TraceEvent, TraceSink};
use qsel_types::ClusterConfig;
use qsel_xpaxos::harness::{total_committed, ClusterBuilder};
use qsel_simnet::SimTime;

const SEED: u64 = 9;
const CLIENTS: u32 = 2;
const OPS_PER_CLIENT: u64 = 60;
/// Simulated-time budget per run; the workload finishes well inside it.
const DEADLINE_MICROS: u64 = 30_000_000;
/// A/B pairs measured (after one warm-up pair).
const PAIRS: u32 = 12;

/// Runs the workload once and returns (wall µs, events recorded).
fn run_once(sink: TraceSink) -> (f64, u64) {
    let cfg = ClusterConfig::new(4, 1).unwrap();
    let mut sim = ClusterBuilder::new(cfg, SEED)
        .clients(CLIENTS, OPS_PER_CLIENT)
        .trace_sink(sink.clone())
        .build();
    let expected = u64::from(CLIENTS) * OPS_PER_CLIENT;
    let start = Instant::now();
    let mut next = 0u64;
    while total_committed(&sim) < expected && next < DEADLINE_MICROS {
        next = (next + 500_000).min(DEADLINE_MICROS);
        sim.run_until(SimTime::from_micros(next));
    }
    let wall = start.elapsed().as_nanos() as f64 / 1_000.0;
    assert_eq!(
        total_committed(&sim),
        expected,
        "workload must finish inside the deadline"
    );
    (wall, sink.len() as u64)
}

/// Nanoseconds per `emit` call on a disabled sink.
fn disabled_emit_ns() -> f64 {
    let sink = TraceSink::disabled();
    let reps: u64 = 20_000_000;
    let start = Instant::now();
    for i in 0..reps {
        sink.emit(|| TraceEvent::Decided {
            p: (i % 4) as u32 + 1,
            slot: i,
        });
        std::hint::black_box(&sink);
    }
    start.elapsed().as_nanos() as f64 / reps as f64
}

fn main() {
    let out_dir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".to_string()));
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    // Warm-up pair (page cache, allocator), then interleaved measurement.
    let _ = run_once(TraceSink::disabled());
    let _ = run_once(TraceSink::unbounded());
    let mut untraced = Vec::new();
    let mut traced = Vec::new();
    let mut events = 0u64;
    for _ in 0..PAIRS {
        untraced.push(run_once(TraceSink::disabled()).0);
        let (wall, n) = run_once(TraceSink::unbounded());
        traced.push(wall);
        events = n;
    }
    let min = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let (u_min, t_min) = (min(&untraced), min(&traced));
    let (u_mean, t_mean) = (mean(&untraced), mean(&traced));
    let recording_pct = (t_min - u_min) / u_min * 100.0;

    // The disabled path's cost, were it magically removable: per-emit cost
    // of a disabled sink times the number of emission sites the traced run
    // actually hit. This bounds the instrumentation tax on untraced runs.
    let emit_ns = disabled_emit_ns();
    let untraced_pct = (events as f64 * emit_ns / 1_000.0) / u_min * 100.0;
    let pass = untraced_pct < 2.0;

    let mut t = Table::new(vec!["variant", "min µs/run", "mean µs/run"]);
    t.drow(vec![
        "untraced (disabled sink)".to_string(),
        format!("{u_min:.0}"),
        format!("{u_mean:.0}"),
    ]);
    t.drow(vec![
        "traced (unbounded sink)".to_string(),
        format!("{t_min:.0}"),
        format!("{t_mean:.0}"),
    ]);
    t.print("E-TRACE-OVH — tracing overhead");
    println!("events per traced run:        {events}");
    println!("recording overhead:           {recording_pct:.2}%");
    println!("disabled emit:                {emit_ns:.2} ns/call");
    println!("est. untraced instrumentation: {untraced_pct:.4}%  (budget 2%)");

    let json = format!(
        "{{\n  \"workload\": \"n=4 f=1 clients={CLIENTS} ops={OPS_PER_CLIENT} seed={SEED}\",\n  \
         \"pairs\": {PAIRS},\n  \
         \"untraced_min_us\": {u_min:.1},\n  \
         \"untraced_mean_us\": {u_mean:.1},\n  \
         \"traced_min_us\": {t_min:.1},\n  \
         \"traced_mean_us\": {t_mean:.1},\n  \
         \"events_per_traced_run\": {events},\n  \
         \"recording_overhead_pct\": {recording_pct:.3},\n  \
         \"disabled_emit_ns\": {emit_ns:.3},\n  \
         \"untraced_overhead_pct\": {untraced_pct:.5},\n  \
         \"budget_pct\": 2.0,\n  \
         \"pass\": {pass}\n}}\n"
    );
    let path = out_dir.join("BENCH_trace_overhead.json");
    std::fs::write(&path, json).expect("cannot write benchmark JSON");
    println!("wrote {}", path.display());
    if !pass {
        eprintln!("untraced instrumentation overhead exceeds the 2% budget");
        std::process::exit(1);
    }
}
