//! Experiment E7 — Quorum changes to exclude a Byzantine process:
//! XPaxos enumeration baseline vs Quorum Selection vs Follower Selection.
//!
//! The paper (§I, §V-B): "XPaxos … enumerates all possible quorums and
//! tries them one after the other. Thus, even without false suspicions, an
//! attacker may cause the quorum to change repeatedly over a long period,
//! i.e. exponentially in the number of processes. In contrast … our
//! solution ensures that faulty processes may cause at most O(n²) many
//! quorum changes."
//!
//! Scenario: process `p_1` is Byzantine and misbehaves (causes one
//! suspicion) whenever it sits in the active quorum. We count quorum
//! changes until the system settles on a quorum excluding it.

#![forbid(unsafe_code)]

use qsel_adversary::cluster::{FsCluster, QsCluster};
use qsel_adversary::game::RoundRobinEnumeration;
use qsel_bench::{binomial, Table};
use qsel_types::{ClusterConfig, ProcessId};

fn qs_changes_until_excluded(cfg: ClusterConfig, culprit: ProcessId, seed: u64) -> u64 {
    let mut cluster = QsCluster::new(cfg, seed);
    let mut changes = 0u64;
    loop {
        let q = cluster.agreed_quorum().expect("agreement");
        if !q.contains(culprit) {
            return changes;
        }
        // The culprit misbehaves toward the lowest other member (e.g. by
        // omitting an expected message), which then suspects it.
        let victim = q.iter().find(|p| *p != culprit).expect("quorum > 1");
        cluster.cause_suspicion(victim, culprit);
        changes += 1;
        assert!(changes < 10_000, "quorum selection failed to exclude the culprit");
    }
}

fn fs_changes_until_excluded(cfg: ClusterConfig, culprit: ProcessId, seed: u64) -> u64 {
    let mut cluster = FsCluster::new(cfg, seed);
    let mut changes = 0u64;
    loop {
        let lq = cluster.agreed_quorum().expect("agreement");
        if !lq.quorum().contains(culprit) {
            return changes;
        }
        // In a leader-centric system only leader↔member omissions matter.
        if lq.leader() == culprit {
            let victim = lq.followers().iter().next().expect("has followers");
            cluster.cause_suspicion(victim, culprit);
        } else {
            cluster.cause_suspicion(culprit, lq.leader());
        }
        changes += 1;
        assert!(changes < 10_000, "follower selection failed to exclude the culprit");
    }
}

fn main() {
    let mut table = Table::new(vec![
        "n",
        "f",
        "q",
        "total quorums C(n,f)",
        "enumeration changes",
        "C(n-1,q-1) (formula)",
        "Quorum Selection changes",
        "Follower Selection changes",
    ]);
    for f in 1..=4u32 {
        let n = 3 * f + 1;
        let q = n - f;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        let culprit = ProcessId(1);
        let enumeration = RoundRobinEnumeration::changes_until_excluding(n, q, culprit);
        let qs = qs_changes_until_excluded(cfg, culprit, 7);
        let fs = fs_changes_until_excluded(cfg, culprit, 7);
        table.row(vec![
            n.to_string(),
            f.to_string(),
            q.to_string(),
            binomial(n as u64, f as u64).to_string(),
            enumeration.to_string(),
            binomial((n - 1) as u64, (q - 1) as u64).to_string(),
            qs.to_string(),
            fs.to_string(),
        ]);
    }
    table.print(
        "E7: quorum changes before a single Byzantine process is excluded \
         (enumeration baseline vs this paper)",
    );
    println!(
        "Reading: the enumeration wades through every quorum containing the \
         culprit — C(n-1, q-1), exponential in n — while Quorum Selection \
         excludes it after one change and Follower Selection after O(1)."
    );
}
