//! Experiment E8 — inter-replica message reduction from running on an
//! active quorum (paper §I, after Distler et al.).
//!
//! "Systems like PBFT … use n = 3f+1 replicas, broadcast messages to all
//! replicas but require replies from only n − f correct replicas. … If a
//! quorum or subset of processes, containing n − f correct processes can
//! be selected, these systems can drop approximately 1/3 … of the
//! inter-replica messages. Similarly, BFT systems that … reduce the total
//! number of replicas to n = 2f+1 … [drop] 1/2."
//!
//! We measure per-request inter-replica messages in the simulator for
//! PBFT with all `n = 3f+1` replicas participating, PBFT restricted to
//! an active quorum of `n − f` (Distler-style), and the XPaxos normal
//! case on its active quorum (this paper's Fig. 2), and report
//! per-broadcast recipient reductions for both the `3f+1` and the
//! `2f+1` replica models.

#![forbid(unsafe_code)]

use qsel_bench::{pct, Table};
use qsel_pbft::{run_workload, Participation};
use qsel_simnet::SimTime;
use qsel_types::ClusterConfig;
use qsel_xpaxos::harness::{total_committed, ClusterBuilder};

/// Measured XPaxos inter-replica messages per committed op (prepare +
/// commit traffic only; heartbeats and selection traffic excluded to match
/// the paper's per-request accounting).
fn xpaxos_per_op(cfg: ClusterConfig, ops: u64, seed: u64) -> f64 {
    let mut sim = ClusterBuilder::new(cfg, seed).clients(1, ops).build();
    sim.run_until(SimTime::from_micros(1_000_000 + ops * 10_000));
    assert_eq!(total_committed(&sim), ops, "workload must complete");
    let stats = sim.stats();
    let agreement: u64 = ["prepare", "commit"]
        .iter()
        .map(|k| stats.by_kind.get(*k).copied().unwrap_or(0))
        .sum();
    agreement as f64 / ops as f64
}

fn main() {
    let ops = 50;
    let mut table = Table::new(vec![
        "f",
        "n=3f+1",
        "PBFT all (msgs/op)",
        "PBFT active quorum",
        "XPaxos active quorum",
        "per-broadcast recipients saved",
    ]);
    for f in 1..=4u32 {
        let n = 3 * f + 1;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        let full = run_workload(cfg, Participation::All, ops, 10 + u64::from(f));
        let active = run_workload(cfg, Participation::ActiveQuorum, ops, 20 + u64::from(f));
        assert_eq!(full.committed, ops);
        assert_eq!(active.committed, ops);
        let xp = xpaxos_per_op(cfg, ops, 30 + u64::from(f));
        // The paper's "~1/3" claim is about broadcast fan-out: each
        // broadcast reaches n−f−1 instead of n−1 other replicas.
        let saved = pct((n - (n - f)) as f64, (n - 1) as f64);
        table.row(vec![
            f.to_string(),
            n.to_string(),
            format!("{:.0}", full.per_op),
            format!("{:.0}", active.per_op),
            format!("{xp:.1}"),
            saved,
        ]);
    }
    table.print("E8a: inter-replica messages per request, n = 3f+1 (PBFT-style systems)");

    let mut table2 = Table::new(vec![
        "f",
        "n=2f+1",
        "full participation (msgs/op)",
        "active quorum f+1 (msgs/op)",
        "per-broadcast recipients saved",
    ]);
    for f in 1..=4u32 {
        let n = 2 * f + 1;
        let cfg = ClusterConfig::new(n, f).expect("valid config");
        let full = run_workload(cfg, Participation::All, ops, 40 + u64::from(f));
        let active = run_workload(cfg, Participation::ActiveQuorum, ops, 50 + u64::from(f));
        assert_eq!(full.committed, ops);
        assert_eq!(active.committed, ops);
        let saved = pct(f as f64, (n - 1) as f64);
        table2.row(vec![
            f.to_string(),
            n.to_string(),
            format!("{:.0}", full.per_op),
            format!("{:.0}", active.per_op),
            saved,
        ]);
    }
    table2.print("E8b: trusted-component-style systems, n = 2f+1");
    println!(
        "Reading: per-broadcast the active quorum drops f of the n−1 \
         recipients — ≈1/3 for n=3f+1 and ≈1/2 for n=2f+1, exactly the \
         intro's claim; total message counts fall superlinearly because the \
         quadratic agreement phases shrink with the participant count."
    );
}
