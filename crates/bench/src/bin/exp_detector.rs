//! Experiment E9 — failure-detector characterization (§IV-B).
//!
//! Two sweeps over a 4-process heartbeat cluster (the Fig. 1 composition):
//!
//! 1. **Crash detection latency** — the quorum member p2 crashes at
//!    t = 50ms; how long until
//!    every survivor's quorum excludes it, as a function of the initial
//!    expectation timeout.
//! 2. **Eventual strong accuracy** — under a chaotic pre-GST network
//!    (delays up to `before_max`), count false suspicions raised before
//!    and after GST. Adaptive back-off must drive post-GST false
//!    suspicions to zero.

#![forbid(unsafe_code)]

use qsel::node::{NodeConfig, SelectorNode, ServiceMsg};
use qsel_bench::Table;
use qsel_detector::FdConfig;
use qsel_simnet::{DelayModel, SimConfig, SimDuration, SimTime, Simulation};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, ProcessId};

fn build(
    cfg: ClusterConfig,
    seed: u64,
    fd: FdConfig,
    delay: DelayModel,
) -> Simulation<ServiceMsg, SelectorNode> {
    let chain = Keychain::new(&cfg, seed);
    let node_cfg = NodeConfig {
        heartbeat_period: SimDuration::millis(5),
        fd,
    };
    let nodes: Vec<SelectorNode> = cfg
        .processes()
        .map(|p| SelectorNode::new_quorum(cfg, p, &chain, node_cfg.clone()))
        .collect();
    Simulation::new(SimConfig::new(cfg.n(), seed).with_delay(delay), nodes)
}

fn main() {
    let cfg = ClusterConfig::new(4, 1).expect("valid config");

    // Sweep 1: crash-detection latency vs initial timeout.
    let mut t1 = Table::new(vec![
        "initial timeout (ms)",
        "exclusion latency (ms)",
        "false suspicions",
    ]);
    for timeout_ms in [1u64, 2, 5, 10, 20, 50] {
        let fd = FdConfig {
            initial_timeout: SimDuration::millis(timeout_ms),
            timeout_cap: SimDuration::secs(60),
            adaptive: true,
        };
        let mut sim = build(cfg, 77, fd, DelayModel::default());
        sim.start();
        let crash_at = SimTime::from_micros(50_000);
        sim.run_until(crash_at);
        sim.crash(ProcessId(2)); // an active-quorum member
        // Advance until all survivors exclude p2 (or give up at 2s).
        let mut excluded_at = None;
        let mut t = crash_at;
        while excluded_at.is_none() && t < SimTime::from_micros(2_000_000) {
            t += SimDuration::millis(1);
            sim.run_until(t);
            let all_excluded = [1u32, 3, 4].iter().all(|&p| {
                !sim.actor(ProcessId(p))
                    .current_plain_quorum()
                    .expect("quorum mode")
                    .contains(ProcessId(2))
            });
            if all_excluded {
                excluded_at = Some(t);
            }
        }
        let false_susp: u64 = [1u32, 3, 4]
            .iter()
            .map(|&p| sim.actor(ProcessId(p)).fd_stats().suspicions_cancelled)
            .sum();
        t1.row(vec![
            timeout_ms.to_string(),
            excluded_at
                .map(|t| format!("{:.1}", (t - crash_at).as_micros() as f64 / 1000.0))
                .unwrap_or_else(|| ">1950".into()),
            false_susp.to_string(),
        ]);
    }
    t1.print("E9a: crash-exclusion latency vs initial expectation timeout (4 nodes, f=1)");

    // Sweep 2: false suspicions before/after GST under chaotic delays.
    let mut t2 = Table::new(vec![
        "pre-GST max delay (ms)",
        "suspicions raised pre-GST",
        "suspicions raised post-GST (after settle)",
        "agree on initial quorum at end",
    ]);
    for chaos_ms in [1u64, 5, 20, 50] {
        let gst = SimTime::from_micros(300_000);
        let delay = DelayModel::eventually_synchronous(
            SimDuration::millis(chaos_ms),
            SimDuration::micros(50),
            SimDuration::micros(150),
            gst,
        );
        let fd = FdConfig {
            initial_timeout: SimDuration::millis(1),
            timeout_cap: SimDuration::secs(60),
            adaptive: true,
        };
        let mut sim = build(cfg, 99, fd, delay);
        sim.run_until(gst);
        let pre: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .map(|&p| sim.actor(p).fd_stats().suspicions_raised)
            .sum();
        // Give the adaptive timeouts a settling window after GST, then
        // measure a quiet observation window.
        sim.run_until(gst + SimDuration::millis(200));
        let settled: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .map(|&p| sim.actor(p).fd_stats().suspicions_raised)
            .sum();
        sim.run_until(gst + SimDuration::millis(700));
        let end: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .map(|&p| sim.actor(p).fd_stats().suspicions_raised)
            .sum();
        let q0 = sim.actor(ProcessId(1)).current_plain_quorum();
        let agreed = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .all(|&p| sim.actor(p).current_plain_quorum() == q0);
        t2.row(vec![
            chaos_ms.to_string(),
            pre.to_string(),
            (end - settled).to_string(),
            format!("{agreed}"),
        ]);
    }
    t2.print("E9b: eventual strong accuracy — false suspicions around GST");
    println!(
        "Reading: chaotic pre-GST delays cause raise/cancel churn; after GST \
         the doubled timeouts exceed the real delay bound and suspicions stop \
         (eventual strong accuracy), with all processes agreeing on a quorum."
    );
}
