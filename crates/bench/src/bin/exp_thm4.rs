//! Experiment E5 — Theorem 4's lower bound, and what it does to a
//! learning vs a non-learning algorithm.
//!
//! Theorem 4: any deterministic quorum-selection algorithm may have to
//! propose C(f+2, 2) quorums. We run the exact optimal adversary against
//! (a) Algorithm 1's lexicographically-first-independent-set rule and
//! (b) the XPaxos round-robin enumeration. Both are forced to about the
//! same number of changes by the *optimal confined* adversary — but the
//! enumeration can additionally be forced around its whole C(n, f) cycle
//! by a single culprit (see exp-baseline), which Algorithm 1 cannot.

#![forbid(unsafe_code)]

use qsel_adversary::game::{
    binomial, max_interruptions, LexFirstIs, RoundRobinEnumeration,
};
use qsel_bench::Table;

fn main() {
    let mut table = Table::new(vec![
        "f",
        "n",
        "Alg.1 proposed quorums",
        "enumeration proposed quorums",
        "Thm4 lower bound C(f+2,2)",
    ]);
    for f in 1..=4u32 {
        let n = 3 * f + 1;
        let q = n - f;
        // "+1": the initial quorum counts as proposed (the Theorem 4
        // sequence is Q_1, s_1, …, s_{k-1}, Q_k with k-1 suspicions).
        let alg1 = max_interruptions(&LexFirstIs::new(n, q), n, f).changes + 1;
        let enumeration =
            max_interruptions(&RoundRobinEnumeration::new(n, q), n, f).changes + 1;
        let bound = binomial((f + 2) as u64, 2);
        table.row(vec![
            f.to_string(),
            n.to_string(),
            alg1.to_string(),
            enumeration.to_string(),
            bound.to_string(),
        ]);
    }
    table.print("E5: proposed quorums under the optimal confined adversary (Theorem 4)");
    println!(
        "Reading: the adversary achieves the C(f+2,2) bound against Algorithm 1 \
         (the bound is tight), and at least as much against the XPaxos enumeration."
    );
}
