//! Experiment E-LAT — commit-latency attribution under batching, with a
//! CI regression gate.
//!
//! Runs a fixed batched scenario (n=5 f=1, four closed-loop clients ×
//! 25 ops, batches of up to 8 with a 300µs accumulation window, pipeline
//! depth 2) at three seeds, reconstructs every committed request's causal
//! span, and aggregates end-to-end and per-phase latency quantiles across
//! the pooled spans. The simulation is deterministic, so the numbers are
//! a pure function of the code — any drift is a code change, not noise.
//!
//! Writes `BENCH_latency.json` (to the first CLI argument, default the
//! current directory) and compares the observed end-to-end p99 against
//! the committed baseline (`--baseline PATH`, default the repository's
//! checked-in `BENCH_latency.json`): a regression of more than 10% fails
//! the run. A missing baseline file skips the gate with a notice — that
//! is the bootstrap path, see EXPERIMENTS.md § E-LAT for the refresh
//! procedure.
//!
//! Usage:
//!
//! ```text
//! exp-latency <out_dir> [--baseline PATH]
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;

use qsel_bench::Table;
use qsel_obs::metrics::percentile_sorted;
use qsel_obs::replay::parse_jsonl;
use qsel_obs::span::{SpanReport, PHASES};
use qsel_scenario::{run_scenario, BatchSpec, Cluster, RunSpec, Scenario, Workload};

const SEEDS: [u64; 3] = [1, 2, 3];
const CLIENTS: u32 = 4;
const OPS_PER_CLIENT: u64 = 25;
/// >10% p99 regression against the committed baseline fails CI.
const GATE_NUM: u64 = 11;
const GATE_DEN: u64 = 10;

/// The measured workload: batching on (so `batch_wait` is a real phase),
/// shallow pipeline, closed loop.
fn scenario() -> Scenario {
    Scenario {
        name: "exp-latency".to_string(),
        cluster: Cluster {
            n: 5,
            f: 1,
            ..Cluster::default()
        },
        workload: Workload {
            clients: CLIENTS,
            ops_per_client: OPS_PER_CLIENT,
            tx_cost_us: 2,
            ..Workload::default()
        },
        batch: BatchSpec {
            max_size: 8,
            max_delay_us: 300,
            pipeline_depth: 2,
        },
        run: RunSpec {
            settle_us: 10_000_000,
            min_commit_permille: 1000,
            stable_from_us: None,
        },
        ..Scenario::default()
    }
}

/// Pulls `"end_to_end_p99_us": <digits>` out of a previously written
/// `BENCH_latency.json` without a full parser.
fn baseline_p99(text: &str) -> Option<u64> {
    let key = "\"end_to_end_p99_us\":";
    let at = text.find(key)? + key.len();
    let digits: String = text[at..]
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));
    let mut baseline_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_latency.json");
    while let Some(flag) = args.next() {
        match (flag.as_str(), args.next()) {
            ("--baseline", Some(p)) => baseline_path = PathBuf::from(p),
            (other, _) => {
                eprintln!("unknown or valueless flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let sc = scenario();
    let mut lat: Vec<u64> = Vec::new();
    let mut phase_samples: [Vec<u64>; 6] = Default::default();
    let mut straggler: Vec<u64> = Vec::new();
    let mut unattributed = 0usize;
    for seed in SEEDS {
        let artifacts = run_scenario(&sc, seed).expect("scenario runs");
        assert!(
            artifacts.verdict.pass(),
            "E-LAT workload must pass its verdict at seed {seed}"
        );
        let records = parse_jsonl(&artifacts.trace_jsonl).expect("trace reparses");
        let spans = SpanReport::build(&records);
        unattributed += spans.unattributed.len();
        for s in &spans.spans {
            lat.push(s.latency_us);
            for (i, d) in s.phases.iter().enumerate() {
                phase_samples[i].push(*d);
            }
            straggler.push(s.straggler_gap_us);
        }
    }
    assert_eq!(unattributed, 0, "every committed request must attribute");
    lat.sort_unstable();
    for p in &mut phase_samples {
        p.sort_unstable();
    }
    straggler.sort_unstable();

    let p50 = percentile_sorted(&lat, 50);
    let p90 = percentile_sorted(&lat, 90);
    let p99 = percentile_sorted(&lat, 99);
    let straggler_p99 = percentile_sorted(&straggler, 99);

    let mut table = Table::new(vec!["phase", "p50 µs", "p90 µs", "p99 µs"]);
    for (i, name) in PHASES.iter().enumerate() {
        table.row(vec![
            (*name).to_string(),
            percentile_sorted(&phase_samples[i], 50).to_string(),
            percentile_sorted(&phase_samples[i], 90).to_string(),
            percentile_sorted(&phase_samples[i], 99).to_string(),
        ]);
    }
    table.print("E-LAT — commit latency attribution (pooled over seeds 1..3)");
    println!("end-to-end: p50 {p50}µs  p90 {p90}µs  p99 {p99}µs  ({} spans)", lat.len());

    let baseline = std::fs::read_to_string(&baseline_path)
        .ok()
        .as_deref()
        .and_then(baseline_p99);
    let pass = match baseline {
        Some(b) => {
            println!(
                "baseline p99 {b}µs ({}); gate: observed <= {}.{}x",
                baseline_path.display(),
                GATE_NUM / GATE_DEN,
                GATE_NUM % GATE_DEN
            );
            p99 * GATE_DEN <= b * GATE_NUM
        }
        None => {
            println!(
                "no baseline at {} — gate skipped (bootstrap run)",
                baseline_path.display()
            );
            true
        }
    };

    let mut json = String::from("{\n  \"experiment\": \"E-LAT\",\n");
    json.push_str(&format!(
        "  \"workload\": \"n=5 f=1 clients={CLIENTS} ops={OPS_PER_CLIENT} \
         batch=8 delay_us=300 depth=2 seeds=1..3\",\n"
    ));
    json.push_str(&format!("  \"spans\": {},\n", lat.len()));
    json.push_str(&format!("  \"end_to_end_p50_us\": {p50},\n"));
    json.push_str(&format!("  \"end_to_end_p90_us\": {p90},\n"));
    json.push_str(&format!("  \"end_to_end_p99_us\": {p99},\n"));
    json.push_str("  \"phases\": [\n");
    for (i, name) in PHASES.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}}}{}\n",
            percentile_sorted(&phase_samples[i], 50),
            percentile_sorted(&phase_samples[i], 90),
            percentile_sorted(&phase_samples[i], 99),
            if i + 1 == PHASES.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"straggler_gap_p99_us\": {straggler_p99},\n"));
    match baseline {
        Some(b) => json.push_str(&format!("  \"baseline_p99_us\": {b},\n")),
        None => json.push_str("  \"baseline_p99_us\": null,\n"),
    }
    json.push_str(&format!("  \"gate\": 1.1,\n  \"pass\": {pass}\n}}\n"));

    let path = out_dir.join("BENCH_latency.json");
    std::fs::write(&path, json).expect("cannot write benchmark JSON");
    println!("wrote {}", path.display());
    if !pass {
        eprintln!("end-to-end p99 regressed more than 10% against the committed baseline");
        std::process::exit(1);
    }
}
