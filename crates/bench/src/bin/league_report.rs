//! Scenario-league verdict aggregator.
//!
//! Walks a directory tree for `verdict.json` files (one per CI matrix
//! cell, written by the `scenario_run` example), folds them into a single
//! `league_report.json`, and prints a GitHub-flavoured markdown pass/fail
//! table for the job summary.
//!
//! Usage:
//!
//! ```text
//! league-report <dir> [--json PATH] [--md PATH]
//! ```
//!
//! Exits non-zero if any cell failed, any verdict does not parse, or no
//! verdicts were found at all (an empty league means the matrix broke —
//! that must not read as green).

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qsel_bench::Table;
use qsel_obs::Verdict;

fn collect_verdicts(dir: &Path, out: &mut Vec<(PathBuf, Verdict)>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    // Sort for a deterministic report independent of filesystem order.
    let mut paths: Vec<PathBuf> = entries
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_verdicts(&path, out)?;
        } else if path.file_name().is_some_and(|n| n == "verdict.json") {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let verdict =
                Verdict::parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
            out.push((path, verdict));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(root) = args.next() else {
        eprintln!("usage: league-report <dir> [--json PATH] [--md PATH]");
        return ExitCode::FAILURE;
    };
    let mut json_path: Option<PathBuf> = None;
    let mut md_path: Option<PathBuf> = None;
    while let Some(flag) = args.next() {
        let value = args.next().map(PathBuf::from);
        match (flag.as_str(), value) {
            ("--json", Some(p)) => json_path = Some(p),
            ("--md", Some(p)) => md_path = Some(p),
            (other, _) => {
                eprintln!("unknown or valueless flag {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut cells: Vec<(PathBuf, Verdict)> = Vec::new();
    if let Err(e) = collect_verdicts(Path::new(&root), &mut cells) {
        eprintln!("league-report: {e}");
        return ExitCode::FAILURE;
    }
    if cells.is_empty() {
        eprintln!("league-report: no verdict.json found under {root}");
        return ExitCode::FAILURE;
    }
    cells.sort_by_key(|(_, a)| (a.scenario.clone(), a.seed));

    let passed = cells.iter().filter(|(_, v)| v.pass()).count();
    let failed = cells.len() - passed;

    // league_report.json: the per-cell verdicts verbatim plus the totals,
    // so downstream tooling needs no second artifact fetch.
    let rendered: Vec<String> = cells
        .iter()
        .map(|(_, v)| {
            v.to_json()
                .trim_end()
                .lines()
                .map(|l| format!("    {l}"))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect();
    let json = format!(
        "{{\n  \"cells\": {},\n  \"passed\": {passed},\n  \"failed\": {failed},\n  \
         \"verdicts\": [\n{}\n  ]\n}}\n",
        cells.len(),
        rendered.join(",\n")
    );

    let mut table = Table::new(vec!["scenario", "seed", "result", "p99 commit", "failed checks"]);
    for (_, v) in &cells {
        let failed_checks: Vec<&str> = v
            .checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.name.as_str())
            .collect();
        // Older verdicts (pre latency attribution) simply lack the metric.
        let p99 = v
            .metrics
            .get("commit_latency_p99_us")
            .map_or_else(|| "—".to_string(), |us| format!("{us} µs"));
        table.row(vec![
            v.scenario.clone(),
            v.seed.to_string(),
            if v.pass() { "✅ pass" } else { "❌ FAIL" }.to_string(),
            p99,
            if failed_checks.is_empty() {
                "—".to_string()
            } else {
                failed_checks.join(", ")
            },
        ]);
    }
    let md = format!(
        "## Scenario league\n\n{}\n{} of {} cells passed.\n",
        table.render(),
        passed,
        cells.len()
    );

    if let Some(p) = &json_path {
        std::fs::write(p, &json).expect("cannot write league report json");
        println!("report → {}", p.display());
    }
    if let Some(p) = &md_path {
        std::fs::write(p, &md).expect("cannot write league report markdown");
        println!("summary → {}", p.display());
    }
    print!("{md}");

    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
