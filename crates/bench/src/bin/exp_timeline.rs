//! Experiment E12 — end-to-end throughput timeline across fault injection.
//!
//! An XPaxos cluster (n = 4, f = 1) serves a closed-loop client. At
//! t = 300ms the active-quorum follower p2 crashes. We record committed
//! operations per 100ms bucket for the Quorum-Selection policy and the
//! enumeration baseline. The shape to reproduce: a dip at the fault,
//! then recovery to the pre-fault rate; omissions from the now-passive
//! replica cost nothing afterwards.

#![forbid(unsafe_code)]

use qsel_bench::Table;
use qsel_simnet::{SimDuration, SimTime};
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{assert_safety, ClusterBuilder};
use qsel_xpaxos::replica::{QuorumPolicy, ReplicaConfig};

fn run(policy: QuorumPolicy) -> (Vec<u64>, u64) {
    let cfg = ClusterConfig::new(4, 1).expect("valid config");
    let rcfg = ReplicaConfig {
        policy,
        ..Default::default()
    };
    let mut sim = ClusterBuilder::new(cfg, 4242)
        .replica_config(rcfg)
        .clients(4, 100_000) // effectively unbounded; time-limited run
        .retry(SimDuration::millis(30))
        .build();
    sim.start();
    let bucket = SimDuration::millis(100);
    let horizon = SimTime::from_micros(1_200_000);
    let crash_at = SimTime::from_micros(300_000);
    let mut crashed = false;
    let mut t = SimTime::ZERO;
    let mut committed_before = 0u64;
    let mut buckets = Vec::new();
    while t < horizon {
        if !crashed && t + bucket > crash_at {
            sim.run_until(crash_at);
            sim.crash(ProcessId(2));
            crashed = true;
        }
        t += bucket;
        sim.run_until(t);
        let committed: u64 = sim
            .ids()
            .collect::<Vec<_>>()
            .iter()
            .filter_map(|&id| sim.actor(id).client().map(|c| c.committed_ops()))
            .sum();
        buckets.push(committed - committed_before);
        committed_before = committed;
    }
    assert_safety(&sim);
    let installs = sim
        .ids()
        .collect::<Vec<_>>()
        .iter()
        .filter_map(|&id| sim.actor(id).replica().map(|r| r.stats().views_installed))
        .max()
        .unwrap_or(0);
    (buckets, installs)
}

fn main() {
    let (sel, sel_vc) = run(QuorumPolicy::Selection);
    let (en, en_vc) = run(QuorumPolicy::Enumeration);
    let mut table = Table::new(vec![
        "t (ms)",
        "ops/100ms (Quorum Selection)",
        "ops/100ms (enumeration)",
    ]);
    for (i, (s, e)) in sel.iter().zip(&en).enumerate() {
        let label = format!("{}–{}", i * 100, (i + 1) * 100);
        let mark = if i * 100 == 300 { " ← crash p2" } else { "" };
        table.row(vec![
            format!("{label}{mark}"),
            s.to_string(),
            e.to_string(),
        ]);
    }
    table.print("E12: committed ops per 100ms across a follower crash at t=300ms (n=4, f=1)");
    println!("views installed: selection = {sel_vc}, enumeration = {en_vc}");
    println!(
        "Reading: both dip at the crash; Quorum Selection re-stabilizes after \
         a single quorum change and throughput returns to the fault-free rate."
    );
}
