//! Experiment E-THRU — throughput of batched, pipelined commit.
//!
//! Sweeps `BatchPolicy` (max batch size × pipeline depth) over two cluster
//! shapes and measures committed requests per simulated second under a
//! closed-loop multi-client workload. The network charges a per-message
//! egress serialization cost (`SimConfig::tx_cost`), so message *count* —
//! the quantity batching amortizes — is visible in simulated time; with
//! the default pure-delay model a slot's cost is independent of how many
//! messages it takes, and batching would show nothing.
//!
//! Configurations measured per cluster:
//!
//! * `legacy` — `BatchPolicy::default()`, the passthrough identity: one
//!   request per slot, *unbounded* slots in flight (the pre-batching
//!   protocol). Reported for context; its unbounded pipelining already
//!   overlaps slots, so batching's win over it is bounded by the
//!   per-request forward/reply floor.
//! * `b{B}d{D}` — gated policies: batches of up to `B`, at most `D`
//!   slots in flight. `b1d1` is the unbatched serial baseline the
//!   acceptance gate compares against: one request per slot, one slot at
//!   a time.
//!
//! Writes `BENCH_throughput.json` (to the first CLI argument, default the
//! current directory) and exits non-zero unless batch 16 / depth 4 commits
//! at ≥ 3× the rate of the unbatched `b1d1` baseline on the 5-replica
//! cluster.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use qsel_bench::Table;
use qsel_simnet::{SimDuration, SimTime};
use qsel_types::ClusterConfig;
use qsel_xpaxos::harness::{total_committed, ClusterBuilder};
use qsel_xpaxos::policy::BatchPolicy;
use qsel_xpaxos::replica::ReplicaConfig;

const SEED: u64 = 11;
const CLIENTS: u32 = 32;
const OPS_PER_CLIENT: u64 = 20;
/// Per-message egress serialization cost: the knob that makes message
/// count cost simulated time.
const TX_COST_MICROS: u64 = 60;
/// Batch accumulation window for gated policies with batch size > 1.
const BATCH_DELAY_MICROS: u64 = 800;
/// Simulated-time budget per run.
const DEADLINE_MICROS: u64 = 60_000_000;
/// Simulated-time granularity of the completion probe (bounds the
/// throughput measurement error per run).
const SLICE_MICROS: u64 = 500;

/// A single measured configuration.
struct Row {
    cluster: String,
    label: String,
    throughput: f64,
    sim_ms: f64,
}

/// A gated single-request policy: equal in shape to the passthrough
/// default but distinguishable from it (non-zero delay), so the depth
/// gate actually applies. With `max_batch_size == 1` every batch closes
/// as full immediately; the delay never adds latency.
fn gated(batch: usize, depth: usize) -> BatchPolicy {
    let delay = if batch == 1 { 1 } else { BATCH_DELAY_MICROS };
    BatchPolicy::new(batch, SimDuration::micros(delay), depth)
}

/// Runs the workload under `policy` and returns committed requests per
/// simulated second (and the simulated completion time in ms).
fn run(cfg: ClusterConfig, policy: BatchPolicy) -> (f64, f64) {
    let mut rcfg = ReplicaConfig {
        batch: policy,
        ..Default::default()
    };
    // Saturating a serializing NIC stretches message latencies well past
    // the LAN-tuned detector defaults; relax them identically for every
    // configuration so the comparison measures batching, not spurious
    // view changes.
    rcfg.fd.initial_timeout = SimDuration::millis(20);
    rcfg.heartbeat_period = SimDuration::millis(20);
    rcfg.view_change_timeout = SimDuration::millis(50);
    let mut sim = ClusterBuilder::new(cfg, SEED)
        .replica_config(rcfg)
        .clients(CLIENTS, OPS_PER_CLIENT)
        .retry(SimDuration::millis(100))
        .tx_cost(SimDuration::micros(TX_COST_MICROS))
        .build();
    let expected = u64::from(CLIENTS) * OPS_PER_CLIENT;
    let mut now = 0u64;
    while total_committed(&sim) < expected && now < DEADLINE_MICROS {
        now += SLICE_MICROS;
        sim.run_until(SimTime::from_micros(now));
    }
    assert_eq!(
        total_committed(&sim),
        expected,
        "workload must finish inside the deadline"
    );
    let secs = now as f64 / 1_000_000.0;
    (expected as f64 / secs, now as f64 / 1_000.0)
}

fn main() {
    let out_dir = PathBuf::from(std::env::args().nth(1).unwrap_or_else(|| ".".to_string()));
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let n5 = ClusterConfig::new(5, 1).unwrap();
    let n7 = ClusterConfig::new(7, 2).unwrap();

    let mut rows: Vec<Row> = Vec::new();
    let measure = |rows: &mut Vec<Row>, cluster: &str, cfg: ClusterConfig, label: String, pol: BatchPolicy| {
        let (thr, sim_ms) = run(cfg, pol);
        rows.push(Row {
            cluster: cluster.to_string(),
            label,
            throughput: thr,
            sim_ms,
        });
    };

    // n=5: full grid, plus the legacy passthrough for context.
    measure(&mut rows, "n5", n5, "legacy".into(), BatchPolicy::default());
    for depth in [1usize, 2, 4] {
        for batch in [1usize, 4, 16] {
            measure(&mut rows, "n5", n5, format!("b{batch}d{depth}"), gated(batch, depth));
        }
    }
    // n=7 f=2: corners only.
    measure(&mut rows, "n7", n7, "b1d1".into(), gated(1, 1));
    measure(&mut rows, "n7", n7, "b16d4".into(), gated(16, 4));

    let thr_of = |cluster: &str, label: &str| {
        rows.iter()
            .find(|r| r.cluster == cluster && r.label == label)
            .map(|r| r.throughput)
            .expect("configuration measured")
    };
    let baseline = thr_of("n5", "b1d1");
    let batched = thr_of("n5", "b16d4");
    let legacy = thr_of("n5", "legacy");
    let speedup = batched / baseline;
    let speedup_vs_legacy = batched / legacy;
    let pass = speedup >= 3.0;

    let mut t = Table::new(vec!["cluster", "policy", "req/sim-s", "sim ms"]);
    for r in &rows {
        t.drow(vec![
            r.cluster.clone(),
            r.label.clone(),
            format!("{:.0}", r.throughput),
            format!("{:.1}", r.sim_ms),
        ]);
    }
    t.print("E-THRU — batched + pipelined commit throughput");
    println!("speedup b16d4 vs b1d1 (n=5):   {speedup:.2}x  (gate: >= 3.0x)");
    println!("speedup b16d4 vs legacy (n=5): {speedup_vs_legacy:.2}x");

    let mut json = String::from("{\n  \"experiment\": \"E-THRU\",\n");
    json.push_str(&format!(
        "  \"workload\": \"clients={CLIENTS} ops={OPS_PER_CLIENT} seed={SEED} \
         tx_cost_us={TX_COST_MICROS} batch_delay_us={BATCH_DELAY_MICROS}\",\n"
    ));
    json.push_str("  \"configs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"cluster\": \"{}\", \"policy\": \"{}\", \"requests_per_sim_second\": {:.1}, \
             \"sim_ms\": {:.1}}}{}\n",
            r.cluster,
            r.label,
            r.throughput,
            r.sim_ms,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_b16d4_vs_b1d1_n5\": {speedup:.3},\n  \
         \"speedup_b16d4_vs_legacy_n5\": {speedup_vs_legacy:.3},\n  \
         \"gate\": 3.0,\n  \"pass\": {pass}\n}}\n"
    ));
    let path = out_dir.join("BENCH_throughput.json");
    std::fs::write(&path, json).expect("cannot write benchmark JSON");
    println!("wrote {}", path.display());
    if !pass {
        eprintln!("batched throughput below the 3x acceptance gate");
        std::process::exit(1);
    }
}
