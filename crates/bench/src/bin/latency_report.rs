//! Per-request critical-path latency attribution for one scenario run.
//!
//! Parses a scenario file, executes it deterministically at the given
//! seed, reconstructs the causal span of every committed request from the
//! exported trace (see DESIGN.md §14), and writes the canonical
//! `latency_report.json` — end-to-end quantiles, the per-phase
//! decomposition, and the exact phase breakdown of the p99 request.
//!
//! Usage:
//!
//! ```text
//! latency-report <scenario.toml> [seed] [out_dir]
//! ```
//!
//! The tool is its own acceptance harness. It exits non-zero unless:
//!
//! * every committed request was attributed to a full causal chain,
//! * the p99 request's phase breakdown sums to within 1% of the
//!   end-to-end p99 (by construction it sums *exactly*; the 1% tolerance
//!   guards the claim, not the implementation),
//! * a second run of the same (scenario, seed) yields byte-identical
//!   report bytes — determinism checked where it is consumed.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use qsel_bench::Table;
use qsel_obs::metrics::percentile_sorted;
use qsel_obs::replay::parse_jsonl;
use qsel_obs::span::{SpanReport, PHASES};
use qsel_scenario::{parse, run_scenario};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: latency-report <scenario.toml> [seed] [out_dir]");
        return ExitCode::FAILURE;
    };
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be an integer"))
        .unwrap_or(1);
    let out_dir = PathBuf::from(args.next().unwrap_or_else(|| ".".to_string()));

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let artifacts = match run_scenario(&scenario, seed) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let records = parse_jsonl(&artifacts.trace_jsonl).expect("exported trace reparses");
    let spans = SpanReport::build(&records);

    let lat = spans.latencies_sorted();
    let mut table = Table::new(vec!["phase", "total µs", "p50", "p90", "p99", "max"]);
    for (i, name) in PHASES.iter().enumerate() {
        let sorted = spans.phase_sorted(i);
        table.row(vec![
            (*name).to_string(),
            sorted.iter().sum::<u64>().to_string(),
            percentile_sorted(&sorted, 50).to_string(),
            percentile_sorted(&sorted, 90).to_string(),
            percentile_sorted(&sorted, 99).to_string(),
            sorted.last().copied().unwrap_or(0).to_string(),
        ]);
    }
    table.print(&format!(
        "latency attribution — {} seed {seed} ({} span(s), {} unattributed)",
        scenario.name,
        spans.spans.len(),
        spans.unattributed.len()
    ));
    println!(
        "end-to-end: p50 {}µs  p90 {}µs  p99 {}µs  max {}µs",
        percentile_sorted(&lat, 50),
        percentile_sorted(&lat, 90),
        percentile_sorted(&lat, 99),
        lat.last().copied().unwrap_or(0),
    );

    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let out_path = out_dir.join("latency_report.json");
    std::fs::write(&out_path, &artifacts.latency_report).expect("cannot write latency report");
    println!("report → {}", out_path.display());

    let mut ok = true;
    if !spans.unattributed.is_empty() {
        eprintln!(
            "FAIL: {} committed request(s) lack a full causal chain: {:?}",
            spans.unattributed.len(),
            spans.unattributed
        );
        ok = false;
    }
    if lat.is_empty() {
        eprintln!("FAIL: no spans attributed — nothing to report on");
        ok = false;
    } else {
        let e2e_p99 = percentile_sorted(&lat, 99);
        let p99 = spans.p99_span().expect("non-empty report has a p99 span");
        let sum = p99.phase_sum();
        // Integer arithmetic for the 1% band: |sum - p99| * 100 <= p99.
        if sum.abs_diff(e2e_p99) * 100 > e2e_p99 {
            eprintln!(
                "FAIL: p99 attribution sums to {sum}µs but end-to-end p99 is \
                 {e2e_p99}µs (>1% apart)"
            );
            ok = false;
        } else {
            println!(
                "p99 attribution: client {} op {} — phases sum to {sum}µs \
                 vs end-to-end p99 {e2e_p99}µs ✓",
                p99.client, p99.op
            );
        }
    }

    // Determinism, checked where it is consumed: the same (scenario, seed)
    // must reproduce the report byte for byte.
    let again = run_scenario(&scenario, seed).expect("second run");
    if again.latency_report != artifacts.latency_report {
        eprintln!("FAIL: latency report diverged between two identical runs");
        ok = false;
    } else {
        println!("determinism: second run byte-identical ✓");
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
