//! Experiment E-ABL — ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Degree pruning** in the independent-set solver (the Theorem 3
//!    observation: nodes of degree ≥ f+1 cannot join a quorum) — measured
//!    as backtracking-node counts proxied by wall-clock on dense
//!    adversarial graphs.
//! 2. **Adaptive timeout back-off** in the failure detector — without it,
//!    eventual strong accuracy is lost on an eventually-synchronous
//!    network (false suspicions keep flowing after GST).
//! 3. **Epoch expiry** of suspicions (Algorithm 1's epochs) — with
//!    permanent suspicions, transient false accusations accumulate until
//!    no quorum exists at all; epochs let the system shed them.

#![forbid(unsafe_code)]

use qsel::node::{NodeConfig, SelectorNode, ServiceMsg};
use qsel_bench::Table;
use qsel_detector::FdConfig;
use qsel_graph::SuspectGraph;
use qsel_simnet::{DelayModel, SimConfig, SimDuration, SimTime, Simulation};
use qsel_types::crypto::Keychain;
use qsel_types::{ClusterConfig, ProcessId};
use std::time::Instant;

/// Dense adversarial graph: f faulty nodes each suspected by many.
fn dense_graph(n: u32, f: u32) -> SuspectGraph {
    let mut g = SuspectGraph::new(n);
    for b in 1..=f {
        for k in 0..(n / 2) {
            let peer = f + 1 + ((b * 5 + k * 3) % (n - f));
            if peer != b && peer <= n {
                g.add_edge(ProcessId(b), ProcessId(peer));
            }
        }
    }
    g
}

fn ablate_pruning() {
    let mut t = Table::new(vec![
        "n",
        "f",
        "with pruning (µs/solve)",
        "without pruning (µs/solve)",
        "speedup",
    ]);
    for f in [4u32, 8, 12, 16] {
        let n = 3 * f + 1;
        let g = dense_graph(n, f);
        let q = n - f;
        let reps = 2_000u32;
        let timed = |prune: bool| {
            let start = Instant::now();
            for _ in 0..reps {
                let s = if prune {
                    g.first_independent_set(q)
                } else {
                    g.first_independent_set_no_prune(q)
                };
                std::hint::black_box(&s);
            }
            start.elapsed().as_micros() as f64 / f64::from(reps)
        };
        // Verify both agree before timing.
        assert_eq!(g.first_independent_set(q), g.first_independent_set_no_prune(q));
        let with = timed(true);
        let without = timed(false);
        t.row(vec![
            n.to_string(),
            f.to_string(),
            format!("{with:.2}"),
            format!("{without:.2}"),
            format!("{:.2}x", without / with),
        ]);
    }
    t.print("E-ABL-1: Theorem 3 degree pruning in the lex-first IS solver");
}

fn run_gst_cluster(adaptive: bool) -> (u64, u64) {
    let cfg = ClusterConfig::new(4, 1).expect("valid config");
    let chain = Keychain::new(&cfg, 5);
    let gst = SimTime::from_micros(300_000);
    // Post-GST delays (2–4ms) deliberately exceed the 1ms initial
    // timeout: accuracy is only reachable by growing the timeout.
    let delay = DelayModel::eventually_synchronous(
        SimDuration::millis(20),
        SimDuration::millis(2),
        SimDuration::millis(4),
        gst,
    );
    let node_cfg = NodeConfig {
        heartbeat_period: SimDuration::millis(5),
        fd: FdConfig {
            initial_timeout: SimDuration::millis(1),
            timeout_cap: SimDuration::secs(60),
            adaptive,
        },
    };
    let nodes: Vec<SelectorNode> = cfg
        .processes()
        .map(|p| SelectorNode::new_quorum(cfg, p, &chain, node_cfg.clone()))
        .collect();
    let mut sim: Simulation<ServiceMsg, SelectorNode> =
        Simulation::new(SimConfig::new(4, 5).with_delay(delay), nodes);
    // Settle window after GST, then measure a quiet period.
    sim.run_until(gst + SimDuration::millis(200));
    let settled: u64 = sim
        .ids()
        .collect::<Vec<_>>()
        .iter()
        .map(|&p| sim.actor(p).fd_stats().suspicions_raised)
        .sum();
    sim.run_until(gst + SimDuration::millis(1_200));
    let end: u64 = sim
        .ids()
        .collect::<Vec<_>>()
        .iter()
        .map(|&p| sim.actor(p).fd_stats().suspicions_raised)
        .sum();
    let epochs = sim
        .ids()
        .collect::<Vec<_>>()
        .iter()
        .map(|&p| sim.actor(p).epoch().get())
        .max()
        .unwrap_or(1);
    (end - settled, epochs)
}

fn ablate_adaptivity() {
    let mut t = Table::new(vec![
        "adaptive back-off",
        "false suspicions in 1s after GST(+200ms)",
        "max epoch reached",
    ]);
    for adaptive in [true, false] {
        let (suspicions, epochs) = run_gst_cluster(adaptive);
        t.row(vec![
            adaptive.to_string(),
            suspicions.to_string(),
            epochs.to_string(),
        ]);
    }
    t.print("E-ABL-2: adaptive timeout back-off (eventual strong accuracy)");
}

fn ablate_epochs() {
    // Abstract comparison: transient false suspicions (raised once, then
    // cancelled) hit random correct pairs. With epoch expiry, a quorum
    // exists again at the latest one epoch later; with permanent
    // suspicions the graph only grows until no quorum of size q remains.
    let mut t = Table::new(vec![
        "n",
        "f",
        "transient suspicions until no quorum (permanent)",
        "with epochs",
    ]);
    for f in [1u32, 2, 3] {
        let n = 3 * f + 1;
        let q = n - f;
        // Permanent: add random distinct correct-correct edges until no IS.
        let mut g = SuspectGraph::new(n);
        let mut count = 0u32;
        let mut state = 0xDEADBEEFu64;
        while g.has_independent_set(q) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 33) % u64::from(n) + 1;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 33) % u64::from(n) + 1;
            if a != b {
                g.add_edge(ProcessId(a as u32), ProcessId(b as u32));
                count += 1;
            }
            assert!(count < 10_000);
        }
        t.row(vec![
            n.to_string(),
            f.to_string(),
            format!("{count} (then stuck forever)"),
            "unbounded (epoch change sheds stale suspicions)".to_owned(),
        ]);
    }
    t.print("E-ABL-3: epoch expiry of suspicions (Algorithm 1 lines 27–29)");
    println!(
        "Reading: without epochs, a handful of transient false suspicions \
         permanently destroys all quorums; Algorithm 1's epoch bump discards \
         exactly the suspicions that were not re-raised, so the system \
         recovers from any finite burst of inaccuracy."
    );
}

fn main() {
    ablate_pruning();
    ablate_adaptivity();
    ablate_epochs();
}
