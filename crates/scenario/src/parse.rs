//! Line-oriented parser for the scenario format.
//!
//! The grammar is a deliberately small TOML subset, read without any
//! external dependency:
//!
//! * full-line comments starting with `#`, and blank lines;
//! * `[section]` headers (`cluster`, `workload`, `batch`, `checkpoint`,
//!   `adversary`, `run`, `expect`) — each may appear at most once;
//! * repeatable `[[link]]` and `[[fault]]` headers;
//! * `key = value` lines, where a value is an unsigned integer, `true` /
//!   `false`, a `"quoted string"` (no escapes), or an integer array
//!   `[1, 2, 3]`;
//! * exactly one top-level `name = "..."` before any section.
//!
//! Every error carries the 1-based line number it arose on, and **unknown
//! sections and keys are hard errors** — a typoed `prcoess = 2` in a fault
//! script would otherwise silently weaken the scenario while CI reports
//! green coverage.

use std::collections::BTreeMap;

use qsel_adversary::registry::Strategy;

use crate::spec::{Algorithm, Fault, FaultKind, GeoLink, Scenario, WorkloadMode};

/// One parsed value.
#[derive(Clone, Debug)]
enum Val {
    Int(u64),
    Bool(bool),
    Str(String),
    Arr(Vec<u64>),
}

impl Val {
    fn type_name(&self) -> &'static str {
        match self {
            Val::Int(_) => "integer",
            Val::Bool(_) => "bool",
            Val::Str(_) => "string",
            Val::Arr(_) => "array",
        }
    }
}

/// Key/value bindings of one section instance, each with its source line.
#[derive(Default)]
struct Fields {
    /// Header line of the section (for missing-key errors).
    line: usize,
    map: BTreeMap<String, (usize, Val)>,
}

impl Fields {
    fn insert(&mut self, line: usize, key: &str, val: Val) -> Result<(), String> {
        if self.map.contains_key(key) {
            return Err(format!("line {line}: duplicate key \"{key}\""));
        }
        self.map.insert(key.to_string(), (line, val));
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<(usize, Val)> {
        self.map.remove(key)
    }

    fn take_int(&mut self, key: &str) -> Result<Option<u64>, String> {
        match self.take(key) {
            None => Ok(None),
            Some((_, Val::Int(v))) => Ok(Some(v)),
            Some((line, v)) => Err(format!(
                "line {line}: key \"{key}\" must be an integer, got {}",
                v.type_name()
            )),
        }
    }

    fn take_bool(&mut self, key: &str) -> Result<Option<bool>, String> {
        match self.take(key) {
            None => Ok(None),
            Some((_, Val::Bool(v))) => Ok(Some(v)),
            Some((line, v)) => Err(format!(
                "line {line}: key \"{key}\" must be a bool, got {}",
                v.type_name()
            )),
        }
    }

    fn take_str(&mut self, key: &str) -> Result<Option<(usize, String)>, String> {
        match self.take(key) {
            None => Ok(None),
            Some((line, Val::Str(v))) => Ok(Some((line, v))),
            Some((line, v)) => Err(format!(
                "line {line}: key \"{key}\" must be a string, got {}",
                v.type_name()
            )),
        }
    }

    fn take_arr(&mut self, key: &str) -> Result<Option<Vec<u64>>, String> {
        match self.take(key) {
            None => Ok(None),
            Some((_, Val::Arr(v))) => Ok(Some(v)),
            Some((line, v)) => Err(format!(
                "line {line}: key \"{key}\" must be an array, got {}",
                v.type_name()
            )),
        }
    }

    fn require_int(&mut self, key: &str, section: &str) -> Result<u64, String> {
        self.take_int(key)?.ok_or_else(|| {
            format!(
                "line {}: [{section}] is missing required key \"{key}\"",
                self.line
            )
        })
    }

    fn require_u32(&mut self, key: &str, section: &str) -> Result<u32, String> {
        let v = self.require_int(key, section)?;
        u32::try_from(v)
            .map_err(|_| format!("line {}: key \"{key}\" does not fit in u32", self.line))
    }

    /// Errors on any key nobody consumed — the unknown-key guarantee.
    fn finish(self, section: &str) -> Result<(), String> {
        if let Some((key, (line, _))) = self.map.into_iter().next() {
            return Err(format!(
                "line {line}: unknown key \"{key}\" in [{section}]"
            ));
        }
        Ok(())
    }
}

/// Pending section being accumulated.
enum Pending {
    None,
    Single(&'static str, Fields),
    Link(Fields),
    Fault(Fields),
}

/// Parses the canonical scenario format.
///
/// # Errors
///
/// Returns `"line N: ..."` messages for syntax errors, unknown sections or
/// keys, duplicate keys/sections, missing required keys, and value-domain
/// errors (unknown algorithm, strategy, fault kind, workload mode).
/// Structural errors the grammar cannot see are left to
/// [`Scenario::validate`].
pub fn parse(text: &str) -> Result<Scenario, String> {
    let mut sc = Scenario::default();
    let mut seen_name = false;
    let mut seen_sections: Vec<&'static str> = Vec::new();
    let mut pending = Pending::None;

    // Closes out the section under accumulation, folding it into `sc`.
    fn flush(pending: &mut Pending, sc: &mut Scenario) -> Result<(), String> {
        match std::mem::replace(pending, Pending::None) {
            Pending::None => Ok(()),
            Pending::Single(section, fields) => finish_single(section, fields, sc),
            Pending::Link(fields) => {
                sc.links.push(finish_link(fields)?);
                Ok(())
            }
            Pending::Fault(fields) => {
                sc.faults.push(finish_fault(fields)?);
                Ok(())
            }
        }
    }

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {line_no}: malformed section header {line:?}"))?
                .trim();
            flush(&mut pending, &mut sc)?;
            pending = match name {
                "link" => Pending::Link(Fields {
                    line: line_no,
                    ..Fields::default()
                }),
                "fault" => Pending::Fault(Fields {
                    line: line_no,
                    ..Fields::default()
                }),
                other => {
                    return Err(format!(
                        "line {line_no}: unknown repeated section [[{other}]] \
                         (known: link, fault)"
                    ));
                }
            };
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: malformed section header {line:?}"))?
                .trim();
            flush(&mut pending, &mut sc)?;
            let known = [
                "cluster",
                "workload",
                "batch",
                "checkpoint",
                "adversary",
                "run",
                "expect",
            ];
            let section = *known.iter().find(|k| **k == name).ok_or_else(|| {
                format!(
                    "line {line_no}: unknown section [{name}] (known: {}, \
                     plus repeated [[link]] and [[fault]])",
                    known.join(", ")
                )
            })?;
            if seen_sections.contains(&section) {
                return Err(format!("line {line_no}: section [{section}] appears twice"));
            }
            seen_sections.push(section);
            pending = Pending::Single(
                section,
                Fields {
                    line: line_no,
                    ..Fields::default()
                },
            );
            continue;
        }

        let (key, val) = parse_kv(line, line_no)?;
        match &mut pending {
            Pending::None => {
                if key != "name" {
                    return Err(format!(
                        "line {line_no}: unknown top-level key \"{key}\" \
                         (only \"name\" may appear before the first section)"
                    ));
                }
                if seen_name {
                    return Err(format!("line {line_no}: duplicate key \"name\""));
                }
                let Val::Str(s) = val else {
                    return Err(format!("line {line_no}: key \"name\" must be a string"));
                };
                sc.name = s;
                seen_name = true;
            }
            Pending::Single(_, fields) | Pending::Link(fields) | Pending::Fault(fields) => {
                fields.insert(line_no, &key, val)?;
            }
        }
    }
    flush(&mut pending, &mut sc)?;
    if !seen_name {
        return Err("line 1: scenario has no top-level name".to_string());
    }
    Ok(sc)
}

fn parse_kv(line: &str, line_no: usize) -> Result<(String, Val), String> {
    let (key, rest) = line
        .split_once('=')
        .ok_or_else(|| format!("line {line_no}: expected \"key = value\", got {line:?}"))?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(format!("line {line_no}: malformed key {key:?}"));
    }
    Ok((key.to_string(), parse_val(rest.trim(), line_no)?))
}

fn parse_val(text: &str, line_no: usize) -> Result<Val, String> {
    if let Some(body) = text.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line_no}: unterminated string {text:?}"))?;
        if body.contains(['"', '\\']) {
            return Err(format!(
                "line {line_no}: strings may not contain quotes or backslashes"
            ));
        }
        return Ok(Val::Str(body.to_string()));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line_no}: unterminated array {text:?}"))?
            .trim();
        let mut arr = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                arr.push(parse_int(item.trim(), line_no)?);
            }
        }
        return Ok(Val::Arr(arr));
    }
    match text {
        "true" => Ok(Val::Bool(true)),
        "false" => Ok(Val::Bool(false)),
        other => Ok(Val::Int(parse_int(other, line_no)?)),
    }
}

fn parse_int(text: &str, line_no: usize) -> Result<u64, String> {
    if text.is_empty() || !text.bytes().all(|b| b.is_ascii_digit() || b == b'_') {
        return Err(format!("line {line_no}: expected unsigned integer, got {text:?}"));
    }
    let digits: String = text.chars().filter(|c| *c != '_').collect();
    digits
        .parse::<u64>()
        .map_err(|_| format!("line {line_no}: integer {text:?} overflows u64"))
}

fn finish_single(section: &'static str, mut f: Fields, sc: &mut Scenario) -> Result<(), String> {
    match section {
        "cluster" => {
            if let Some(v) = f.take_int("n")? {
                sc.cluster.n = u32::try_from(v)
                    .map_err(|_| format!("line {}: \"n\" does not fit in u32", f.line))?;
            }
            if let Some(v) = f.take_int("f")? {
                sc.cluster.f = u32::try_from(v)
                    .map_err(|_| format!("line {}: \"f\" does not fit in u32", f.line))?;
            }
            if let Some((line, v)) = f.take_str("algorithm")? {
                sc.cluster.algorithm =
                    Algorithm::from_name(&v).map_err(|e| format!("line {line}: {e}"))?;
            }
        }
        "workload" => {
            if let Some(v) = f.take_int("clients")? {
                sc.workload.clients = u32::try_from(v)
                    .map_err(|_| format!("line {}: \"clients\" does not fit in u32", f.line))?;
            }
            if let Some(v) = f.take_int("ops_per_client")? {
                sc.workload.ops_per_client = v;
            }
            if let Some((line, v)) = f.take_str("mode")? {
                sc.workload.mode =
                    WorkloadMode::from_name(&v).map_err(|e| format!("line {line}: {e}"))?;
            }
            if let Some(v) = f.take_int("retry_us")? {
                sc.workload.retry_us = v;
            }
            if let Some(v) = f.take_int("interarrival_us")? {
                sc.workload.interarrival_us = v;
            }
            if let Some(v) = f.take_int("tx_cost_us")? {
                sc.workload.tx_cost_us = v;
            }
        }
        "batch" => {
            if let Some(v) = f.take_int("max_size")? {
                sc.batch.max_size = v;
            }
            if let Some(v) = f.take_int("max_delay_us")? {
                sc.batch.max_delay_us = v;
            }
            if let Some(v) = f.take_int("pipeline_depth")? {
                sc.batch.pipeline_depth = v;
            }
        }
        "checkpoint" => {
            if let Some(v) = f.take_int("interval")? {
                sc.checkpoint.interval = v;
            }
            if let Some(v) = f.take_int("archive_retain")? {
                sc.checkpoint.archive_retain = v;
            }
        }
        "adversary" => {
            let (line, name) = f
                .take_str("strategy")?
                .ok_or_else(|| format!("line {}: [adversary] needs a strategy", f.line))?;
            let delay_us = f.take_int("delay_us")?;
            sc.adversary.strategy = Strategy::from_name(&name, delay_us)
                .map_err(|e| format!("line {line}: {e}"))?;
            if let Some(v) = f.take_int("process")? {
                sc.adversary.process = u32::try_from(v)
                    .map_err(|_| format!("line {}: \"process\" does not fit in u32", f.line))?;
            }
        }
        "run" => {
            if let Some(v) = f.take_int("settle_us")? {
                sc.run.settle_us = v;
            }
            if let Some(v) = f.take_int("min_commit_permille")? {
                if v > 1000 {
                    return Err(format!(
                        "line {}: \"min_commit_permille\" must be <= 1000",
                        f.line
                    ));
                }
                sc.run.min_commit_permille = v as u32;
            }
            sc.run.stable_from_us = f.take_int("stable_from_us")?;
        }
        "expect" => {
            sc.expect.commit_p50_us = f.take_int("commit_p50_us")?;
            sc.expect.commit_p99_us = f.take_int("commit_p99_us")?;
            sc.expect.client_backoff_p99_us = f.take_int("client_backoff_p99_us")?;
            sc.expect.request_network_p99_us = f.take_int("request_network_p99_us")?;
            sc.expect.batch_wait_p99_us = f.take_int("batch_wait_p99_us")?;
            sc.expect.quorum_wait_p99_us = f.take_int("quorum_wait_p99_us")?;
            sc.expect.execute_p99_us = f.take_int("execute_p99_us")?;
            sc.expect.reply_p99_us = f.take_int("reply_p99_us")?;
            sc.expect.straggler_gap_p99_us = f.take_int("straggler_gap_p99_us")?;
        }
        _ => unreachable!("caller only routes known sections"),
    }
    f.finish(section)
}

fn finish_link(mut f: Fields) -> Result<GeoLink, String> {
    let link = GeoLink {
        from: f.require_u32("from", "link")?,
        to: f.require_u32("to", "link")?,
        min_us: f.require_int("min_us", "link")?,
        max_us: f.require_int("max_us", "link")?,
        symmetric: f.take_bool("symmetric")?.unwrap_or(true),
    };
    f.finish("link")?;
    Ok(link)
}

fn finish_fault(mut f: Fields) -> Result<Fault, String> {
    let at_us = f.require_int("at_us", "fault")?;
    let (kind_line, kind_name) = f
        .take_str("kind")?
        .ok_or_else(|| format!("line {}: [[fault]] is missing required key \"kind\"", f.line))?;
    let kind = match kind_name.as_str() {
        "partition" => {
            let group = f
                .take_arr("group")?
                .ok_or_else(|| format!("line {kind_line}: kind \"partition\" needs a group"))?;
            let mut members = Vec::with_capacity(group.len());
            for p in group {
                members.push(u32::try_from(p).map_err(|_| {
                    format!("line {kind_line}: partition member {p} does not fit in u32")
                })?);
            }
            FaultKind::Partition(members)
        }
        "heal_all" => FaultKind::HealAll,
        "crash" => FaultKind::Crash(f.require_u32("process", "fault")?),
        "restart" => FaultKind::Restart(f.require_u32("process", "fault")?),
        "pause" => FaultKind::Pause(f.require_u32("process", "fault")?),
        "resume" => FaultKind::Resume(f.require_u32("process", "fault")?),
        "degrade_link" => FaultKind::DegradeLink {
            from: f.require_u32("from", "fault")?,
            to: f.require_u32("to", "fault")?,
            extra_us: f.require_int("extra_us", "fault")?,
            jitter_us: f.require_int("jitter_us", "fault")?,
        },
        "heal_link" => FaultKind::HealLink {
            from: f.require_u32("from", "fault")?,
            to: f.require_u32("to", "fault")?,
        },
        "drop_link" => FaultKind::DropLink {
            from: f.require_u32("from", "fault")?,
            to: f.require_u32("to", "fault")?,
        },
        other => {
            return Err(format!(
                "line {kind_line}: unknown fault kind {other:?} (known: partition, \
                 heal_all, crash, restart, pause, resume, degrade_link, heal_link, \
                 drop_link)"
            ));
        }
    };
    f.finish("fault")?;
    Ok(Fault { at_us, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A kitchen-sink scenario exercising every grammar production.
name = "kitchen-sink"

[cluster]
n = 5
f = 2
algorithm = "enumeration"

[workload]
clients = 3
ops_per_client = 9
mode = "open"
retry_us = 10000
interarrival_us = 700
tx_cost_us = 5

[batch]
max_size = 8
max_delay_us = 300
pipeline_depth = 4

[adversary]
strategy = "gray"
delay_us = 2500
process = 1

[run]
settle_us = 9000000
min_commit_permille = 900
stable_from_us = 1234

[expect]
commit_p99_us = 500000
quorum_wait_p99_us = 200000

[[link]]
from = 1
to = 2
min_us = 40000
max_us = 45000
symmetric = false

[[fault]]
at_us = 100000
kind = "partition"
group = [1, 2]

[[fault]]
at_us = 200000
kind = "heal_all"
"#;

    #[test]
    fn full_grammar_parses() {
        let sc = parse(FULL).expect("parse");
        assert_eq!(sc.name, "kitchen-sink");
        assert_eq!(sc.cluster.n, 5);
        assert_eq!(sc.cluster.algorithm, Algorithm::Enumeration);
        assert_eq!(sc.workload.mode, WorkloadMode::Open);
        assert_eq!(sc.adversary.strategy, Strategy::Gray { delay_us: 2500 });
        assert_eq!(sc.run.stable_from_us, Some(1234));
        assert_eq!(sc.expect.commit_p99_us, Some(500000));
        assert_eq!(sc.expect.quorum_wait_p99_us, Some(200000));
        assert_eq!(sc.expect.commit_p50_us, None);
        assert_eq!(sc.links.len(), 1);
        assert!(!sc.links[0].symmetric);
        assert_eq!(sc.faults.len(), 2);
        assert_eq!(sc.faults[0].kind, FaultKind::Partition(vec![1, 2]));
        assert_eq!(sc.faults[1].kind, FaultKind::HealAll);
        sc.validate().expect("validate");
    }

    #[test]
    fn unknown_key_is_rejected_with_its_line_number() {
        let text = "name = \"x\"\n\n[cluster]\nn = 4\nprcoess = 2\n";
        let err = parse(text).expect_err("typo must fail");
        assert!(err.starts_with("line 5:"), "{err}");
        assert!(err.contains("unknown key \"prcoess\""), "{err}");
    }

    #[test]
    fn unknown_key_in_trailing_fault_is_rejected() {
        // The last section is finalized at EOF, not at a following header —
        // the unknown-key check must still fire there.
        let text = "name = \"x\"\n\n[[fault]]\nat_us = 5\nkind = \"heal_all\"\nbogus = 1\n";
        let err = parse(text).expect_err("typo must fail");
        assert!(err.starts_with("line 6:"), "{err}");
        assert!(err.contains("unknown key \"bogus\""), "{err}");
    }

    #[test]
    fn unknown_section_is_rejected_with_its_line_number() {
        let text = "name = \"x\"\n\n[clutser]\nn = 4\n";
        let err = parse(text).expect_err("typo must fail");
        assert!(err.starts_with("line 3:"), "{err}");
        assert!(err.contains("unknown section [clutser]"), "{err}");
    }

    #[test]
    fn extraneous_fault_key_for_kind_is_rejected() {
        let text = "name = \"x\"\n\n[[fault]]\nat_us = 5\nkind = \"heal_all\"\nprocess = 2\n";
        let err = parse(text).expect_err("heal_all takes no process");
        assert!(err.contains("unknown key \"process\""), "{err}");
    }

    #[test]
    fn duplicate_key_and_section_are_rejected() {
        let dup_key = "name = \"x\"\n\n[cluster]\nn = 4\nn = 5\n";
        let err = parse(dup_key).expect_err("dup key");
        assert!(err.starts_with("line 5:") && err.contains("duplicate key"), "{err}");

        let dup_sec = "name = \"x\"\n\n[run]\n\n[run]\n";
        let err = parse(dup_sec).expect_err("dup section");
        assert!(err.starts_with("line 5:") && err.contains("appears twice"), "{err}");
    }

    #[test]
    fn missing_required_keys_are_rejected() {
        let text = "name = \"x\"\n\n[[link]]\nfrom = 1\nto = 2\nmin_us = 5\n";
        let err = parse(text).expect_err("link without max_us");
        assert!(err.contains("missing required key \"max_us\""), "{err}");

        let err = parse("name = \"x\"\n\n[[fault]]\nat_us = 5\n").expect_err("kindless fault");
        assert!(err.contains("missing required key \"kind\""), "{err}");

        let err = parse("[cluster]\nn = 4\n").expect_err("nameless scenario");
        assert!(err.contains("no top-level name"), "{err}");
    }

    #[test]
    fn unknown_enumerations_are_rejected() {
        let bad_algo = "name = \"x\"\n\n[cluster]\nalgorithm = \"fastest\"\n";
        let err = parse(bad_algo).expect_err("bad algorithm");
        assert!(err.starts_with("line 4:") && err.contains("unknown algorithm"), "{err}");

        let bad_kind = "name = \"x\"\n\n[[fault]]\nat_us = 1\nkind = \"explode\"\n";
        let err = parse(bad_kind).expect_err("bad kind");
        assert!(err.contains("unknown fault kind"), "{err}");

        let bad_strategy = "name = \"x\"\n\n[adversary]\nstrategy = \"warp\"\n";
        let err = parse(bad_strategy).expect_err("bad strategy");
        assert!(err.contains("unknown adversary strategy"), "{err}");
    }

    #[test]
    fn unknown_expect_key_is_rejected() {
        let text = "name = \"x\"\n\n[expect]\ncommit_p98_us = 5\n";
        let err = parse(text).expect_err("unknown SLO key must fail");
        assert!(err.starts_with("line 4:"), "{err}");
        assert!(err.contains("unknown key \"commit_p98_us\""), "{err}");
    }

    #[test]
    fn underscored_integers_parse() {
        let text = "name = \"x\"\n\n[run]\nsettle_us = 15_000_000\n";
        assert_eq!(parse(text).expect("parse").run.settle_us, 15_000_000);
    }
}
