//! The [`Scenario`] structure and its canonical serialized form.
//!
//! A scenario composes everything a run needs — cluster shape, workload,
//! batching, adversary, geo delay matrix, fault script, and run/verdict
//! knobs — into one value. [`Scenario::to_toml`] emits the canonical text
//! form; [`crate::parse::parse`] reads it back. The two are exact
//! inverses: `parse(s.to_toml()) == s` for every valid scenario, which the
//! round-trip property test pins down. All quantities are integers
//! (microseconds, counts, permille) so the round-trip needs no
//! float-printing care.

use std::fmt::Write as _;

use qsel_adversary::registry::Strategy;

/// Which quorum/view policy the replicas run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Algorithm 1, Quorum Selection (`QuorumPolicy::Selection`) — the
    /// paper's protocol, Theorem 3 bound `f(f+1)` quorums per epoch.
    Qs,
    /// The original XPaxos round-robin view enumeration
    /// (`QuorumPolicy::Enumeration`) — the baseline; no per-epoch bound
    /// is claimed.
    Enumeration,
}

impl Algorithm {
    /// The scenario-file name of this algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Qs => "qs",
            Algorithm::Enumeration => "enumeration",
        }
    }

    /// Looks an algorithm up by scenario-file name.
    pub fn from_name(name: &str) -> Result<Algorithm, String> {
        match name {
            "qs" => Ok(Algorithm::Qs),
            "enumeration" => Ok(Algorithm::Enumeration),
            other => Err(format!(
                "unknown algorithm {other:?} (known: qs, enumeration)"
            )),
        }
    }
}

/// `[cluster]` — replica count and fault threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Replica count (processes `1..=n`).
    pub n: u32,
    /// Fault threshold; the cluster must satisfy `n - f > f`.
    pub f: u32,
    /// Quorum/view policy.
    pub algorithm: Algorithm,
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster {
            n: 4,
            f: 1,
            algorithm: Algorithm::Qs,
        }
    }
}

/// Client pacing discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadMode {
    /// Closed loop: one outstanding request per client, retried until it
    /// commits (`retry_us` back-off base).
    Closed,
    /// Open loop: a request every `interarrival_us` regardless of
    /// completion, no retries — losses show as a commit-fraction drop.
    Open,
}

impl WorkloadMode {
    /// The scenario-file name of this mode.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadMode::Closed => "closed",
            WorkloadMode::Open => "open",
        }
    }

    /// Looks a mode up by scenario-file name.
    pub fn from_name(name: &str) -> Result<WorkloadMode, String> {
        match name {
            "closed" => Ok(WorkloadMode::Closed),
            "open" => Ok(WorkloadMode::Open),
            other => Err(format!("unknown workload mode {other:?} (known: closed, open)")),
        }
    }
}

/// `[workload]` — the client population and its pacing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Workload {
    /// Client actor count (ids `n+1..=n+clients`).
    pub clients: u32,
    /// Operations each client issues.
    pub ops_per_client: u64,
    /// Pacing discipline.
    pub mode: WorkloadMode,
    /// Closed-loop retry back-off base, microseconds.
    pub retry_us: u64,
    /// Open-loop request interarrival, microseconds.
    pub interarrival_us: u64,
    /// Per-message egress serialization cost, microseconds — the
    /// simulator's stand-in for request size.
    pub tx_cost_us: u64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            clients: 2,
            ops_per_client: 6,
            mode: WorkloadMode::Closed,
            retry_us: 20_000,
            interarrival_us: 1_000,
            tx_cost_us: 0,
        }
    }
}

/// `[batch]` — leader batching/pipelining ([`qsel_xpaxos::BatchPolicy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchSpec {
    /// Most requests per batch (slot).
    pub max_size: u64,
    /// Longest a non-full batch waits, microseconds.
    pub max_delay_us: u64,
    /// Most undecided slots in flight.
    pub pipeline_depth: u64,
}

impl Default for BatchSpec {
    fn default() -> Self {
        BatchSpec {
            max_size: 1,
            max_delay_us: 0,
            pipeline_depth: 1,
        }
    }
}

/// `[checkpoint]` — signed checkpoints, log compaction, and incremental
/// state transfer ([`qsel_xpaxos::CheckpointPolicy`]). The default
/// interval of 0 disables the subsystem, preserving the pre-checkpoint
/// protocol (and its golden traces) exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CheckpointSpec {
    /// Checkpoint period in slots (0 disables checkpointing).
    pub interval: u64,
    /// Compacted batches kept resident below the stable checkpoint for
    /// serving compact (MMR-proved) state transfer.
    pub archive_retain: u64,
}

/// `[adversary]` — the Byzantine strategy and its placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Adversary {
    /// Strategy from the [`qsel_adversary::registry`].
    pub strategy: Strategy,
    /// The controlled replica id (ignored for [`Strategy::None`]).
    pub process: u32,
}

impl Default for Adversary {
    fn default() -> Self {
        Adversary {
            strategy: Strategy::None,
            process: 0,
        }
    }
}

/// `[[link]]` — a geo delay override for one (or one pair of) directed
/// links. Links not listed keep the base delay model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeoLink {
    /// Sending side.
    pub from: u32,
    /// Receiving side.
    pub to: u32,
    /// Minimum one-way delay, microseconds.
    pub min_us: u64,
    /// Maximum one-way delay, microseconds.
    pub max_us: u64,
    /// Also install the mirror `to → from` link with the same delay;
    /// `false` leaves the reverse direction on the base model (asymmetric
    /// routes).
    pub symmetric: bool,
}

/// The fault vocabulary of the DSL — a declarative skin over
/// [`qsel_simnet::FaultEvent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Partition `group` from everyone else (replaces prior partition).
    Partition(Vec<u32>),
    /// Heal every link.
    HealAll,
    /// Crash a process.
    Crash(u32),
    /// Restart a crashed process.
    Restart(u32),
    /// Pause a process (gray stall; events buffer).
    Pause(u32),
    /// Resume a paused process.
    Resume(u32),
    /// Add latency + jitter to the directed link.
    DegradeLink {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
        /// Deterministic added latency, microseconds.
        extra_us: u64,
        /// Uniform jitter bound, microseconds.
        jitter_us: u64,
    },
    /// Reset the directed link to the healthy default (this also removes
    /// any geo override on it).
    HealLink {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
    /// Drop everything on the directed link.
    DropLink {
        /// Sending side.
        from: u32,
        /// Receiving side.
        to: u32,
    },
}

impl FaultKind {
    /// The scenario-file `kind` value.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Partition(_) => "partition",
            FaultKind::HealAll => "heal_all",
            FaultKind::Crash(_) => "crash",
            FaultKind::Restart(_) => "restart",
            FaultKind::Pause(_) => "pause",
            FaultKind::Resume(_) => "resume",
            FaultKind::DegradeLink { .. } => "degrade_link",
            FaultKind::HealLink { .. } => "heal_link",
            FaultKind::DropLink { .. } => "drop_link",
        }
    }
}

/// One `[[fault]]` entry: a [`FaultKind`] at a simulated instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// When the fault applies, simulated microseconds.
    pub at_us: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// `[run]` — execution horizon and verdict thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// How long past the later of (last fault, workload end) the run may
    /// extend for commits to land, microseconds.
    pub settle_us: u64,
    /// Minimum committed/expected ratio, in permille (1000 = every issued
    /// operation must commit).
    pub min_commit_permille: u32,
    /// Override for the replay analyzer's stable-window start. Defaults to
    /// the last scripted fault time; scenarios whose adversary misbehaves
    /// outside the fault script (gray, equivocate) set this explicitly.
    pub stable_from_us: Option<u64>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            settle_us: 15_000_000,
            min_commit_permille: 1000,
            stable_from_us: None,
        }
    }
}

/// `[expect]` — latency SLO ceilings folded into the verdict as
/// first-class checks. Every field is an optional inclusive ceiling in
/// simulated microseconds on an exact (nearest-rank) quantile of the
/// causal span decomposition (`qsel_obs::span`); an absent field checks
/// nothing. A declared ceiling over a run with zero attributed spans
/// **fails** — no evidence must not read green.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ExpectSpec {
    /// Ceiling on end-to-end commit-latency p50.
    pub commit_p50_us: Option<u64>,
    /// Ceiling on end-to-end commit-latency p99.
    pub commit_p99_us: Option<u64>,
    /// Ceiling on the `client_backoff` phase p99.
    pub client_backoff_p99_us: Option<u64>,
    /// Ceiling on the `request_network` phase p99.
    pub request_network_p99_us: Option<u64>,
    /// Ceiling on the `batch_wait` phase p99.
    pub batch_wait_p99_us: Option<u64>,
    /// Ceiling on the `quorum_wait` phase p99.
    pub quorum_wait_p99_us: Option<u64>,
    /// Ceiling on the `execute` phase p99.
    pub execute_p99_us: Option<u64>,
    /// Ceiling on the `reply` phase p99.
    pub reply_p99_us: Option<u64>,
    /// Ceiling on the straggler-gap (first-to-last COMMIT vote) p99.
    pub straggler_gap_p99_us: Option<u64>,
}

impl ExpectSpec {
    /// `(key, ceiling)` pairs in canonical file order — one source of
    /// truth for serialization, parsing, and verdict-check naming.
    pub fn entries(&self) -> [(&'static str, Option<u64>); 9] {
        [
            ("commit_p50_us", self.commit_p50_us),
            ("commit_p99_us", self.commit_p99_us),
            ("client_backoff_p99_us", self.client_backoff_p99_us),
            ("request_network_p99_us", self.request_network_p99_us),
            ("batch_wait_p99_us", self.batch_wait_p99_us),
            ("quorum_wait_p99_us", self.quorum_wait_p99_us),
            ("execute_p99_us", self.execute_p99_us),
            ("reply_p99_us", self.reply_p99_us),
            ("straggler_gap_p99_us", self.straggler_gap_p99_us),
        ]
    }

    /// Whether no ceiling is declared (the `[expect]` section is then
    /// omitted from the canonical form).
    pub fn is_empty(&self) -> bool {
        self.entries().iter().all(|(_, v)| v.is_none())
    }
}

/// A complete declarative scenario.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Scenario {
    /// Scenario name (top-level `name` key; also the verdict's identity).
    pub name: String,
    /// `[cluster]`.
    pub cluster: Cluster,
    /// `[workload]`.
    pub workload: Workload,
    /// `[batch]`.
    pub batch: BatchSpec,
    /// `[checkpoint]`.
    pub checkpoint: CheckpointSpec,
    /// `[adversary]`.
    pub adversary: Adversary,
    /// `[[link]]` entries, in file order.
    pub links: Vec<GeoLink>,
    /// `[[fault]]` entries, in file order (the runner sorts by time with
    /// stable ties, like [`qsel_simnet::FaultPlan`]).
    pub faults: Vec<Fault>,
    /// `[run]`.
    pub run: RunSpec,
    /// `[expect]` (omitted from the canonical form when empty).
    pub expect: ExpectSpec,
}

impl Scenario {
    /// Structural validation beyond what parsing enforces: cluster
    /// well-formedness, process ids in range, delay bounds ordered,
    /// adversary placement present when the strategy needs one.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let Cluster { n, f, .. } = self.cluster;
        if n == 0 || !qsel_types::thresholds::has_correct_majority(n, f) {
            return Err(format!("invalid cluster: n={n}, f={f} (need n - f > f)"));
        }
        if self.name.is_empty() {
            return Err("scenario has no name".to_string());
        }
        let actors = n + self.workload.clients;
        let check_pid = |what: &str, p: u32| -> Result<(), String> {
            if p == 0 || p > actors {
                Err(format!("{what} {p} out of range 1..={actors}"))
            } else {
                Ok(())
            }
        };
        let check_replica = |what: &str, p: u32| -> Result<(), String> {
            if p == 0 || p > n {
                Err(format!("{what} {p} out of range 1..={n}"))
            } else {
                Ok(())
            }
        };
        if self.adversary.strategy.controls_a_process() {
            check_replica("adversary process", self.adversary.process)?;
        }
        for l in &self.links {
            check_pid("link endpoint", l.from)?;
            check_pid("link endpoint", l.to)?;
            if l.from == l.to {
                return Err(format!("link {} -> {} is a self-loop", l.from, l.to));
            }
            if l.min_us > l.max_us {
                return Err(format!(
                    "link {} -> {}: min_us {} exceeds max_us {}",
                    l.from, l.to, l.min_us, l.max_us
                ));
            }
        }
        for ft in &self.faults {
            match &ft.kind {
                FaultKind::Partition(group) => {
                    for &p in group {
                        check_pid("partition member", p)?;
                    }
                }
                FaultKind::Crash(p)
                | FaultKind::Restart(p)
                | FaultKind::Pause(p)
                | FaultKind::Resume(p) => check_pid("fault process", *p)?,
                FaultKind::DegradeLink { from, to, .. }
                | FaultKind::HealLink { from, to }
                | FaultKind::DropLink { from, to } => {
                    check_pid("fault link endpoint", *from)?;
                    check_pid("fault link endpoint", *to)?;
                }
                FaultKind::HealAll => {}
            }
        }
        Ok(())
    }

    /// The canonical text form. Every field is written explicitly (no
    /// default elision except the optional `stable_from_us` and the
    /// all-optional `[expect]` section), so the
    /// output is a complete, self-documenting record of the run
    /// configuration, and `parse(to_toml(s)) == s`.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "name = \"{}\"", self.name);
        let _ = writeln!(out);
        let _ = writeln!(out, "[cluster]");
        let _ = writeln!(out, "n = {}", self.cluster.n);
        let _ = writeln!(out, "f = {}", self.cluster.f);
        let _ = writeln!(out, "algorithm = \"{}\"", self.cluster.algorithm.name());
        let _ = writeln!(out);
        let _ = writeln!(out, "[workload]");
        let _ = writeln!(out, "clients = {}", self.workload.clients);
        let _ = writeln!(out, "ops_per_client = {}", self.workload.ops_per_client);
        let _ = writeln!(out, "mode = \"{}\"", self.workload.mode.name());
        let _ = writeln!(out, "retry_us = {}", self.workload.retry_us);
        let _ = writeln!(out, "interarrival_us = {}", self.workload.interarrival_us);
        let _ = writeln!(out, "tx_cost_us = {}", self.workload.tx_cost_us);
        let _ = writeln!(out);
        let _ = writeln!(out, "[batch]");
        let _ = writeln!(out, "max_size = {}", self.batch.max_size);
        let _ = writeln!(out, "max_delay_us = {}", self.batch.max_delay_us);
        let _ = writeln!(out, "pipeline_depth = {}", self.batch.pipeline_depth);
        let _ = writeln!(out);
        let _ = writeln!(out, "[checkpoint]");
        let _ = writeln!(out, "interval = {}", self.checkpoint.interval);
        let _ = writeln!(out, "archive_retain = {}", self.checkpoint.archive_retain);
        let _ = writeln!(out);
        let _ = writeln!(out, "[adversary]");
        let _ = writeln!(out, "strategy = \"{}\"", self.adversary.strategy.name());
        if let Strategy::Gray { delay_us } = self.adversary.strategy {
            let _ = writeln!(out, "delay_us = {delay_us}");
        }
        let _ = writeln!(out, "process = {}", self.adversary.process);
        let _ = writeln!(out);
        let _ = writeln!(out, "[run]");
        let _ = writeln!(out, "settle_us = {}", self.run.settle_us);
        let _ = writeln!(out, "min_commit_permille = {}", self.run.min_commit_permille);
        if let Some(s) = self.run.stable_from_us {
            let _ = writeln!(out, "stable_from_us = {s}");
        }
        if !self.expect.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "[expect]");
            for (key, v) in self.expect.entries() {
                if let Some(v) = v {
                    let _ = writeln!(out, "{key} = {v}");
                }
            }
        }
        for l in &self.links {
            let _ = writeln!(out);
            let _ = writeln!(out, "[[link]]");
            let _ = writeln!(out, "from = {}", l.from);
            let _ = writeln!(out, "to = {}", l.to);
            let _ = writeln!(out, "min_us = {}", l.min_us);
            let _ = writeln!(out, "max_us = {}", l.max_us);
            let _ = writeln!(out, "symmetric = {}", l.symmetric);
        }
        for ft in &self.faults {
            let _ = writeln!(out);
            let _ = writeln!(out, "[[fault]]");
            let _ = writeln!(out, "at_us = {}", ft.at_us);
            let _ = writeln!(out, "kind = \"{}\"", ft.kind.name());
            match &ft.kind {
                FaultKind::Partition(group) => {
                    let items: Vec<String> = group.iter().map(|p| p.to_string()).collect();
                    let _ = writeln!(out, "group = [{}]", items.join(", "));
                }
                FaultKind::HealAll => {}
                FaultKind::Crash(p)
                | FaultKind::Restart(p)
                | FaultKind::Pause(p)
                | FaultKind::Resume(p) => {
                    let _ = writeln!(out, "process = {p}");
                }
                FaultKind::DegradeLink {
                    from,
                    to,
                    extra_us,
                    jitter_us,
                } => {
                    let _ = writeln!(out, "from = {from}");
                    let _ = writeln!(out, "to = {to}");
                    let _ = writeln!(out, "extra_us = {extra_us}");
                    let _ = writeln!(out, "jitter_us = {jitter_us}");
                }
                FaultKind::HealLink { from, to } | FaultKind::DropLink { from, to } => {
                    let _ = writeln!(out, "from = {from}");
                    let _ = writeln!(out, "to = {to}");
                }
            }
        }
        out
    }
}
