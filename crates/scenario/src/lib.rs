//! Declarative scenarios: one spec file → one deterministic, replay-checked
//! run.
//!
//! The rest of the workspace exposes the pieces of an adversarial
//! experiment — cluster shape and quorum policy (`qsel` / `qsel-xpaxos`),
//! scripted faults and geo delays (`qsel-simnet`), Byzantine strategies
//! (`qsel-adversary`), batching (`qsel-xpaxos`), and offline invariant
//! checking (`qsel-obs`) — but wiring them together was ad hoc per test.
//! This crate is the QUANTAS-style composition layer:
//!
//! * [`spec`] — the [`Scenario`] value: cluster, workload, batch,
//!   adversary, geo links, fault script, run thresholds. All integer
//!   quantities; canonical text form via [`Scenario::to_toml`].
//! * [`parse`] — a dependency-free parser for that form (a small TOML
//!   subset) with line-numbered errors. Unknown sections and keys are hard
//!   errors: a typo in a fault script must not silently weaken coverage.
//! * [`runner`] — [`runner::run_scenario`]: compiles the spec onto the
//!   simulator, places the adversary, executes, replays the exported trace
//!   through the analyzer, and emits a [`qsel_obs::Verdict`]
//!   (`verdict.json`) with pass/fail per invariant plus a metrics summary.
//!
//! Determinism contract: the produced trace is a pure function of
//! `(scenario, seed)`. The named scenario library lives in `scenarios/` at
//! the repository root and runs as a CI matrix (the *scenario league*);
//! see DESIGN.md §12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parse;
pub mod runner;
pub mod spec;

pub use parse::parse;
pub use runner::{compile_plan, run_scenario, RunArtifacts};
pub use spec::{
    Adversary, Algorithm, BatchSpec, CheckpointSpec, Cluster, ExpectSpec, Fault, FaultKind,
    GeoLink, RunSpec, Scenario, Workload, WorkloadMode,
};
