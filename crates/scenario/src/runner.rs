//! Deterministic scenario execution.
//!
//! [`run_scenario`] turns a validated [`Scenario`] plus a seed into a
//! finished run: it compiles the declarative fault script and geo matrix
//! into a [`FaultPlan`], builds the XPaxos cluster (placing the adversary
//! actor the scenario names), executes on `qsel-simnet`, exports the
//! trace, replays it through the `qsel-obs` analyzer, and folds everything
//! into a [`Verdict`]. The whole artifact set is a pure function of
//! `(scenario, seed)` — running twice yields byte-identical traces, which
//! the determinism test pins down.
//!
//! ## Geo matrix vs. whole-network faults
//!
//! `Partition` and `HealAll` in the simulator *replace* per-link state, so
//! a naive compilation would silently erase the scenario's geo delay
//! overrides at the first heal. The compiler therefore re-emits the geo
//! `SetLink`s immediately after every `partition` / `heal_all` script
//! entry (same timestamp; the plan keeps insertion order on ties), marking
//! links that cross a partition cut as both geo-delayed and dropping.

use qsel_adversary::registry::Strategy;
use qsel_obs::metrics::{percentile_sorted, standard_metrics};
use qsel_obs::replay::{analyze, parse_jsonl};
use qsel_obs::span::{SpanReport, PHASES};
use qsel_obs::{ReplayConfig, TraceSink, Verdict};
use qsel_simnet::{DelayModel, FaultEvent, FaultPlan, LinkState, SimDuration, SimTime};
use qsel_types::{ClusterConfig, ProcessId};
use qsel_xpaxos::harness::{
    total_committed, ClusterBuilder, CorruptTransferPeer, Equivocator, GrayReplica, XpActor,
};
use qsel_xpaxos::{BatchPolicy, CheckpointPolicy, QuorumPolicy, Replica, ReplicaConfig};

use crate::spec::{Algorithm, Fault, FaultKind, Scenario, WorkloadMode};

/// Everything a scenario run produces.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Pass/fail per invariant plus the metrics summary.
    pub verdict: Verdict,
    /// The full JSONL trace (what the analyzer actually read).
    pub trace_jsonl: String,
    /// The standard metrics registry, rendered as JSON.
    pub metrics_json: String,
    /// The standard metrics registry, rendered as text.
    pub metrics_text: String,
    /// Per-request critical-path latency attribution
    /// ([`qsel_obs::span::SpanReport::to_json`]), canonical
    /// `latency_report.json` bytes.
    pub latency_report: String,
}

/// Runs one scenario at one seed. See the module docs for the pipeline.
///
/// # Errors
///
/// Returns an error only for *configuration* problems ([`Scenario::validate`]
/// failures or an unconstructible cluster). Invariant violations and missed
/// commit thresholds are not errors: they come back as failed checks inside
/// a verdict, so a league run records them instead of aborting.
pub fn run_scenario(sc: &Scenario, seed: u64) -> Result<RunArtifacts, String> {
    sc.validate()?;
    let cfg = ClusterConfig::new(sc.cluster.n, sc.cluster.f)
        .map_err(|e| format!("invalid cluster shape: {e:?}"))?;

    let plan = compile_plan(sc);
    let last_fault_us = plan.last_fault_time().map_or(0, SimTime::as_micros);

    let rcfg = ReplicaConfig {
        policy: match sc.cluster.algorithm {
            Algorithm::Qs => QuorumPolicy::Selection,
            Algorithm::Enumeration => QuorumPolicy::Enumeration,
        },
        batch: BatchPolicy::new(
            usize::try_from(sc.batch.max_size).unwrap_or(usize::MAX),
            SimDuration::micros(sc.batch.max_delay_us),
            usize::try_from(sc.batch.pipeline_depth).unwrap_or(usize::MAX),
        ),
        checkpoint: CheckpointPolicy::new(sc.checkpoint.interval, sc.checkpoint.archive_retain),
        ..ReplicaConfig::default()
    };

    let sink = TraceSink::unbounded();
    let mut builder = ClusterBuilder::new(cfg, seed)
        .replica_config(rcfg.clone())
        .clients(sc.workload.clients, sc.workload.ops_per_client)
        .retry(SimDuration::micros(sc.workload.retry_us))
        .tx_cost(SimDuration::micros(sc.workload.tx_cost_us))
        .trace_sink(sink.clone());
    if sc.workload.mode == WorkloadMode::Open {
        builder = builder.open_loop(SimDuration::micros(sc.workload.interarrival_us));
    }

    let adversary = sc.adversary;
    let mut sim = builder.build_with(|p, chain| {
        if p.0 != adversary.process {
            return None;
        }
        match adversary.strategy {
            Strategy::None => None,
            Strategy::Mute => Some(XpActor::Mute),
            Strategy::Equivocate => {
                Some(XpActor::Equivocator(Equivocator::new(cfg, chain, p)))
            }
            Strategy::Gray { delay_us } => Some(XpActor::Gray(GrayReplica::new(
                Replica::new(cfg, p, chain, rcfg.clone()),
                SimDuration::micros(delay_us),
            ))),
            Strategy::CorruptTransfer => Some(XpActor::CorruptTransfer(
                CorruptTransferPeer::new(Replica::new(cfg, p, chain, rcfg.clone())),
            )),
        }
    });
    sim.schedule_plan(plan);

    // The horizon: run through the scripted faults and the nominal
    // workload, then allow `settle_us` for retries/stragglers. Progress is
    // probed in fixed 250ms slices so a finished run stops early at a
    // deterministic boundary.
    let expected = u64::from(sc.workload.clients) * sc.workload.ops_per_client;
    let nominal_work_us = match sc.workload.mode {
        WorkloadMode::Open => sc.workload.interarrival_us * sc.workload.ops_per_client,
        WorkloadMode::Closed => 0,
    };
    let base_us = last_fault_us.max(nominal_work_us);
    let deadline_us = base_us + sc.run.settle_us;
    sim.run_until(SimTime::from_micros(base_us));
    while total_committed(&sim) < expected && sim.now().as_micros() < deadline_us {
        let next = (sim.now().as_micros() + 250_000).min(deadline_us);
        sim.run_until(SimTime::from_micros(next));
    }
    // Commit completion is not quiescence: a fault scheduled at (or near)
    // the moment the workload finishes — e.g. lazarus-replica's restart —
    // still deserves to be observed, and laggards must be given time to
    // converge through lazy replication or checkpointed state transfer.
    // Keep running in slices until every live honest replica (crashed
    // actors and Byzantine strategy actors excluded; gray/corrupt
    // wrappers expose their honest inner log) reports the same watermark,
    // or the settle deadline hits.
    let converged = |sim: &qsel_simnet::Simulation<qsel_xpaxos::messages::XpMsg, XpActor>| {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for p in cfg.processes() {
            if sim.is_crashed(p) {
                continue;
            }
            if let Some(r) = sim.actor(p).replica() {
                let w = r.log().watermark();
                lo = lo.min(w);
                hi = hi.max(w);
            }
        }
        lo >= hi
    };
    while !converged(&sim) && sim.now().as_micros() < deadline_us {
        let next = (sim.now().as_micros() + 100_000).min(deadline_us);
        sim.run_until(SimTime::from_micros(next));
    }

    let committed = total_committed(&sim);
    let stats = sim.stats().clone();

    let mut verdict = Verdict::new(&sc.name, seed);
    let required = (expected * u64::from(sc.run.min_commit_permille)).div_ceil(1000);
    verdict.check(
        "commit_fraction",
        committed >= required,
        format!(
            "committed {committed}/{expected} ops (threshold {required}, \
             {}‰ of expected)",
            sc.run.min_commit_permille
        ),
    );

    // The analyzer deliberately reads the exported bytes, not the
    // in-memory records: what CI archives is what gets checked.
    let trace_jsonl = sink.export_jsonl();
    let records = match parse_jsonl(&trace_jsonl) {
        Ok(r) => {
            verdict.check(
                "trace_roundtrip",
                true,
                format!("{} records reparsed from export", r.len()),
            );
            r
        }
        Err(e) => {
            verdict.check("trace_roundtrip", false, format!("export does not reparse: {e}"));
            Vec::new()
        }
    };

    let stable_from = sc.run.stable_from_us.unwrap_or(last_fault_us);
    let replay_cfg = ReplayConfig {
        f: cfg.f(),
        stable_from_micros: stable_from,
    };
    let report = analyze(&records, &replay_cfg);

    // Violations are classified back to the invariant that produced them
    // by the analyzer's message vocabulary (each class has a distinctive
    // phrase); a parallel classification in `Violation` itself would be
    // nicer but the strings are stable and covered by obs's own tests.
    let quorum = report
        .violations
        .iter()
        .filter(|v| v.desc.contains("Theorem"))
        .count();
    let agreement = report
        .violations
        .iter()
        .filter(|v| v.desc.contains("agreement broken"))
        .count();
    let crashed = report
        .violations
        .iter()
        .filter(|v| v.desc.contains("crashed at seq"))
        .count();
    let first = |pred: fn(&str) -> bool| {
        report
            .violations
            .iter()
            .find(|v| pred(&v.desc))
            .map(|v| format!("; first: {}", v.desc))
            .unwrap_or_default()
    };
    verdict.check(
        "quorum_bounds",
        quorum == 0,
        format!(
            "max qs {}/{} fs {}/{} quorums per epoch from t={stable_from}us, \
             {quorum} violation(s){}",
            report.max_qs_quorums_per_epoch,
            replay_cfg.qs_bound(),
            report.max_fs_quorums_per_epoch,
            replay_cfg.fs_bound(),
            first(|d| d.contains("Theorem"))
        ),
    );
    verdict.check(
        "per_slot_agreement",
        agreement == 0,
        format!(
            "{} slot(s) cross-checked, {agreement} violation(s){}",
            report.slots_checked,
            first(|d| d.contains("agreement broken"))
        ),
    );
    verdict.check(
        "no_crashed_delivery",
        crashed == 0,
        format!(
            "{} record(s) scanned, {crashed} violation(s){}",
            report.records_checked,
            first(|d| d.contains("crashed at seq"))
        ),
    );
    let ckpt_div = report
        .violations
        .iter()
        .filter(|v| v.desc.contains("checkpoint divergence"))
        .count();
    let transfer_div = report
        .violations
        .iter()
        .filter(|v| v.desc.contains("state transfer divergence"))
        .count();
    let gc_floor = report
        .violations
        .iter()
        .filter(|v| v.desc.contains("references garbage-collected slot"))
        .count();
    verdict.check(
        "checkpoint_agreement",
        ckpt_div == 0,
        format!(
            "{ckpt_div} divergent checkpoint certificate(s){}",
            first(|d| d.contains("checkpoint divergence"))
        ),
    );
    verdict.check(
        "state_transfer_integrity",
        transfer_div == 0,
        format!(
            "{transfer_div} recovered-state mismatch(es){}",
            first(|d| d.contains("state transfer divergence"))
        ),
    );
    verdict.check(
        "gc_floor",
        gc_floor == 0,
        format!(
            "{gc_floor} access(es) below a garbage-collected floor{}",
            first(|d| d.contains("references garbage-collected slot"))
        ),
    );

    verdict.metric("expected_ops", expected);
    verdict.metric("committed_ops", committed);
    verdict.metric("trace_records", records.len() as u64);
    verdict.metric("records_checked", report.records_checked);
    verdict.metric("slots_checked", report.slots_checked);
    verdict.metric("max_qs_quorums_per_epoch", report.max_qs_quorums_per_epoch);
    verdict.metric("max_fs_quorums_per_epoch", report.max_fs_quorums_per_epoch);
    verdict.metric("end_time_us", sim.now().as_micros());
    verdict.metric("messages_sent", stats.messages_sent);
    verdict.metric("messages_dropped", stats.messages_dropped);
    verdict.metric("faults_injected", stats.faults_injected);

    // Causal span analysis: reconstruct every committed request's critical
    // path, fold the latency quantiles into the verdict's metric block, and
    // turn each `[expect]` ceiling into a first-class pass/fail check.
    let spans = SpanReport::build(&records);
    let lat = spans.latencies_sorted();
    let attributed = spans.spans.len() as u64;
    verdict.metric("spans_attributed", attributed);
    verdict.metric("spans_unattributed", spans.unattributed.len() as u64);
    verdict.metric("commit_latency_p50_us", percentile_sorted(&lat, 50));
    verdict.metric("commit_latency_p90_us", percentile_sorted(&lat, 90));
    verdict.metric("commit_latency_p99_us", percentile_sorted(&lat, 99));
    for (i, name) in PHASES.iter().enumerate() {
        verdict.metric(
            &format!("{name}_p99_us"),
            percentile_sorted(&spans.phase_sorted(i), 99),
        );
    }
    verdict.metric(
        "straggler_gap_p99_us",
        percentile_sorted(&spans.straggler_sorted(), 99),
    );
    let observed = |key: &str| -> u64 {
        match key {
            "commit_p50_us" => percentile_sorted(&lat, 50),
            "commit_p99_us" => percentile_sorted(&lat, 99),
            "straggler_gap_p99_us" => percentile_sorted(&spans.straggler_sorted(), 99),
            other => {
                // The remaining ExpectSpec keys are `<phase>_p99_us`; the
                // parser only admits the nine declared names, so a miss
                // here is a programming error, not bad input.
                let phase = other
                    .strip_suffix("_p99_us")
                    .expect("expect key ends in _p99_us");
                let i = PHASES
                    .iter()
                    .position(|p| *p == phase)
                    .expect("expect key names a span phase");
                percentile_sorted(&spans.phase_sorted(i), 99)
            }
        }
    };
    for (key, ceiling) in sc.expect.entries() {
        let Some(ceiling) = ceiling else { continue };
        let name = format!("expect_{key}");
        if lat.is_empty() {
            // A declared ceiling with no attributed spans fails: absence
            // of evidence must not read green in CI.
            verdict.check(
                &name,
                false,
                format!("ceiling {ceiling}us declared but zero spans attributed"),
            );
        } else {
            let got = observed(key);
            verdict.check(
                &name,
                got <= ceiling,
                format!("observed {got}us vs ceiling {ceiling}us over {attributed} span(s)"),
            );
        }
    }
    let latency_report = spans.to_json(&sc.name, seed);

    let metrics = standard_metrics(&records);
    Ok(RunArtifacts {
        verdict,
        trace_jsonl,
        metrics_json: metrics.render_json(),
        metrics_text: metrics.render_text(),
        latency_report,
    })
}

/// Compiles the declarative fault list plus geo matrix into a concrete
/// [`FaultPlan`], restoring geo overrides after every state-replacing
/// whole-network fault (see the module docs).
pub fn compile_plan(sc: &Scenario) -> FaultPlan {
    let mut plan = FaultPlan::new();
    // Install the geo matrix before anything runs.
    if !sc.links.is_empty() {
        for (from, to, state) in geo_states(sc, None) {
            plan.push(SimTime::ZERO, FaultEvent::SetLink { from, to, state });
        }
    }
    // Stable-sort the script by time (insertion order preserved on ties by
    // FaultPlan::push), appending geo restoration after replacing faults.
    let mut faults: Vec<&Fault> = sc.faults.iter().collect();
    faults.sort_by_key(|ft| ft.at_us);
    for ft in faults {
        let t = SimTime::from_micros(ft.at_us);
        let partition_group: Option<Vec<ProcessId>> = match &ft.kind {
            FaultKind::Partition(group) => {
                Some(group.iter().map(|p| ProcessId(*p)).collect())
            }
            _ => None,
        };
        let ev = match &ft.kind {
            FaultKind::Partition(_) => {
                FaultEvent::Partition(partition_group.clone().unwrap())
            }
            FaultKind::HealAll => FaultEvent::HealAll,
            FaultKind::Crash(p) => FaultEvent::Crash(ProcessId(*p)),
            FaultKind::Restart(p) => FaultEvent::Restart(ProcessId(*p)),
            FaultKind::Pause(p) => FaultEvent::Pause(ProcessId(*p)),
            FaultKind::Resume(p) => FaultEvent::Resume(ProcessId(*p)),
            FaultKind::DegradeLink {
                from,
                to,
                extra_us,
                jitter_us,
            } => FaultEvent::DegradeLink {
                from: ProcessId(*from),
                to: ProcessId(*to),
                extra_delay: SimDuration::micros(*extra_us),
                jitter: SimDuration::micros(*jitter_us),
            },
            FaultKind::HealLink { from, to } => FaultEvent::HealLink {
                from: ProcessId(*from),
                to: ProcessId(*to),
            },
            FaultKind::DropLink { from, to } => FaultEvent::SetLink {
                from: ProcessId(*from),
                to: ProcessId(*to),
                state: LinkState {
                    drop_all: true,
                    ..LinkState::default()
                },
            },
        };
        let replaces_links =
            matches!(ft.kind, FaultKind::Partition(_) | FaultKind::HealAll);
        plan.push(t, ev);
        if replaces_links && !sc.links.is_empty() {
            for (from, to, state) in geo_states(sc, partition_group.as_deref()) {
                plan.push(t, FaultEvent::SetLink { from, to, state });
            }
        }
    }
    plan
}

/// The geo matrix as concrete directed link states. With `partition`
/// given, links crossing the cut additionally drop everything, matching
/// what [`qsel_simnet::Simulation::partition`] just installed on them.
fn geo_states(
    sc: &Scenario,
    partition: Option<&[ProcessId]>,
) -> Vec<(ProcessId, ProcessId, LinkState)> {
    let mut out = Vec::new();
    for l in &sc.links {
        let mut pairs = vec![(ProcessId(l.from), ProcessId(l.to))];
        if l.symmetric {
            pairs.push((ProcessId(l.to), ProcessId(l.from)));
        }
        for (from, to) in pairs {
            let crossing = partition
                .map(|group| group.contains(&from) != group.contains(&to))
                .unwrap_or(false);
            out.push((
                from,
                to,
                LinkState {
                    drop_all: crossing,
                    delay_override: Some(DelayModel::uniform(
                        SimDuration::micros(l.min_us),
                        SimDuration::micros(l.max_us),
                    )),
                    ..LinkState::default()
                },
            ));
        }
    }
    out
}
