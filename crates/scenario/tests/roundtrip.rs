//! Property test: the scenario text form is an exact round-trip.
//!
//! For any generated [`Scenario`] — valid or not; the grammar is wider
//! than the semantics — `parse(s.to_toml())` must reproduce `s` exactly,
//! and serializing the reparse must give byte-identical text (the
//! serializer is canonical). All scenario quantities are integers, so
//! there is no float-printing wiggle room to hide behind.

#![forbid(unsafe_code)]

use proptest::collection::vec;
use proptest::prelude::*;

use qsel_adversary::registry::Strategy as AdvStrategy;
use qsel_scenario::{
    parse, Adversary, Algorithm, BatchSpec, CheckpointSpec, Cluster, ExpectSpec, Fault, FaultKind,
    GeoLink, RunSpec, Scenario, Workload, WorkloadMode,
};

fn arb_name() -> impl Strategy<Value = String> {
    vec(0u8..26, 1..=12).prop_map(|bytes| {
        bytes
            .iter()
            .map(|b| char::from(b'a' + b))
            .collect::<String>()
    })
}

fn arb_cluster() -> impl Strategy<Value = Cluster> {
    (
        1u32..=2,
        1u32..=3,
        prop_oneof![Just(Algorithm::Qs), Just(Algorithm::Enumeration)],
    )
        .prop_map(|(f, extra, algorithm)| Cluster {
            n: 2 * f + extra,
            f,
            algorithm,
        })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (
        1u32..=4,
        1u64..=40,
        prop_oneof![Just(WorkloadMode::Closed), Just(WorkloadMode::Open)],
        1u64..=50_000,
        1u64..=5_000,
        0u64..=10,
    )
        .prop_map(
            |(clients, ops_per_client, mode, retry_us, interarrival_us, tx_cost_us)| Workload {
                clients,
                ops_per_client,
                mode,
                retry_us,
                interarrival_us,
                tx_cost_us,
            },
        )
}

fn arb_batch() -> impl Strategy<Value = BatchSpec> {
    (1u64..=16, 0u64..=1_000, 1u64..=8).prop_map(|(max_size, max_delay_us, pipeline_depth)| {
        BatchSpec {
            max_size,
            max_delay_us,
            pipeline_depth,
        }
    })
}

fn arb_adversary() -> impl Strategy<Value = Adversary> {
    (
        prop_oneof![
            Just(AdvStrategy::None),
            Just(AdvStrategy::Mute),
            Just(AdvStrategy::Equivocate),
            (1u64..=10_000)
                .prop_map(|delay_us| AdvStrategy::Gray { delay_us })
                .boxed(),
        ],
        0u32..=3,
    )
        .prop_map(|(strategy, process)| Adversary { strategy, process })
}

fn arb_endpoints() -> impl Strategy<Value = (u32, u32)> {
    (1u32..=2, 0u32..=1).prop_map(|(a, b)| (a, a + 1 + b))
}

fn arb_link() -> impl Strategy<Value = GeoLink> {
    (
        arb_endpoints(),
        0u64..=1_000,
        0u64..=500,
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(|((from, to), min_us, span_us, symmetric)| GeoLink {
            from,
            to,
            min_us,
            max_us: min_us + span_us,
            symmetric,
        })
}

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        vec(1u32..=4, 0..=3).prop_map(FaultKind::Partition).boxed(),
        Just(FaultKind::HealAll).boxed(),
        (1u32..=4).prop_map(FaultKind::Crash).boxed(),
        (1u32..=4).prop_map(FaultKind::Restart).boxed(),
        (1u32..=4).prop_map(FaultKind::Pause).boxed(),
        (1u32..=4).prop_map(FaultKind::Resume).boxed(),
        (arb_endpoints(), 0u64..=1_000, 0u64..=500)
            .prop_map(|((from, to), extra_us, jitter_us)| FaultKind::DegradeLink {
                from,
                to,
                extra_us,
                jitter_us,
            })
            .boxed(),
        arb_endpoints()
            .prop_map(|(from, to)| FaultKind::HealLink { from, to })
            .boxed(),
        arb_endpoints()
            .prop_map(|(from, to)| FaultKind::DropLink { from, to })
            .boxed(),
    ]
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    (0u64..=2_000_000, arb_kind()).prop_map(|(at_us, kind)| Fault { at_us, kind })
}

fn arb_run() -> impl Strategy<Value = RunSpec> {
    (
        0u64..=20_000_000,
        0u32..=1_000,
        prop_oneof![
            Just(None).boxed(),
            (0u64..=2_000_000).prop_map(Some).boxed(),
        ],
    )
        .prop_map(|(settle_us, min_commit_permille, stable_from_us)| RunSpec {
            settle_us,
            min_commit_permille,
            stable_from_us,
        })
}

fn arb_checkpoint() -> impl Strategy<Value = CheckpointSpec> {
    (0u64..=1_000, 0u64..=100_000)
        .prop_map(|(interval, archive_retain)| CheckpointSpec {
            interval,
            archive_retain,
        })
}

fn arb_ceiling() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        Just(None).boxed(),
        (0u64..=10_000_000).prop_map(Some).boxed(),
    ]
}

fn arb_expect() -> impl Strategy<Value = ExpectSpec> {
    (
        (arb_ceiling(), arb_ceiling(), arb_ceiling()),
        (arb_ceiling(), arb_ceiling(), arb_ceiling()),
        (arb_ceiling(), arb_ceiling(), arb_ceiling()),
    )
        .prop_map(
            |(
                (commit_p50_us, commit_p99_us, client_backoff_p99_us),
                (request_network_p99_us, batch_wait_p99_us, quorum_wait_p99_us),
                (execute_p99_us, reply_p99_us, straggler_gap_p99_us),
            )| ExpectSpec {
                commit_p50_us,
                commit_p99_us,
                client_backoff_p99_us,
                request_network_p99_us,
                batch_wait_p99_us,
                quorum_wait_p99_us,
                execute_p99_us,
                reply_p99_us,
                straggler_gap_p99_us,
            },
        )
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (arb_name(), arb_cluster(), arb_workload()),
        (arb_batch(), arb_checkpoint(), arb_adversary(), arb_run()),
        (vec(arb_link(), 0..=4), vec(arb_fault(), 0..=6), arb_expect()),
    )
        .prop_map(
            |(
                (name, cluster, workload),
                (batch, checkpoint, adversary, run),
                (links, faults, expect),
            )| Scenario {
                name,
                cluster,
                workload,
                batch,
                checkpoint,
                adversary,
                links,
                faults,
                run,
                expect,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn scenario_roundtrips_through_text(sc in arb_scenario()) {
        let text = sc.to_toml();
        let back = parse(&text).expect("canonical form must parse");
        prop_assert_eq!(&back, &sc);
        // Canonical serialization: a second generation is byte-identical.
        prop_assert_eq!(back.to_toml(), text);
    }
}
